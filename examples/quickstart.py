"""Quickstart: answer an IFLS query on the paper's Figure-1 venue.

Builds the example venue (22 partitions, 4 existing coffee facilities,
13 candidate locations, 60 clients), runs the MinMax IFLS query with
all three algorithms, and shows that they agree.

Run:  python examples/quickstart.py
"""

from repro import FacilitySets, IFLSEngine
from repro.datasets import figure1_venue


def main() -> None:
    venue, existing, candidates, clients, names = figure1_venue()
    label = {pid: name for name, pid in names.items()}

    print(f"Venue: {venue}")
    print(f"Existing facilities (Fe): "
          f"{sorted(label[p] for p in existing)}")
    print(f"Candidate locations (Fn): {len(candidates)} partitions")
    print(f"Clients: {len(clients)}")
    print()

    engine = IFLSEngine(venue)
    facilities = FacilitySets(existing, candidates)

    for algorithm in ("bruteforce", "baseline", "efficient"):
        result = engine.query(clients, facilities, algorithm=algorithm)
        stats = result.stats
        print(
            f"{algorithm:>10}: answer={label[result.answer]:<4} "
            f"objective={result.objective:7.3f}  "
            f"pruned={stats.clients_pruned:>2}  "
            f"distance-computations="
            f"{stats.distance.idist_calls}"
        )

    result = engine.query(clients, facilities)
    print()
    print(
        f"Placing the new facility at {label[result.answer]} "
        f"(partition {result.answer}) caps every client's walk to its "
        f"nearest coffee facility at {result.objective:.2f} m."
    )


if __name__ == "__main__":
    main()
