"""Venue toolbox tour: analysis, rendering, persistence, routing.

Shows the supporting library around the IFLS queries on the Copenhagen
Airport venue: venue statistics, an ASCII floor plan with the query
outcome marked, JSON round-tripping, and the walking route that
realises the objective value.

Run:  python examples/venue_toolbox.py
"""

import random
import tempfile
from pathlib import Path

from repro import IFLSEngine, PathService
from repro.datasets import copenhagen_airport
from repro.datasets.workloads import workload
from repro.indoor.analysis import analyse_venue
from repro.indoor.io import load_venue, save_venue
from repro.indoor.render import render_result


def main() -> None:
    venue = copenhagen_airport()
    print(analyse_venue(venue).describe())
    print()

    clients, facilities = workload(venue, 120, 20, 35, seed=5)
    engine = IFLSEngine(venue)
    result = engine.query(clients, facilities)
    print(f"IFLS answer: partition {result.answer} "
          f"(objective {result.objective:.1f} m)\n")

    print(render_result(
        venue,
        clients,
        facilities.existing,
        facilities.candidates,
        result.answer,
        width=96,
        height=18,
    ))
    print("legend: E existing, N candidate, A answer, D door, . client\n")

    # Persist and reload; answers survive the round trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cph.json"
        save_venue(venue, path)
        clone = load_venue(path)
        check = IFLSEngine(clone).query(clients, facilities)
        assert check.answer == result.answer
        print(f"venue JSON round-trip: {path.stat().st_size} bytes, "
              f"answer unchanged")

    # Route of the worst-off client to its nearest facility.
    paths = PathService(venue, graph=engine.tree.graph)
    placed = sorted(facilities.existing | {result.answer})
    worst = max(
        clients,
        key=lambda c: min(
            engine.distances.idist(c, f) for f in placed
        ),
    )
    _dist, destination = min(
        (engine.distances.idist(worst, f), f) for f in placed
    )
    route = paths.route_to_partition(worst, destination)
    print(f"\nworst-off client c{worst.client_id} walks:")
    print(paths.describe(route))


if __name__ == "__main__":
    main()
