"""Shopping-mall scenario: the paper's real setting on Melbourne Central.

    "an advertising agency may want to place their advertising booth in
    a shopping mall and there may be restrictions on where such booths
    can or cannot be installed"  (paper Section 1)

Uses the paper's real-setting category data: one category's shops act
as the existing facilities and every other categorised partition is a
permitted booth location (the exact |Fe|/|Fn| splits of Table 2:
101/190, 54/237, 39/252, 19/272, 14/277).  For each category the
example places the booth with the efficient algorithm and reports the
baseline's time for comparison.

Run:  python examples/shopping_mall_booth.py
"""

import random
import time

from repro import IFLSEngine
from repro.datasets import (
    QUERY_CATEGORIES,
    melbourne_central,
    real_setting_facilities,
)
from repro.datasets.workloads import uniform_clients

SHOPPERS = 2_000


def main() -> None:
    venue = melbourne_central()
    engine = IFLSEngine(venue)
    shoppers = uniform_clients(venue, SHOPPERS, random.Random(7))
    print(f"Melbourne Central: {venue.partition_count} partitions over "
          f"{len(venue.levels)} levels; {SHOPPERS} shoppers\n")

    header = (
        f"{'category':<24} {'|Fe|':>5} {'|Fn|':>5} {'booth':>6} "
        f"{'worst walk':>11} {'efficient':>10} {'baseline':>9}"
    )
    print(header)
    print("-" * len(header))
    for category in QUERY_CATEGORIES:
        facilities = real_setting_facilities(venue, category)
        started = time.perf_counter()
        result = engine.query(shoppers, facilities, cold=True)
        fast = time.perf_counter() - started
        started = time.perf_counter()
        check = engine.query(
            shoppers, facilities, algorithm="baseline", cold=True
        )
        slow = time.perf_counter() - started
        assert abs(check.objective - result.objective) < 1e-6
        print(
            f"{category:<24} {len(facilities.existing):>5} "
            f"{len(facilities.candidates):>5} {result.answer:>6} "
            f"{result.objective:>9.1f} m {fast:>9.2f}s {slow:>8.2f}s"
        )

    print(
        "\nSparser existing categories (fresh food, banks) leave longer "
        "worst-case walks, so a booth placement matters more there."
    )


if __name__ == "__main__":
    main()
