"""Dynamic crowd: keep the best facility location up to date.

The paper motivates IFLS with "dynamic crowd scenarios (e.g., changing
crowd), where the position a new facility needs to be updated
constantly" (Section 1).  This example simulates a morning in a
shopping centre: shoppers arrive in waves, drift between levels, and
leave — and a :class:`~repro.DynamicIFLSSession` re-answers the IFLS
query after each wave on a warm engine.

Run:  python examples/dynamic_crowd.py
"""

import random
import time

from repro import DynamicIFLSSession, IFLSEngine
from repro.datasets import melbourne_central, real_setting_facilities
from repro.datasets.workloads import uniform_clients

WAVES = 6
ARRIVALS_PER_WAVE = 400
DEPARTURE_RATE = 0.25


def main() -> None:
    venue = melbourne_central()
    engine = IFLSEngine(venue)
    facilities = real_setting_facilities(venue, "fresh food")
    session = DynamicIFLSSession(engine, facilities)
    rng = random.Random(99)
    next_id = 0

    print("Melbourne Central — fresh-food IFLS over a changing crowd")
    print(f"{'wave':>5} {'crowd':>6} {'answer':>7} "
          f"{'objective':>10} {'seconds':>8}")
    print("-" * 42)

    for wave in range(1, WAVES + 1):
        # Some shoppers leave…
        for client in session.clients:
            if rng.random() < DEPARTURE_RATE:
                session.remove_client(client.client_id)
        # …and a new wave arrives.
        arrivals = uniform_clients(
            venue, ARRIVALS_PER_WAVE, rng, start_id=next_id
        )
        next_id += ARRIVALS_PER_WAVE
        session.add_clients(arrivals)

        started = time.perf_counter()
        result = session.answer()
        elapsed = time.perf_counter() - started
        print(
            f"{wave:>5} {session.client_count:>6} {result.answer:>7} "
            f"{result.objective:>8.1f} m {elapsed:>7.3f}s"
        )

    cold_started = time.perf_counter()
    engine.query(session.clients, facilities, cold=True)
    cold = time.perf_counter() - cold_started
    print(
        f"\nSame crowd from a cold engine: {cold:.3f}s — the session's "
        f"warm partition-distance caches make repeated answers cheaper."
    )


if __name__ == "__main__":
    main()
