"""Walk through the paper's worked example (Sections 4 and 5.4).

Reproduces the narrative of the paper on the Figure-1 venue:

1. the baseline's sorted list ``Ls`` of clients by nearest-existing
   distance and the shrinking candidate answer set ``CA``;
2. the efficient approach's pre-phase pruning (clients located inside
   existing facilities) and its single-pass answer;
3. the final answer n5 (partition p10) produced by both.

Run:  python examples/paper_figure1.py
"""

from repro import FacilitySets, IFLSEngine
from repro.core.baseline import modified_minmax
from repro.core.efficient import efficient_minmax
from repro.datasets import figure1_venue
from repro.index.search import FacilitySearch


def main() -> None:
    venue, existing, candidates, clients, names = figure1_venue()
    label = {pid: name for name, pid in names.items()}
    engine = IFLSEngine(venue)
    facilities = FacilitySets(existing, candidates)

    # --- Step 1 of the baseline: Ls, sorted by nearest-existing dist.
    search = FacilitySearch(engine.distances, existing)
    entries = []
    for client in clients:
        nearest = search.nearest(client)
        assert nearest is not None
        entries.append((nearest[1], client.client_id, label[nearest[0]]))
    entries.sort(reverse=True)
    print("Baseline step 1 — clients sorted by distance to their "
          "nearest existing facility (top 5):")
    for dist, cid, facility in entries[:5]:
        print(f"  (c{cid + 1}, {facility}, {dist:.2f})")
    zero = [f"c{cid + 1}" for dist, cid, facility in entries
            if dist == 0.0]
    print(f"  … clients inside existing facilities (distance 0): "
          f"{', '.join(sorted(zero))}")

    # --- Step 2: the initial candidate answer set CA.
    worst = max(clients, key=lambda c: next(
        d for d, cid, _f in entries if cid == c.client_id
    ))
    threshold = entries[0][0]
    candidate_search = FacilitySearch(engine.distances, candidates)
    ca = candidate_search.within(worst, threshold, strict=True)
    print(f"\nBaseline step 2 — CA for the worst client "
          f"(c{worst.client_id + 1}, threshold {threshold:.2f}):")
    print("  CA = {" + ", ".join(
        label[pid] for pid, _d in sorted(ca)
    ) + "}")

    # --- Both algorithms end-to-end.
    base = modified_minmax(engine.problem(clients, facilities))
    fast = efficient_minmax(engine.problem(clients, facilities))
    print("\nResults:")
    print(f"  modified MinMax:   answer={label[base.answer]} "
          f"objective={base.objective:.2f} "
          f"(considered {base.stats.iterations + 1} clients)")
    print(f"  efficient (IFLS-EA): answer={label[fast.answer]} "
          f"objective={fast.objective:.2f} "
          f"(pruned {fast.stats.clients_pruned} clients, "
          f"{fast.stats.queue_pops} queue pops)")

    assert label[base.answer] == label[fast.answer] == "n5"
    print("\nBoth return n5 — the candidate in partition p10, as in the "
          "paper's example.")


if __name__ == "__main__":
    main()
