"""University scenario: place a coffee machine in the Menzies Building.

    "a university authority may want to find a location to place a new
    facility (e.g., printer, coffee or vending machine) that minimizes
    the maximum indoor distance between the students/staffs and their
    nearest facility"  (paper Section 1)

Students cluster around the building's central levels (normal
distribution, sigma = 0.5); a handful of coffee machines already exist
and a shortlist of rooms is available.  The example answers the query
under all three objectives (MinMax, and the Section-7 MinDist and
MaxSum extensions) and contrasts the chosen locations.

Run:  python examples/university_coffee.py
"""

import random

from repro import IFLSEngine
from repro.datasets import menzies_building
from repro.datasets.workloads import normal_clients, random_facility_sets

STUDENTS = 2_000
EXISTING_MACHINES = 12
CANDIDATE_ROOMS = 40


def main() -> None:
    print("Building the Menzies Building (16 levels, 1344 partitions)…")
    venue = menzies_building()
    engine = IFLSEngine(venue)

    rng = random.Random(2026)
    facilities = random_facility_sets(
        venue, EXISTING_MACHINES, CANDIDATE_ROOMS, rng
    )
    students = normal_clients(venue, STUDENTS, 0.5, rng)
    levels = sorted({s.location.level for s in students})
    print(f"{STUDENTS} students across levels "
          f"{levels[0]}..{levels[-1]}, "
          f"{EXISTING_MACHINES} existing machines, "
          f"{CANDIDATE_ROOMS} candidate rooms\n")

    header = (
        f"{'objective':<10} {'answer':>7} {'level':>6} "
        f"{'value':>12} {'seconds':>9} {'pruned':>7}"
    )
    print(header)
    print("-" * len(header))
    for objective in ("minmax", "mindist", "maxsum"):
        result = engine.query(
            students, facilities, objective=objective, cold=True
        )
        level = venue.partition(result.answer).level
        if objective == "minmax":
            value = f"{result.objective:9.1f} m"
        elif objective == "mindist":
            value = f"{result.objective / STUDENTS:7.1f} m/st"
        else:
            value = f"{int(result.objective):6d} won"
        print(
            f"{objective:<10} {result.answer:>7} {level:>6} "
            f"{value:>12} {result.stats.elapsed_seconds:>8.2f}s "
            f"{result.stats.clients_pruned:>7}"
        )

    print(
        "\nMinMax protects the farthest student; MinDist minimises the "
        "average walk; MaxSum grabs the most students from the "
        "existing machines. The three objectives may legitimately pick "
        "different rooms."
    )


if __name__ == "__main__":
    main()
