"""Hospital scenario: place a new nurse station (paper Section 1).

    "a hospital may want to identify a location to set up a new nurse
    station from a set of candidate locations such that it minimizes
    the maximum indoor distance between the patient beds and their
    nearest nurse stations"

A two-storey hospital is built by hand: wards along two corridors per
floor, an existing nurse station on each floor, and a shortlist of
empty rooms as candidates.  Each patient bed is a client.  The example
reports the worst bed-to-station distance before and after placing the
new station.

Run:  python examples/hospital_nurse_station.py
"""

from repro import (
    Client,
    FacilitySets,
    IFLSEngine,
    Point,
    Rect,
    VenueBuilder,
)

WARD_BEDS = 4


def build_hospital():
    """Two floors, 8 wards + 4 utility rooms per floor, a stairwell."""
    builder = VenueBuilder("st-elsewhere")
    wards, utility, stations = [], [], []
    corridors = []
    for level in range(2):
        corridor = builder.add_corridor(
            Rect(0, 8, 96, 12, level=level), name=f"corridor-{level}"
        )
        corridors.append(corridor)
        for i in range(8):  # wards below the corridor
            ward = builder.add_room(
                Rect(i * 12, 0, (i + 1) * 12, 8, level=level),
                name=f"ward-{level}-{i}",
            )
            builder.add_door(Point(i * 12 + 6, 8, level), ward, corridor)
            wards.append(ward)
        for i in range(6):  # utility rooms above the corridor
            room = builder.add_room(
                Rect(i * 16, 12, (i + 1) * 16, 18, level=level),
                name=f"room-{level}-{i}",
            )
            builder.add_door(Point(i * 16 + 8, 12, level), room, corridor)
            if i == 2:
                stations.append(room)  # existing nurse station
            else:
                utility.append(room)
    builder.connect_levels(
        corridors[0], corridors[1], at=Point(94, 10, 0), stair_length=6.0
    )
    return builder.build(), wards, utility, stations


def place_beds(venue, wards):
    """Four beds along the walls of every ward."""
    beds = []
    for ward in wards:
        rect = venue.partition(ward).rect
        for b in range(WARD_BEDS):
            x = rect.min_x + (b + 1) * rect.width / (WARD_BEDS + 1)
            beds.append(
                Client(len(beds), Point(x, rect.min_y + 1.5,
                                        rect.level), ward)
            )
    return beds


def main() -> None:
    venue, wards, utility, stations = build_hospital()
    beds = place_beds(venue, wards)
    engine = IFLSEngine(venue)
    facilities = FacilitySets(frozenset(stations), frozenset(utility))

    print(f"Hospital: {venue}")
    print(f"{len(beds)} patient beds, {len(stations)} existing nurse "
          f"stations, {len(utility)} candidate rooms")

    # Worst-case distance with the existing stations only.
    worst_before = 0.0
    for bed in beds:
        nearest = min(
            engine.distances.idist(bed, s) for s in stations
        )
        worst_before = max(worst_before, nearest)
    print(f"\nWorst bed -> station distance today: {worst_before:.1f} m")

    result = engine.query(beds, facilities)
    name = venue.partition(result.answer).name
    print(f"New station location: {name} (partition {result.answer})")
    print(f"Worst distance after placement:      "
          f"{result.objective:.1f} m")
    print(f"Improvement: "
          f"{(1 - result.objective / worst_before) * 100:.0f}%")
    print(f"\nQuery stats: {result.stats.clients_pruned}/"
          f"{len(beds)} beds pruned early, "
          f"{result.stats.facilities_retrieved} facility retrievals, "
          f"{result.stats.distance.idist_calls} indoor distance "
          f"computations")


if __name__ == "__main__":
    main()
