"""Shim for environments without the ``wheel`` package (offline installs).

``pip install -e .`` uses pyproject.toml; this file additionally allows
``python setup.py develop`` where PEP 517 editable builds are unavailable.
"""
from setuptools import setup

setup()
