"""repro — Indoor Facility Location Selection (IFLS) queries.

A from-scratch reproduction of "An Efficient Approach for Indoor
Facility Location Selection" (EDBT 2023): the indoor space model, the
VIP-tree index, the efficient IFLS algorithm, the modified-MinMax
baseline, the MinDist/MaxSum extensions, venue/workload generators for
the paper's four venues, and a benchmark harness regenerating every
figure of the paper's evaluation.

Quickstart::

    from repro import IFLSEngine, FacilitySets
    from repro.datasets import figure1_venue

    venue, existing, candidates, clients, names = figure1_venue()
    engine = IFLSEngine(venue)
    result = engine.query(clients, FacilitySets(existing, candidates))
    print(result.answer, result.objective)

Observability: wrap any of the above in :func:`repro.obs.observe` to
collect a span trace and a metrics snapshot (zero overhead when not
used) — see ``docs/OBSERVABILITY.md`` for the instrumentation
contract.
"""

from .core import (
    BASELINE,
    BOTTOM_UP,
    BRUTE_FORCE,
    EFFICIENT,
    MAXSUM,
    MINDIST,
    MINMAX,
    TOP_DOWN,
    BatchQuery,
    DynamicIFLSSession,
    EfficientOptions,
    IndexSnapshot,
    MovingClientSimulator,
    IFLSEngine,
    ParallelBatchOutcome,
    QuerySession,
    RankedCandidate,
    SessionQueryRecord,
    SessionReport,
    run_batch_parallel,
    top_k_ifls,
    IFLSProblem,
    IFLSResult,
    QueryStats,
    ResultStatus,
)
from .errors import (
    DisconnectedVenueError,
    ParallelExecutionError,
    QueryError,
    ReproError,
    UnreachableFacilityError,
    VenueError,
)
from .indoor import (
    Client,
    DistanceService,
    Door,
    DoorGraph,
    FacilitySets,
    IndoorVenue,
    Partition,
    PartitionKind,
    Point,
    Rect,
    VenueBuilder,
)
from .index import (
    FacilitySearch,
    PathService,
    Route,
    VIPDistanceEngine,
    VIPTree,
)
from .obs import (
    ExplainReport,
    MetricsRegistry,
    ProfileCollector,
    Tracer,
    observe,
)

__version__ = "1.5.0"

__all__ = [
    "BASELINE",
    "BOTTOM_UP",
    "BRUTE_FORCE",
    "BatchQuery",
    "Client",
    "DisconnectedVenueError",
    "DistanceService",
    "DynamicIFLSSession",
    "Door",
    "DoorGraph",
    "EFFICIENT",
    "EfficientOptions",
    "ExplainReport",
    "FacilitySearch",
    "FacilitySets",
    "IFLSEngine",
    "IFLSProblem",
    "IFLSResult",
    "IndexSnapshot",
    "MovingClientSimulator",
    "IndoorVenue",
    "ParallelBatchOutcome",
    "ParallelExecutionError",
    "run_batch_parallel",
    "MAXSUM",
    "MINDIST",
    "MINMAX",
    "MetricsRegistry",
    "Tracer",
    "observe",
    "PathService",
    "Partition",
    "RankedCandidate",
    "Route",
    "top_k_ifls",
    "PartitionKind",
    "Point",
    "ProfileCollector",
    "QueryError",
    "QuerySession",
    "QueryStats",
    "Rect",
    "SessionQueryRecord",
    "SessionReport",
    "ReproError",
    "ResultStatus",
    "TOP_DOWN",
    "UnreachableFacilityError",
    "VenueBuilder",
    "VenueError",
    "VIPDistanceEngine",
    "VIPTree",
    "__version__",
]
