"""repro — Indoor Facility Location Selection (IFLS) queries.

A from-scratch reproduction of "An Efficient Approach for Indoor
Facility Location Selection" (EDBT 2023): the indoor space model, the
VIP-tree index, the efficient IFLS algorithm, the modified-MinMax
baseline, the MinDist/MaxSum extensions, venue/workload generators for
the paper's four venues, and a benchmark harness regenerating every
figure of the paper's evaluation.

Quickstart::

    import repro
    from repro.datasets import figure1_venue

    venue, existing, candidates, clients, names = figure1_venue()
    engine = repro.open_venue(venue)
    request = repro.QueryRequest(
        clients=tuple(clients),
        facilities=repro.FacilitySets(existing, candidates),
    )
    response = engine.query(request)
    print(response.answer, response.objective_value)

:func:`open_venue` is the facade every surface shares — the library
API, the ``ifls`` CLI, and the HTTP query service
(:mod:`repro.service`) all speak the same
:class:`QueryRequest`/:class:`QueryResponse` pair.  The
pre-1.6 spellings (:class:`IFLSEngine`, ``EfficientOptions``,
``BatchQuery``) keep working; see the migration table in
``docs/API.md``.

Observability: wrap any of the above in :func:`repro.obs.observe` to
collect a span trace and a metrics snapshot (zero overhead when not
used) — see ``docs/OBSERVABILITY.md`` for the instrumentation
contract.
"""

from .api import BACKENDS, Engine, open_venue
from .core import (
    BASELINE,
    BOTTOM_UP,
    BRUTE_FORCE,
    EFFICIENT,
    MAXSUM,
    MINDIST,
    MINMAX,
    TOP_DOWN,
    BatchQuery,
    ClientEvent,
    ContinuousQuery,
    DynamicIFLSSession,
    EfficientOptions,
    IndexSnapshot,
    MovingClientSimulator,
    IFLSEngine,
    ParallelBatchOutcome,
    QueryRequest,
    QueryResponse,
    QuerySession,
    RankedCandidate,
    SessionQueryRecord,
    SessionReport,
    StreamAnswer,
    StreamStats,
    read_events,
    run_batch_parallel,
    synthetic_events,
    top_k_ifls,
    write_events,
    IFLSProblem,
    IFLSResult,
    QueryStats,
    ResultStatus,
)
from .errors import (
    DisconnectedVenueError,
    ParallelExecutionError,
    ProtocolError,
    QueryError,
    ReproError,
    RequestTimeout,
    ServiceError,
    UnreachableFacilityError,
    VenueError,
    http_status_for,
)
from .indoor import (
    Client,
    DistanceService,
    Door,
    DoorGraph,
    FacilitySets,
    IndoorVenue,
    Partition,
    PartitionKind,
    Point,
    Rect,
    VenueBuilder,
)
from .index import (
    FacilitySearch,
    PathService,
    Route,
    VIPDistanceEngine,
    VIPTree,
)
from .obs import (
    ExplainReport,
    MetricsRegistry,
    ProfileCollector,
    Tracer,
    observe,
)

__version__ = "1.8.0"

__all__ = [
    "BACKENDS",
    "BASELINE",
    "BOTTOM_UP",
    "BRUTE_FORCE",
    "BatchQuery",
    "Client",
    "ClientEvent",
    "ContinuousQuery",
    "DisconnectedVenueError",
    "DistanceService",
    "DynamicIFLSSession",
    "Door",
    "DoorGraph",
    "EFFICIENT",
    "EfficientOptions",
    "Engine",
    "ExplainReport",
    "FacilitySearch",
    "FacilitySets",
    "IFLSEngine",
    "IFLSProblem",
    "IFLSResult",
    "IndexSnapshot",
    "MovingClientSimulator",
    "IndoorVenue",
    "ParallelBatchOutcome",
    "ParallelExecutionError",
    "ProtocolError",
    "run_batch_parallel",
    "open_venue",
    "http_status_for",
    "MAXSUM",
    "MINDIST",
    "MINMAX",
    "MetricsRegistry",
    "Tracer",
    "observe",
    "PathService",
    "Partition",
    "RankedCandidate",
    "Route",
    "top_k_ifls",
    "PartitionKind",
    "Point",
    "ProfileCollector",
    "QueryError",
    "QueryRequest",
    "QueryResponse",
    "QuerySession",
    "QueryStats",
    "Rect",
    "RequestTimeout",
    "SessionQueryRecord",
    "SessionReport",
    "StreamAnswer",
    "StreamStats",
    "read_events",
    "synthetic_events",
    "write_events",
    "ReproError",
    "ResultStatus",
    "ServiceError",
    "TOP_DOWN",
    "UnreachableFacilityError",
    "VenueBuilder",
    "VenueError",
    "VIPDistanceEngine",
    "VIPTree",
    "__version__",
]
