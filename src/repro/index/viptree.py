"""The VIP-tree index (Shao et al., PVLDB'16) over an indoor venue.

The tree combines adjacent partitions bottom-up into nodes and stores
distance matrices so that indoor distances become a handful of hash
lookups:

* **access-door rows** — exact door-graph distances from every access
  door of every node to all doors.  These subsume the paper's leaf→
  ancestor ("vivid") matrices and the non-leaf access-door matrices:
  any entry of those matrices is one lookup in a row (see DESIGN.md,
  "Substitutions").
* **leaf-local matrices** — all-pairs door distances restricted to the
  partitions of one leaf, used for same-leaf queries where the shortest
  path never leaves the leaf.

Distance queries never run Dijkstra; they combine matrix entries, which
matches the query-time behaviour of the original index.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import IndexError_
from ..indoor.doorgraph import DoorGraph
from ..indoor.entities import DoorId, PartitionId
from ..indoor.venue import IndoorVenue
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .construction import (
    DEFAULT_FANOUT,
    DEFAULT_LEAF_CAPACITY,
    build_nodes,
)
from .node import NodeId, VIPNode


class VIPTree:
    """A VIP-tree with precomputed distance matrices.

    Parameters
    ----------
    venue:
        The indoor venue to index.
    leaf_capacity:
        Maximum number of partitions combined into one leaf node.
    fanout:
        Maximum number of children combined into one internal node.
    graph:
        Optional pre-built door graph (shared with other services).
    """

    def __init__(
        self,
        venue: IndoorVenue,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        fanout: int = DEFAULT_FANOUT,
        graph: Optional[DoorGraph] = None,
    ) -> None:
        self.venue = venue
        self.graph = graph if graph is not None else DoorGraph(venue)
        build_started = time.perf_counter()
        with _trace.span(
            "index.build", partitions=venue.partition_count
        ) as build_span:
            with _trace.span("index.build.nodes"):
                self.nodes, self._leaf_of = build_nodes(
                    venue, leaf_capacity=leaf_capacity, fanout=fanout
                )
            roots = [
                n.node_id for n in self.nodes if n.parent_id is None
            ]
            if len(roots) != 1:
                raise IndexError_(
                    f"expected a single root, found {len(roots)}"
                )
            self.root_id: NodeId = roots[0]
            self._leaf_index: Dict[NodeId, int] = {}
            for node in self.nodes:
                if node.is_leaf:
                    self._leaf_index[node.node_id] = node.leaf_lo
            self.rows: Dict[DoorId, Dict[DoorId, float]] = {}
            self.local: Dict[
                NodeId, Dict[Tuple[DoorId, DoorId], float]
            ] = {}
            self._door_leaf: Dict[DoorId, List[NodeId]] = {}
            with _trace.span("index.build.matrices"):
                self._build_matrices()
            build_span.set(nodes=len(self.nodes))
        _metrics.record(
            "index.build.seconds", time.perf_counter() - build_started
        )
        # Dense-array kernel pack, derived lazily from the matrices
        # above (requires numpy; see repro.index.kernels).
        self._kernel_pack = None

    def kernels(self):
        """The tree's dense-array :class:`KernelPack`, built lazily.

        The pack is pure derived data of ``rows`` / ``local`` /
        ``_door_leaf``, shared by every distance engine on this tree.
        Building emits the ``index.kernels.pack`` span and the
        ``index.kernels.pack.seconds`` metric once.  Requires numpy.
        """
        if self._kernel_pack is None:
            from . import kernels as _kernels

            self._kernel_pack = _kernels.build_pack(self)
        return self._kernel_pack

    def invalidate_kernels(self) -> None:
        """Drop the kernel pack; the next :meth:`kernels` re-derives it.

        Called by ``VIPDistanceEngine.clear_caches`` so array data can
        never outlive the dict matrices it was packed from.
        """
        self._kernel_pack = None

    def __getstate__(self):
        # The pack is cheap to re-derive and holds large dense arrays;
        # keep pickles (parallel IndexSnapshot payloads) lean.
        state = dict(self.__dict__)
        state["_kernel_pack"] = None
        return state

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_matrices(self) -> None:
        access_doors = set()
        for node in self.nodes:
            access_doors.update(node.access_doors)
        for door_id in sorted(access_doors):
            self.rows[door_id] = self.graph.dijkstra(door_id)

        for node in self.nodes:
            if not node.is_leaf:
                continue
            allowed = frozenset(node.partitions)
            matrix: Dict[Tuple[DoorId, DoorId], float] = {}
            for door_id in node.doors:
                self._door_leaf.setdefault(door_id, []).append(node.node_id)
                for target, dist in self.graph.dijkstra(
                    door_id, allowed_partitions=allowed
                ).items():
                    matrix[(door_id, target)] = dist
            self.local[node.node_id] = matrix

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> VIPNode:
        """Node by id."""
        return self.nodes[node_id]

    @property
    def root(self) -> VIPNode:
        """The single root node."""
        return self.nodes[self.root_id]

    def leaf_of(self, partition_id: PartitionId) -> VIPNode:
        """The leaf node containing a partition."""
        try:
            return self.nodes[self._leaf_of[partition_id]]
        except KeyError:
            raise IndexError_(
                f"partition {partition_id} is not indexed"
            ) from None

    def leaves(self) -> Iterator[VIPNode]:
        """Iterate over leaf nodes."""
        return (n for n in self.nodes if n.is_leaf)

    def covers(self, node: VIPNode, partition_id: PartitionId) -> bool:
        """O(1) test whether ``node``'s subtree contains a partition."""
        leaf = self._leaf_of.get(partition_id)
        if leaf is None:
            return False
        index = self._leaf_index[leaf]
        return node.leaf_lo <= index < node.leaf_hi

    def is_descendant(self, node: VIPNode, ancestor: VIPNode) -> bool:
        """O(1) subtree containment test via leaf spans."""
        return (
            ancestor.leaf_lo <= node.leaf_lo
            and node.leaf_hi <= ancestor.leaf_hi
        )

    @property
    def height(self) -> int:
        """Number of node levels (1 for a single-leaf tree)."""
        return 1 + max(n.depth for n in self.nodes)

    @property
    def node_count(self) -> int:
        """Total number of tree nodes."""
        return len(self.nodes)

    @property
    def leaf_count(self) -> int:
        """Number of leaf nodes."""
        return len(self._leaf_index)

    def matrix_entry_count(self) -> int:
        """Total stored distance-matrix entries (for memory reports)."""
        entries = sum(len(row) for row in self.rows.values())
        entries += sum(len(matrix) for matrix in self.local.values())
        return entries

    def access_door_count(self) -> int:
        """Distinct access doors across all nodes (= stored rows)."""
        return len(self.rows)

    # ------------------------------------------------------------------
    # Door-to-door distances (matrix lookups only)
    # ------------------------------------------------------------------
    def door_to_door(self, a: DoorId, b: DoorId) -> float:
        """Exact shortest indoor distance between two doors.

        Resolution order: direct access-door row; same-leaf local matrix
        combined with a detour through the leaf's access doors; otherwise
        the boundary decomposition min over the leaf's access doors
        ``rows[x][a] + rows[x][b]`` (exact because any path out of the
        leaf crosses an access door, and shortest-path subpaths are
        shortest).
        """
        if a == b:
            return 0.0
        row = self.rows.get(a)
        if row is not None:
            return row.get(b, float("inf"))
        row = self.rows.get(b)
        if row is not None:
            return row.get(a, float("inf"))
        best = float("inf")
        leaves_a = self._door_leaf.get(a, ())
        leaves_b = set(self._door_leaf.get(b, ()))
        shared = [leaf for leaf in leaves_a if leaf in leaves_b]
        if shared:
            for leaf_id in shared:
                inside = self.local[leaf_id].get((a, b))
                if inside is not None and inside < best:
                    best = inside
        if not leaves_a:
            raise IndexError_(f"door {a} is not indexed")
        for x in self.nodes[leaves_a[0]].access_doors:
            row_x = self.rows[x]
            da = row_x.get(a)
            db = row_x.get(b)
            if da is None or db is None:
                continue
            if da + db < best:
                best = da + db
        return best
