"""Top-down VIP-tree facility search (nearest neighbour / range).

This is the classic best-first traversal of Shao et al. that the paper's
*baseline* uses: starting from the root, nodes are expanded in order of
their lower-bound distance from the query client; facility partitions
are emitted with exact distances.  The efficient IFLS algorithm does
*not* use this module — it performs its own bottom-up traversal
(:mod:`repro.core.efficient`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, Iterator, List, Optional, Tuple

from ..indoor.entities import Client, PartitionId
from .distance import VIPDistanceEngine

_NODE = 1
_FACILITY = 0


class FacilitySearch:
    """Best-first facility search for a fixed facility set.

    The facility set is frozen at construction (it plays the role of the
    paper's "VIP-tree indexing ``Fe``" / "indexing ``Fn``"): the tree
    structure is shared, membership decides which partitions are emitted.
    """

    def __init__(
        self,
        engine: VIPDistanceEngine,
        facilities: Iterable[PartitionId],
    ) -> None:
        self.engine = engine
        self.tree = engine.tree
        self.facilities = frozenset(facilities)

    def iter_by_distance(
        self, client: Client
    ) -> Iterator[Tuple[PartitionId, float]]:
        """Yield ``(facility_partition, iDist)`` in non-decreasing order."""
        if not self.facilities:
            return
        counter = itertools.count()
        root = self.tree.root
        heap: List[Tuple[float, int, int, int]] = [
            (
                self.engine.point_min_dist_to_node(client, root),
                next(counter),
                _NODE,
                root.node_id,
            )
        ]
        while heap:
            key, _tie, kind, ident = heapq.heappop(heap)
            if key == float("inf"):
                return
            if kind == _FACILITY:
                yield ident, key
                continue
            node = self.tree.node(ident)
            if node.is_leaf:
                for pid in node.partitions:
                    if pid in self.facilities:
                        dist = self.engine.idist(client, pid)
                        heapq.heappush(
                            heap, (dist, next(counter), _FACILITY, pid)
                        )
                continue
            for child_id in node.child_node_ids:
                child = self.tree.node(child_id)
                bound = self.engine.point_min_dist_to_node(client, child)
                if bound < float("inf"):
                    heapq.heappush(
                        heap, (bound, next(counter), _NODE, child_id)
                    )

    def nearest(
        self, client: Client
    ) -> Optional[Tuple[PartitionId, float]]:
        """The client's nearest facility and its distance (None if none)."""
        for pid, dist in self.iter_by_distance(client):
            return pid, dist
        return None

    def within(
        self, client: Client, radius: float, strict: bool = True
    ) -> List[Tuple[PartitionId, float]]:
        """Facilities with ``iDist < radius`` (or ``<=`` when not strict).

        Sorted by distance.  ``strict`` mirrors the paper's baseline
        candidate generation, which keeps candidates *closer than* the
        client's nearest existing facility.
        """
        out: List[Tuple[PartitionId, float]] = []
        for pid, dist in self.iter_by_distance(client):
            if dist >= radius if strict else dist > radius:
                break
            out.append((pid, dist))
        return out
