"""A from-scratch R-tree over partition rectangles.

The composite indoor index the paper cites (Xie et al., ICDE'13) uses
an R*-tree as its *geometric layer* to find the partition containing a
point.  This module provides that layer: a quadratic-split R-tree over
``(rect, value)`` entries with point, window, and nearest queries.
It also backs :class:`PartitionLocator`, the fast point→partition
lookup used where ``IndoorVenue.locate``'s linear scan would hurt.

Per-level trees are kept separate (indoor floors do not overlap), which
keeps the implementation planar and simple.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from ..indoor.geometry import Point, Rect
from ..indoor.venue import IndoorVenue

T = TypeVar("T")

DEFAULT_MAX_ENTRIES = 8


class _Node(Generic[T]):
    __slots__ = ("rect", "children", "entries")

    def __init__(self, leaf: bool) -> None:
        self.rect: Optional[Rect] = None
        self.children: List["_Node[T]"] = []
        self.entries: List[Tuple[Rect, T]] = [] if leaf else None

    @property
    def is_leaf(self) -> bool:
        """True for nodes holding entries rather than children."""
        return self.entries is not None


def _union(a: Optional[Rect], b: Rect) -> Rect:
    return b if a is None else a.union(b)


def _enlargement(current: Optional[Rect], addition: Rect) -> float:
    if current is None:
        return addition.area
    grown = current.union(addition)
    return grown.area - current.area


def _intersects(a: Rect, b: Rect) -> bool:
    return not (
        a.max_x < b.min_x
        or b.max_x < a.min_x
        or a.max_y < b.min_y
        or b.max_y < a.min_y
    )


class RTree(Generic[T]):
    """A planar R-tree with quadratic node splits.

    Not level-aware: callers with multi-storey data keep one tree per
    level (see :class:`PartitionLocator`).
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self._root: _Node[T] = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, rect: Rect, value: T) -> None:
        """Insert one ``(rect, value)`` entry."""
        split = self._insert(self._root, rect, value)
        if split is not None:
            old_root = self._root
            new_root: _Node[T] = _Node(leaf=False)
            new_root.children = [old_root, split]
            new_root.rect = old_root.rect.union(split.rect)
            self._root = new_root
        self._size += 1

    def _insert(
        self, node: _Node[T], rect: Rect, value: T
    ) -> Optional[_Node[T]]:
        node.rect = _union(node.rect, rect)
        if node.is_leaf:
            node.entries.append((rect, value))
            if len(node.entries) > self.max_entries:
                return self._split_leaf(node)
            return None
        best = min(
            node.children,
            key=lambda child: (
                _enlargement(child.rect, rect),
                child.rect.area if child.rect else 0.0,
            ),
        )
        split = self._insert(best, rect, value)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.max_entries:
                return self._split_inner(node)
        return None

    @staticmethod
    def _waste(a: Rect, b: Rect) -> float:
        return a.union(b).area - a.area - b.area

    def _split_leaf(self, node: _Node[T]) -> _Node[T]:
        entries = node.entries
        seeds = max(
            itertools.combinations(range(len(entries)), 2),
            key=lambda ij: self._waste(entries[ij[0]][0],
                                       entries[ij[1]][0]),
        )
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        rest = [
            e for i, e in enumerate(entries) if i not in seeds
        ]
        rect_a, rect_b = group_a[0][0], group_b[0][0]
        for entry in rest:
            if _enlargement(rect_a, entry[0]) <= _enlargement(
                rect_b, entry[0]
            ):
                group_a.append(entry)
                rect_a = rect_a.union(entry[0])
            else:
                group_b.append(entry)
                rect_b = rect_b.union(entry[0])
        node.entries = group_a
        node.rect = rect_a
        sibling: _Node[T] = _Node(leaf=True)
        sibling.entries = group_b
        sibling.rect = rect_b
        return sibling

    def _split_inner(self, node: _Node[T]) -> _Node[T]:
        children = node.children
        seeds = max(
            itertools.combinations(range(len(children)), 2),
            key=lambda ij: self._waste(children[ij[0]].rect,
                                       children[ij[1]].rect),
        )
        group_a = [children[seeds[0]]]
        group_b = [children[seeds[1]]]
        rest = [
            c for i, c in enumerate(children) if i not in seeds
        ]
        rect_a, rect_b = group_a[0].rect, group_b[0].rect
        for child in rest:
            if _enlargement(rect_a, child.rect) <= _enlargement(
                rect_b, child.rect
            ):
                group_a.append(child)
                rect_a = rect_a.union(child.rect)
            else:
                group_b.append(child)
                rect_b = rect_b.union(child.rect)
        node.children = group_a
        node.rect = rect_a
        sibling: _Node[T] = _Node(leaf=False)
        sibling.children = group_b
        sibling.rect = rect_b
        return sibling

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_point(self, point: Point) -> Iterator[Tuple[Rect, T]]:
        """All entries whose rect contains the (planar) point."""
        probe = Rect(point.x, point.y, point.x, point.y)
        yield from self.query_window(probe)

    def query_window(self, window: Rect) -> Iterator[Tuple[Rect, T]]:
        """All entries intersecting ``window``."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.rect is None or not _intersects(node.rect, window):
                continue
            if node.is_leaf:
                for rect, value in node.entries:
                    if _intersects(rect, window):
                        yield rect, value
            else:
                stack.extend(node.children)

    def nearest(self, point: Point) -> Optional[Tuple[Rect, T, float]]:
        """The entry with minimum planar rect distance to ``point``."""
        if self._size == 0:
            return None
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = [
            (0.0, next(counter), self._root)
        ]
        while heap:
            dist, _tie, item = heapq.heappop(heap)
            if isinstance(item, _Node):
                if item.is_leaf:
                    for rect, value in item.entries:
                        heapq.heappush(
                            heap,
                            (
                                rect.distance_to_point(point),
                                next(counter),
                                (rect, value),
                            ),
                        )
                else:
                    for child in item.children:
                        if child.rect is not None:
                            heapq.heappush(
                                heap,
                                (
                                    child.rect.distance_to_point(point),
                                    next(counter),
                                    child,
                                ),
                            )
            else:
                rect, value = item
                return rect, value, dist
        return None

    @property
    def height(self) -> int:
        """Levels from root to leaves."""
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height


class PartitionLocator:
    """Point → partition lookup via one R-tree per level.

    The geometric layer of the composite indoor index: resolves which
    partition contains a point in O(log n) instead of the venue's
    linear scan.  Ties (shared walls) resolve to the smallest-area
    partition, matching ``IndoorVenue.locate``.
    """

    def __init__(
        self, venue: IndoorVenue, max_entries: int = DEFAULT_MAX_ENTRIES
    ) -> None:
        self.venue = venue
        self._trees: Dict[int, RTree[int]] = {}
        for partition in venue.partitions():
            tree = self._trees.setdefault(
                partition.level, RTree(max_entries=max_entries)
            )
            tree.insert(partition.rect, partition.partition_id)

    def locate(self, point: Point) -> Optional[int]:
        """The partition containing ``point`` (None when outside)."""
        tree = self._trees.get(point.level)
        if tree is None:
            return None
        hits = [
            (rect.area, pid)
            for rect, pid in tree.query_point(point)
            if rect.contains(point)
        ]
        if not hits:
            return None
        return min(hits)[1]

    def nearest_partition(self, point: Point) -> Optional[Tuple[int, float]]:
        """Nearest partition on the point's level and its distance."""
        tree = self._trees.get(point.level)
        if tree is None:
            return None
        found = tree.nearest(point)
        if found is None:
            return None
        _rect, pid, dist = found
        return pid, dist
