"""Read-only images of a prepared engine: venue + built VIP-tree.

:class:`IndexSnapshot` started life inside :mod:`repro.core.parallel`
as the ``spawn``-path pickle vehicle.  The query service promoted it to
a first-class sharing primitive: one snapshot now backs

* the parallel executor's ``spawn`` workers (pickled once, restored
  per process),
* the ``fork`` path (the restored engine travels copy-on-write), and
* per-venue *session pools* (:class:`repro.service.pool.SessionPool`),
  where many warm sessions answer concurrently over the same tree
  without re-pickling or rebuilding anything.

The snapshot itself is frozen and treats its venue and tree as
immutable — exactly the contract warm caches already rely on (distances
depend only on geometry).  :meth:`engine` restores an
:class:`~repro.core.queries.IFLSEngine` lazily and caches it, so any
number of sessions opened through one snapshot share a single tree and
kernel pack; the cached engine is dropped on pickling (workers restore
their own).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from ..errors import ParallelExecutionError
from ..indoor.venue import IndoorVenue
from .viptree import VIPTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.queries import IFLSEngine
    from ..core.session import QuerySession

__all__ = ["IndexSnapshot"]


@dataclass(frozen=True)
class IndexSnapshot:
    """A picklable, shareable image of a prepared engine.

    The snapshot carries the built tree (matrices included), so
    restoring is a cheap unpickle instead of an index construction.
    One snapshot may back any number of sessions and worker processes;
    nothing reachable from it is mutated after construction.
    """

    venue: IndoorVenue
    tree: VIPTree
    use_kernels: Optional[bool] = None

    @classmethod
    def from_engine(cls, engine: "IFLSEngine") -> "IndexSnapshot":
        """Capture the engine's shared, immutable structures."""
        snapshot = cls(
            venue=engine.venue,
            tree=engine.tree,
            use_kernels=engine.use_kernels,
        )
        # The source engine *is* a valid restoration — share it so
        # sessions opened through the snapshot reuse its tree state
        # (e.g. an already-built kernel pack) without a second engine.
        object.__setattr__(snapshot, "_restored", engine)
        return snapshot

    def restore(self) -> "IFLSEngine":
        """Rebuild a fresh engine around the snapshotted tree.

        The parent's resolved ``use_kernels`` choice travels with the
        snapshot so spawn workers answer on the same code path (the
        tree's kernel pack itself is re-derived in the worker, not
        shipped).  Always returns a *new* engine; use :meth:`engine`
        for the shared cached one.
        """
        from ..core.queries import IFLSEngine

        return IFLSEngine(
            self.venue, tree=self.tree, use_kernels=self.use_kernels
        )

    def engine(self) -> "IFLSEngine":
        """The shared read-only engine this snapshot backs.

        Restored lazily on first use and cached; every caller in this
        process gets the same instance, so session pools opened through
        one snapshot share one tree, one kernel pack, and one venue
        object.  The cache never crosses a pickle boundary.
        """
        cached = self.__dict__.get("_restored")
        if cached is None:
            cached = self.restore()
            object.__setattr__(self, "_restored", cached)
        return cached

    def session(
        self,
        max_cache_entries: Optional[int] = None,
        keep_records: bool = True,
    ) -> "QuerySession":
        """Open a warm session over the shared engine.

        Each session owns its *own* distance engine and
        ``DistanceStats`` ledger (see the session-pool checkin merge);
        only the venue, tree, and kernel pack are shared.
        """
        from ..core.session import QuerySession

        return QuerySession(
            self.engine(),
            max_cache_entries=max_cache_entries,
            keep_records=keep_records,
        )

    # ------------------------------------------------------------------
    # Pickling (spawn workers): drop the cached engine.
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_restored", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    def to_bytes(self) -> bytes:
        """Pickle once with the highest protocol (sent per worker)."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "IndexSnapshot":
        """Inverse of :meth:`to_bytes` (runs in the worker)."""
        snapshot = pickle.loads(payload)
        if not isinstance(snapshot, cls):
            raise ParallelExecutionError(
                f"snapshot payload decoded to {type(snapshot).__name__}"
            )
        return snapshot
