"""Contiguous-array kernels for the VIP-tree hot path.

The scalar :class:`~repro.index.distance.VIPDistanceEngine` resolves
every distance through dict-keyed door/partition lookups — one Python
loop iteration (and one hash probe) per door pair.  This module re-lays
the tree's matrices as dense numpy arrays once per tree, so the three
IFLS distance primitives become sliced array reductions over a whole
client group (or candidate set) per call:

* :class:`KernelPack` — the packed index data: one ``float64`` matrix
  of access-door rows (``R[row, col]`` = exact distance from access
  door ``row`` to door ``col``; missing entries are ``+inf``, matching
  the scalar ``row.get(b, inf)``), plus ``int32`` id→row / id→column
  maps for doors, per-node access-door row lists, and per-partition
  door column lists.  Built lazily by :meth:`VIPTree.kernels` and
  shared by every engine on the tree.
* :class:`GroupArrays` — per-group client state for the solvers: the
  clients' intra-partition offsets to their exit doors as one
  ``(clients, exit_doors)`` matrix (the paper's ``d(c, d_i)`` terms,
  computed once per group instead of once per facility retrieval), the
  Lemma 5.1 pruned mask as a boolean array, and the running
  nearest-existing bounds ``de(c)`` as a parallel ``float64`` array.

Every kernel computes exactly the same IEEE-754 values as the scalar
path: the candidate sets are identical and only ``min`` reductions and
identically-ordered additions are performed, so answers are
bit-identical (``tests/core/test_kernels_oracle.py`` proves it).  The
scalar path is kept as the ``use_kernels=False`` oracle.

numpy is optional: :func:`available` gates every entry point, and the
``IFLS_USE_KERNELS`` environment variable (``0``/``false``/``off``)
forces the scalar default for whole processes (the CI scalar-oracle
job runs the full test suite this way).
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple, Union

try:  # numpy is optional; the scalar path never imports it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via IFLS_USE_KERNELS
    _np = None

from ..errors import IndexError_
from ..indoor.entities import Client, DoorId, PartitionId
from ..obs import metrics as _metrics
from ..obs import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import VIPNode
    from .viptree import VIPTree

INFINITY = float("inf")

#: Environment switch: set to 0/false/off to default every engine to
#: the scalar oracle path (numpy absent has the same effect).
ENV_FLAG = "IFLS_USE_KERNELS"

_OFF_VALUES = ("0", "false", "off", "no")


def available() -> bool:
    """True when numpy is importable (kernels can be built)."""
    return _np is not None


def default_enabled() -> bool:
    """Process-wide default for ``use_kernels=None`` engines."""
    if _np is None:
        return False
    flag = os.environ.get(ENV_FLAG, "").strip().lower()
    return flag not in _OFF_VALUES or flag == ""


class KernelPack:
    """Dense-array re-layout of one :class:`VIPTree`'s matrices.

    The pack is immutable and derives only from the tree (never from
    query state), so it is safe to share across engines and sessions;
    ``VIPTree.invalidate_kernels`` drops it for venue-edit rebuilds.
    """

    def __init__(self, tree: "VIPTree") -> None:
        if _np is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("numpy is required to build kernels")
        self.tree = tree
        venue = tree.venue
        door_ids = sorted(d.door_id for d in venue.doors())
        #: door id -> dense column index
        self.door_col: Dict[DoorId, int] = {
            door: col for col, door in enumerate(door_ids)
        }
        access_ids = sorted(tree.rows)
        #: access-door id -> dense row index
        self.access_row: Dict[DoorId, int] = {
            door: row for row, door in enumerate(access_ids)
        }
        n_doors = len(door_ids)
        matrix = _np.full(
            (len(access_ids), n_doors), INFINITY, dtype=_np.float64
        )
        for door, row in self.access_row.items():
            source = tree.rows[door]
            for target, dist in source.items():
                col = self.door_col.get(target)
                if col is not None:
                    matrix[row, col] = dist
        #: access-door rows: ``R[row, col]`` = door-graph distance
        self.R = matrix
        #: node id -> int32 array of access-door row indices
        self.node_rows: Dict[int, "_np.ndarray"] = {
            node.node_id: _np.fromiter(
                (self.access_row[d] for d in node.access_doors),
                dtype=_np.int32,
                count=len(node.access_doors),
            )
            for node in tree.nodes
        }
        #: non-access door id -> access rows of its first leaf (the
        #: boundary-decomposition pivot set of the scalar path)
        self.decomp_rows: Dict[DoorId, "_np.ndarray"] = {}
        for door, leaves in tree._door_leaf.items():
            if door in self.access_row or not leaves:
                continue
            access = tree.nodes[leaves[0]].access_doors
            self.decomp_rows[door] = _np.fromiter(
                (self.access_row[d] for d in access),
                dtype=_np.int32,
                count=len(access),
            )
        #: non-access door id -> dense row index into ``G``
        self.nonacc_row: Dict[DoorId, int] = {
            door: row for row, door in enumerate(sorted(self.decomp_rows))
        }
        #: non-access door rows: ``G[row, col]`` = exact
        #: ``VIPTree.door_to_door`` — the boundary decomposition, local
        #: same-leaf mins, access-row overrides, and zero diagonal are
        #: baked in at build time (vectorized per leaf), so every
        #: door-pair distance is one gather at query time.
        self.G = self._build_general_rows(tree, matrix)
        #: full door x door matrix: ``F[col_a, col_b]`` = exact
        #: ``door_to_door`` for every *indexed* source door (row index
        #: == the door's column index; unindexed rows stay ``inf``).
        #: One 2-D gather answers any door block with no Python loop.
        self.F = _np.full((n_doors, n_doors), INFINITY, dtype=_np.float64)
        #: indexed door id -> ``F`` row (== its ``door_col`` entry)
        self.door_row: Dict[DoorId, int] = {}
        for door, row in self.access_row.items():
            col = self.door_col[door]
            self.F[col] = matrix[row]
            self.door_row[door] = col
        for door, row in self.nonacc_row.items():
            col = self.door_col[door]
            self.F[col] = self.G[row]
            self.door_row[door] = col
        #: partition id -> int32 door column array (venue door order,
        #: identical to the scalar engine's ``_doors`` tuples)
        self._part_cols: Dict[PartitionId, "_np.ndarray"] = {}
        self._part_rows: Dict[PartitionId, "_np.ndarray"] = {}
        # Derived-reduction caches.  Every entry is a pure function of
        # the tree's matrices (no query state), so — like ``R`` itself —
        # they are shared by all engines on the tree and live for the
        # pack's lifetime; ``VIPTree.invalidate_kernels`` drops the
        # whole pack.  Bounded by |partitions|^2 floats, |partitions| x
        # |nodes| floats, and |partitions|^2 short vectors.
        self._pair_min: Dict[Tuple[PartitionId, PartitionId], float] = {}
        self._node_min: Dict[Tuple[PartitionId, int], float] = {}
        self._exit_mins: Dict[
            Tuple[PartitionId, PartitionId], "_np.ndarray"
        ] = {}
        self._exit_mins_list: Dict[
            Tuple[PartitionId, PartitionId], List[float]
        ] = {}

    def _build_general_rows(
        self, tree: "VIPTree", matrix: "_np.ndarray"
    ) -> "_np.ndarray":
        """Dense exact rows for every non-access door.

        Reproduces ``VIPTree.door_to_door`` bit for bit, in its
        resolution order: boundary decomposition through the door's
        *first* leaf's access doors (identically-ordered additions,
        ``inf`` for missing entries), lowered by same-leaf local
        entries, then access-door columns overwritten with their exact
        row values, and a zero diagonal.
        """
        n_doors = matrix.shape[1]
        G = _np.full(
            (len(self.nonacc_row), n_doors), INFINITY, dtype=_np.float64
        )
        if not self.nonacc_row:
            return G
        # Group doors by first leaf: they share one pivot row set, so
        # each group's decomposition is a single (A, D, N) reduction.
        by_leaf: Dict[int, List[DoorId]] = {}
        for door in self.nonacc_row:
            by_leaf.setdefault(tree._door_leaf[door][0], []).append(door)
        for leaf_id, doors in by_leaf.items():
            rows_a = self.decomp_rows[doors[0]]
            if not rows_a.size:  # pragma: no cover - leaves have access
                continue
            out_rows = _np.fromiter(
                (self.nonacc_row[d] for d in doors),
                dtype=_np.intp,
                count=len(doors),
            )
            cols_a = _np.fromiter(
                (self.door_col[d] for d in doors),
                dtype=_np.intp,
                count=len(doors),
            )
            base = matrix[rows_a[:, None], cols_a]  # (A, D)
            pivot = matrix[rows_a]  # (A, N)
            G[out_rows] = (base[:, :, None] + pivot[:, None, :]).min(
                axis=0
            )
        # Same-leaf local entries lower the decomposition (the scalar
        # path consults ``local[leaf][(a, b)]`` in this key order).
        for local in tree.local.values():
            for (door_a, door_b), inside in local.items():
                row = self.nonacc_row.get(door_a)
                if row is None or door_b in self.access_row:
                    continue
                col = self.door_col.get(door_b)
                if col is not None and inside < G[row, col]:
                    G[row, col] = inside
        # Access targets resolve through the access door's own row —
        # exact, so it replaces (never exceeds) the decomposition.
        acc_cols = _np.fromiter(
            (self.door_col[d] for d in sorted(self.access_row)),
            dtype=_np.intp,
            count=len(self.access_row),
        )
        nonacc_cols = _np.fromiter(
            (self.door_col[d] for d in sorted(self.nonacc_row)),
            dtype=_np.intp,
            count=len(self.nonacc_row),
        )
        if acc_cols.size:
            G[:, acc_cols] = matrix[:, nonacc_cols].T
        G[_np.arange(len(nonacc_cols)), nonacc_cols] = 0.0
        return G

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def partition_cols(self, partition_id: PartitionId) -> "_np.ndarray":
        """Door column indices of one partition (cached)."""
        cols = self._part_cols.get(partition_id)
        if cols is None:
            doors = tuple(self.tree.venue.doors_of(partition_id))
            cols = _np.fromiter(
                (self.door_col[d] for d in doors),
                dtype=_np.int32,
                count=len(doors),
            )
            self._part_cols[partition_id] = cols
        return cols

    def door_cols(self, doors: Sequence[DoorId]) -> "_np.ndarray":
        """Dense column indices for a door sequence."""
        return _np.fromiter(
            (self.door_col[d] for d in doors),
            dtype=_np.intp,
            count=len(doors),
        )

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def d2d_block(
        self,
        doors_a: Sequence[DoorId],
        doors_b: Sequence[DoorId],
        cols_b: "_np.ndarray" = None,
    ) -> "_np.ndarray":
        """``(len(a), len(b))`` matrix of exact door-pair distances.

        Each entry reproduces ``VIPTree.door_to_door`` bit for bit:
        direct access-door row when either end is an access door,
        otherwise the same-leaf local matrix combined with the
        boundary decomposition over the first leaf's access doors.
        ``cols_b`` may pass the precomputed column indices of
        ``doors_b`` (e.g. a cached :meth:`partition_cols` array).
        """
        if cols_b is None:
            cols_b = self.door_cols(doors_b)
        rows_a = self.source_rows(doors_a)
        return self.F[rows_a[:, None], cols_b]

    def source_rows(self, doors: Sequence[DoorId]) -> "_np.ndarray":
        """``F`` row indices for source doors (raises when unindexed).

        Target doors need no such check — an unindexed target's column
        is all-``inf``, exactly the scalar ``row.get(b, inf)``.
        """
        rows = _np.empty(len(doors), dtype=_np.intp)
        door_row = self.door_row
        for i, door in enumerate(doors):
            row = door_row.get(door)
            if row is None:
                raise IndexError_(f"door {door} is not indexed")
            rows[i] = row
        return rows

    def imind_node(self, partition_id: PartitionId, node: "VIPNode") -> float:
        """``iMinD`` partition→node as one dense submatrix min (cached)."""
        key = (partition_id, node.node_id)
        best = self._node_min.get(key)
        if best is None:
            rows = self.node_rows[node.node_id]
            cols = self.partition_cols(partition_id)
            if rows.size and cols.size:
                best = float(self.R[rows[:, None], cols].min())
            else:
                best = INFINITY
            self._node_min[key] = best
        return best

    def partition_pair_min(
        self, a: PartitionId, b: PartitionId
    ) -> float:
        """Min door-pair distance between two partitions (cached).

        Exactly ``d2d_block(doors(a), doors(b)).min()`` — the
        kernelized ``iMinD`` partition-pair reduction — memoised under
        an ordered key (door distances are symmetric).
        """
        key = (a, b) if a <= b else (b, a)
        best = self._pair_min.get(key)
        if best is None:
            mins = self.exit_door_mins(key[0], key[1])
            best = float(mins.min()) if mins.size else INFINITY
            self._pair_min[key] = best
        return best

    def exit_door_mins(
        self, source: PartitionId, target: PartitionId
    ) -> "_np.ndarray":
        """Per-exit-door min distance to any door of ``target`` (cached).

        Entry ``e`` is ``min_t d2d(exit_doors(source)[e],
        doors(target)[t])`` — an exact ``min`` over the same candidate
        set the scalar ``idist`` door loop enumerates.  Because IEEE-754
        addition is monotone, ``min_t fl(offset + d2d_et)`` equals
        ``fl(offset + min_t d2d_et)`` bit for bit, so reducing the
        door block once here and adding offsets later reproduces the
        scalar two-level loop exactly.  Empty door lists yield an
        all-``inf`` / zero-length vector.
        """
        key = (source, target)
        mins = self._exit_mins.get(key)
        if mins is None:
            rows = self.partition_rows(source)
            cols = self.partition_cols(target)
            if rows.size and cols.size:
                mins = self.F[rows[:, None], cols].min(axis=1)
            else:
                mins = _np.full(
                    rows.size, INFINITY, dtype=_np.float64
                )
            self._exit_mins[key] = mins
        return mins

    def exit_door_mins_list(
        self, source: PartitionId, target: PartitionId
    ) -> List[float]:
        """:meth:`exit_door_mins` as plain floats (cached alongside).

        The solver's per-dequeue lane works on 1-10 client groups where
        Python float adds beat numpy dispatch; the values are the same
        objects ``tolist`` produces from the cached vector.
        """
        key = (source, target)
        mins = self._exit_mins_list.get(key)
        if mins is None:
            mins = self.exit_door_mins(source, target).tolist()
            self._exit_mins_list[key] = mins
        return mins

    def partition_rows(self, partition_id: PartitionId) -> "_np.ndarray":
        """``F`` row indices of one partition's doors (cached)."""
        rows = self._part_rows.get(partition_id)
        if rows is None:
            doors = tuple(self.tree.venue.doors_of(partition_id))
            rows = self.source_rows(doors)
            self._part_rows[partition_id] = rows
        return rows


class GroupArrays:
    """Array-laid per-group client state for the solver hot loop.

    Holds, aligned with the group's client list order:

    * ``offsets`` — ``(clients, exit_doors)`` intra-partition distances
      from each client to each exit door of the shared partition
      (dense float64; :meth:`offset_lists` mirrors it as plain floats
      for the solver's small-group lane);
    * ``mask`` — "still active" flags (Lemma 5.1 pruning flips entries
      to ``False``; the surviving rows are cached between prunes);
    * ``de_bound`` — running nearest-existing-facility distance per
      client.

    ``mask`` and ``de_bound`` are plain Python lists on purpose: the
    solver dequeues groups of a handful of clients, where list updates
    are cheaper than numpy constructor/dispatch overhead, and the dense
    work already happens against ``offsets`` and the pack's memoised
    reductions.
    """

    __slots__ = (
        "partition_id", "exit_doors", "mask", "de_bound",
        "_index_of", "_active_rows", "_active_list",
        "_offsets_nd", "_offset_lists",
    )

    def __init__(
        self,
        partition_id: PartitionId,
        exit_doors: Tuple[DoorId, ...],
        clients: Sequence[Client],
        offsets: "Union[_np.ndarray, List[List[float]]]",
        pruned: Sequence[int] = (),
    ) -> None:
        self.partition_id = partition_id
        self.exit_doors = exit_doors
        if isinstance(offsets, list):
            # Row lists from group_offset_rows: keep them as the
            # primary store; the ndarray materialises on demand.
            self._offsets_nd = None
            self._offset_lists = offsets
        else:
            self._offsets_nd = offsets
            self._offset_lists = None
        size = len(clients)
        self.mask: List[bool] = [True] * size
        self.de_bound: List[float] = [INFINITY] * size
        self._index_of = {
            client.client_id: index
            for index, client in enumerate(clients)
        }
        # Active-row cache: the mask scan repeats identically between
        # prunes, so the rows (and their plain-int mirror for record
        # building) are computed once and dropped on any mask change.
        self._active_rows: "_np.ndarray" = None
        self._active_list: List[int] = None
        for client_id in pruned:
            self.mark_pruned(client_id)

    def mark_pruned(self, client_id: int) -> None:
        """Flip one client's active-mask entry (O(1))."""
        index = self._index_of.get(client_id)
        if index is not None and self.mask[index]:
            self.mask[index] = False
            self._active_rows = None
            self._active_list = None

    def active_rows(self) -> "_np.ndarray":
        """Row indices of still-active clients, in client-list order."""
        rows = self._active_rows
        if rows is None:
            active = self.active_list()
            rows = _np.fromiter(
                active, dtype=_np.intp, count=len(active)
            )
            self._active_rows = rows
        return rows

    def active_list(self) -> List[int]:
        """:meth:`active_rows` as plain ints (cached alongside it)."""
        out = self._active_list
        if out is None:
            mask = self.mask
            out = [index for index in range(len(mask)) if mask[index]]
            self._active_list = out
        return out

    @property
    def offsets(self) -> "_np.ndarray":
        """The dense offset matrix (materialised on demand).

        :meth:`compact` keeps only the plain-float row lists and drops
        the ndarray; it is rebuilt here the next time an array consumer
        (``idist_rows``, the public batch APIs) asks for it, so
        small-group solver runs that stay on :meth:`offset_lists`
        never pay the reconstruction.
        """
        nd = self._offsets_nd
        if nd is None:
            lists = self._offset_lists
            nd = _np.array(lists, dtype=_np.float64)
            if not lists:
                nd = nd.reshape(0, len(self.exit_doors))
            self._offsets_nd = nd
        return nd

    def offset_lists(self) -> List[List[float]]:
        """``offsets`` as row lists of plain floats (cached).

        Feeds the solver's small-group lane; :meth:`compact` slices
        these lists in place of the ndarray (pruning flips the mask,
        not the offsets, so prunes never invalidate them).
        """
        out = self._offset_lists
        if out is None:
            out = self._offsets_nd.tolist()
            self._offset_lists = out
        return out

    def tighten_de(self, rows: "_np.ndarray", dists: "_np.ndarray") -> None:
        """``de(c) = min(de(c), dist)`` over one dequeue's rows."""
        de = self.de_bound
        for index, dist in zip(rows, dists):
            index = int(index)
            if dist < de[index]:
                de[index] = float(dist)

    def lemma51_rows(self, bound: float) -> "_np.ndarray":
        """Active rows whose ``de(c) <= bound`` (prunable, Lemma 5.1)."""
        de = self.de_bound
        rows = [
            index
            for index, active in enumerate(self.mask)
            if active and de[index] <= bound
        ]
        return _np.fromiter(rows, dtype=_np.intp, count=len(rows))

    def compact(self, clients: Sequence[Client]) -> None:
        """Re-align the arrays after the group's lazy client compaction.

        ``clients`` is the group's already-filtered list; the surviving
        rows are exactly the mask's ``True`` entries, in order.
        """
        keep = self.active_list()
        lists = self.offset_lists()
        self._offset_lists = [lists[index] for index in keep]
        self._offsets_nd = None
        de = self.de_bound
        self.de_bound = [de[index] for index in keep]
        self.mask = [True] * len(keep)
        self._index_of = {
            client.client_id: index
            for index, client in enumerate(clients)
        }
        self._active_rows = None
        self._active_list = None


def build_pack(tree: "VIPTree") -> KernelPack:
    """Construct a :class:`KernelPack` under its contract span."""
    started = time.perf_counter()
    with _trace.span(
        "index.kernels.pack", access_rows=len(tree.rows)
    ) as pack_span:
        pack = KernelPack(tree)
        pack_span.set(doors=len(pack.door_col))
    _metrics.record(
        "index.kernels.pack.seconds", time.perf_counter() - started
    )
    return pack


def group_offset_rows(
    venue,
    partition_id: PartitionId,
    exit_doors: Tuple[DoorId, ...],
    door_locations: Dict[DoorId, object],
    clients: Sequence[Client],
) -> List[List[float]]:
    """``(clients, exit_doors)`` intra-partition offsets as row lists.

    Calls the exact same ``Partition.intra_distance`` the scalar path
    uses per retrieval, once per (client, door) pair per query.  Plain
    lists feed :class:`GroupArrays` directly: the solver dequeues
    mostly-tiny groups, so skipping the eager ndarray (and its
    element-wise fills) is a measurable win; the dense matrix
    materialises lazily from these rows when an array consumer asks.
    """
    partition = venue.partition(partition_id)
    locations = [door_locations[door] for door in exit_doors]
    return [
        [
            partition.intra_distance(client.location, location)
            for location in locations
        ]
        for client in clients
    ]


def group_offsets(
    venue,
    partition_id: PartitionId,
    exit_doors: Tuple[DoorId, ...],
    door_locations: Dict[DoorId, object],
    clients: Sequence[Client],
) -> "_np.ndarray":
    """``(clients, exit_doors)`` intra-partition offset matrix."""
    rows = group_offset_rows(
        venue, partition_id, exit_doors, door_locations, clients
    )
    offsets = _np.array(rows, dtype=_np.float64)
    if not rows:
        offsets = offsets.reshape(0, len(exit_doors))
    return offsets


__all__: List[str] = [
    "ENV_FLAG",
    "GroupArrays",
    "KernelPack",
    "available",
    "build_pack",
    "default_enabled",
    "group_offset_rows",
    "group_offsets",
]
