"""VIP-tree-backed indoor distance engine.

Implements the three distance primitives the IFLS algorithms consume
(paper Section 5.3.1), all resolved through the tree's matrices:

* ``iMinD(p, I)`` — shortest indoor distance between a partition ``p``
  (distance 0 to its own doors) and an indoor entity ``I`` (partition or
  VIP-tree node);
* ``iDist(c, p)`` — shortest indoor distance between a client and a
  partition, with the paper's single-door shortcut: when the client's
  partition has exactly one door, the already-memoised ``iMinD(c.p, p)``
  is reused and only the client's offset to that door is added;
* ``minD(point, N)`` — lower bound from an exact point to a node, used
  by the top-down nearest-neighbour search of the baseline.

The engine memoises ``iMinD`` per partition pair, which is what makes
the paper's client-grouping pay off: all clients of a single-door
partition share one matrix computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..indoor.entities import Client, PartitionId
from ..indoor.venue import IndoorVenue
from .node import VIPNode
from .viptree import VIPTree

INFINITY = float("inf")


@dataclass
class DistanceStats:
    """Counters describing how hard the engine worked.

    ``distance_computations`` counts resolved point/partition distance
    requests (the paper's "number of indoor distance computations");
    cache hits are counted separately so pruning effects are visible.
    """

    distance_computations: int = 0
    d2d_lookups: int = 0
    imind_cache_hits: int = 0
    idist_calls: int = 0
    single_door_shortcuts: int = 0

    def merge(self, other: "DistanceStats") -> None:
        """Accumulate another counter set into this one."""
        self.distance_computations += other.distance_computations
        self.d2d_lookups += other.d2d_lookups
        self.imind_cache_hits += other.imind_cache_hits
        self.idist_calls += other.idist_calls
        self.single_door_shortcuts += other.single_door_shortcuts

    def snapshot(self) -> Dict[str, int]:
        """Flat dict of the counters (for reports)."""
        return {
            "distance_computations": self.distance_computations,
            "d2d_lookups": self.d2d_lookups,
            "imind_cache_hits": self.imind_cache_hits,
            "idist_calls": self.idist_calls,
            "single_door_shortcuts": self.single_door_shortcuts,
        }


class VIPDistanceEngine:
    """Distance primitives over a :class:`VIPTree`.

    ``memoize`` controls the partition-level distance reuse that the
    *efficient* IFLS algorithm contributes (Section 5.3.1): caching
    ``iMinD`` per partition pair and door-pair distances, plus the
    single-door shortcut that lets all clients of a one-door partition
    share a single computation.  The paper's baseline "considers each
    client separately", so it runs on an engine with ``memoize=False``
    where every call recomputes from the index matrices.
    """

    def __init__(self, tree: VIPTree, memoize: bool = True) -> None:
        self.tree = tree
        self.venue: IndoorVenue = tree.venue
        self.memoize = memoize
        self.stats = DistanceStats()
        self._imind_pp: Dict[Tuple[PartitionId, PartitionId], float] = {}
        self._d2d_cache: Dict[Tuple[int, int], float] = {}
        # Per-partition door metadata, resolved once (structural, not a
        # distance memo — kept in both modes).
        self._doors_of: Dict[PartitionId, Tuple[int, ...]] = {}
        self._door_locations = {
            d.door_id: d.location for d in self.venue.doors()
        }

    def reset_stats(self) -> DistanceStats:
        """Return current stats and start a fresh counter set."""
        out = self.stats
        self.stats = DistanceStats()
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _doors(self, partition_id: PartitionId) -> Tuple[int, ...]:
        doors = self._doors_of.get(partition_id)
        if doors is None:
            doors = tuple(self.venue.doors_of(partition_id))
            self._doors_of[partition_id] = doors
        return doors

    def door_to_door(self, a: int, b: int) -> float:
        """Door distance via the tree matrices (memoised if enabled)."""
        if not self.memoize:
            self.stats.d2d_lookups += 1
            return self.tree.door_to_door(a, b)
        key = (a, b) if a <= b else (b, a)
        cached = self._d2d_cache.get(key)
        if cached is not None:
            return cached
        self.stats.d2d_lookups += 1
        dist = self.tree.door_to_door(a, b)
        self._d2d_cache[key] = dist
        return dist

    # ------------------------------------------------------------------
    # iMinD: partition <-> entity
    # ------------------------------------------------------------------
    def imind_partitions(self, a: PartitionId, b: PartitionId) -> float:
        """``iMinD`` between two partitions (0 when equal)."""
        if a == b:
            return 0.0
        key = (a, b) if a <= b else (b, a)
        if self.memoize:
            cached = self._imind_pp.get(key)
            if cached is not None:
                self.stats.imind_cache_hits += 1
                return cached
        self.stats.distance_computations += 1
        best = INFINITY
        doors_b = self._doors(b)
        for door_a in self._doors(a):
            for door_b in doors_b:
                d = self.door_to_door(door_a, door_b)
                if d < best:
                    best = d
        if self.memoize:
            self._imind_pp[key] = best
        return best

    def imind_node(self, partition_id: PartitionId, node: VIPNode) -> float:
        """``iMinD`` from a partition to a VIP-tree node.

        0 when the node's subtree covers the partition; otherwise the
        best door→access-door matrix entry.  This is an exact lower
        bound for ``iDist(c, f)`` of any client ``c`` in the partition
        and any facility ``f`` inside the node.
        """
        if self.tree.covers(node, partition_id):
            return 0.0
        self.stats.distance_computations += 1
        best = INFINITY
        rows = self.tree.rows
        for access in node.access_doors:
            row = rows[access]
            for door_a in self._doors(partition_id):
                d = row.get(door_a)
                if d is not None and d < best:
                    best = d
        return best

    # ------------------------------------------------------------------
    # iDist: client/point <-> partition
    # ------------------------------------------------------------------
    def idist(self, client: Client, target: PartitionId) -> float:
        """``iDist(c, p)``: exact client-to-partition indoor distance.

        Implements both cases of paper §5.3.1: the single-door shortcut
        reuses the memoised ``iMinD`` of the client's partition, the
        general case enumerates exit doors.
        """
        self.stats.idist_calls += 1
        source = client.partition_id
        if source == target:
            return 0.0
        partition = self.venue.partition(source)
        exit_doors = self._doors(source)
        if len(exit_doors) == 1 and self.memoize:
            self.stats.single_door_shortcuts += 1
            door_location = self._door_locations[exit_doors[0]]
            offset = partition.intra_distance(client.location, door_location)
            return self.imind_partitions(source, target) + offset
        best = INFINITY
        target_doors = self._doors(target)
        for exit_id in exit_doors:
            offset = partition.intra_distance(
                client.location, self._door_locations[exit_id]
            )
            if offset >= best:
                continue
            for target_door in target_doors:
                total = offset + self.door_to_door(exit_id, target_door)
                if total < best:
                    best = total
        return best

    def point_min_dist_to_node(self, client: Client, node: VIPNode) -> float:
        """Lower bound from an exact client location to a node.

        Unlike :meth:`imind_node` this includes the client's offset to
        its partition's exit doors, so the bound is tight enough for
        top-down NN search (baseline algorithm).
        """
        source = client.partition_id
        if self.tree.covers(node, source):
            return 0.0
        partition = self.venue.partition(source)
        best = INFINITY
        rows = self.tree.rows
        offsets = [
            (
                partition.intra_distance(
                    client.location, self._door_locations[door_id]
                ),
                door_id,
            )
            for door_id in self._doors(source)
        ]
        for access in node.access_doors:
            row = rows[access]
            for offset, door_id in offsets:
                if offset >= best:
                    continue
                d = row.get(door_id)
                if d is not None and offset + d < best:
                    best = offset + d
        return best

    def point_to_point(
        self,
        a_client: Client,
        b_client: Client,
    ) -> float:
        """Shortest indoor distance between two located clients.

        Not used on the IFLS hot path (facilities are partitions) but
        part of the public VIP-tree API the paper builds on.
        """
        if a_client.partition_id == b_client.partition_id:
            partition = self.venue.partition(a_client.partition_id)
            return partition.intra_distance(
                a_client.location, b_client.location
            )
        partition_b = self.venue.partition(b_client.partition_id)
        best = INFINITY
        for door_id in self._doors(b_client.partition_id):
            tail = partition_b.intra_distance(
                b_client.location, self._door_locations[door_id]
            )
            if tail >= best:
                continue
            head = self._point_to_door(a_client, door_id)
            if head + tail < best:
                best = head + tail
        return best

    def _point_to_door(self, client: Client, door_id: int) -> float:
        partition = self.venue.partition(client.partition_id)
        best = INFINITY
        door = self.venue.door(door_id)
        if client.partition_id in door.partitions():
            best = partition.intra_distance(client.location, door.location)
        for exit_id in self._doors(client.partition_id):
            offset = partition.intra_distance(
                client.location, self._door_locations[exit_id]
            )
            if offset >= best:
                continue
            via = offset + self.door_to_door(exit_id, door_id)
            if via < best:
                best = via
        return best
