"""VIP-tree-backed indoor distance engine.

Implements the three distance primitives the IFLS algorithms consume
(paper Section 5.3.1), all resolved through the tree's matrices:

* ``iMinD(p, I)`` — shortest indoor distance between a partition ``p``
  (distance 0 to its own doors) and an indoor entity ``I`` (partition or
  VIP-tree node);
* ``iDist(c, p)`` — shortest indoor distance between a client and a
  partition, with the paper's single-door shortcut: when the client's
  partition has exactly one door, ``iMinD(c.p, p)`` is reused and only
  the client's offset to that door is added;
* ``minD(point, N)`` — lower bound from an exact point to a node, used
  by the top-down nearest-neighbour search of the baseline.

The engine memoises ``iMinD`` per partition pair *and* per
(partition, node) pair, plus door-pair distances, which is what makes
the paper's client-grouping pay off and what
:class:`~repro.core.session.QuerySession` keeps warm across a whole
query batch.  ``max_cache_entries`` bounds
the total number of memoised entries; the oldest entries are evicted
first (insertion order), so a long-lived session's memory stays flat.

Counter semantics (kept uniform across ``memoize`` modes so
baseline-vs-efficient comparisons in ``bench/`` are apples-to-apples):

* ``*_calls`` / ``*_lookups`` count every request, hit or miss;
* ``*_cache_hits`` count the requests served from a memo;
* ``distance_computations`` counts the requests actually resolved from
  the matrices, so ``calls == cache_hits + computations`` always holds
  (``tools/check_counters.py`` enforces this).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..indoor.entities import Client, PartitionId
from ..indoor.venue import IndoorVenue
from ..obs import metrics as _metrics
from .node import VIPNode
from .viptree import VIPTree

INFINITY = float("inf")


@dataclass
class DistanceStats:
    """Counters describing how hard the engine worked.

    ``distance_computations`` counts resolved partition/node distance
    requests (the paper's "number of indoor distance computations");
    cache hits are counted separately so pruning and warm-cache effects
    are visible.  The invariant
    ``imind_calls + imind_node_calls ==
    imind_cache_hits + imind_node_cache_hits + distance_computations``
    holds by construction, as does ``d2d_cache_hits <= d2d_lookups``.
    """

    distance_computations: int = 0
    d2d_lookups: int = 0
    d2d_cache_hits: int = 0
    imind_calls: int = 0
    imind_cache_hits: int = 0
    imind_node_calls: int = 0
    imind_node_cache_hits: int = 0
    idist_calls: int = 0
    single_door_shortcuts: int = 0
    cache_evictions: int = 0

    def merge(self, other: "DistanceStats") -> None:
        """Accumulate another counter set into this one."""
        self.distance_computations += other.distance_computations
        self.d2d_lookups += other.d2d_lookups
        self.d2d_cache_hits += other.d2d_cache_hits
        self.imind_calls += other.imind_calls
        self.imind_cache_hits += other.imind_cache_hits
        self.imind_node_calls += other.imind_node_calls
        self.imind_node_cache_hits += other.imind_node_cache_hits
        self.idist_calls += other.idist_calls
        self.single_door_shortcuts += other.single_door_shortcuts
        self.cache_evictions += other.cache_evictions

    @property
    def cache_hits(self) -> int:
        """All memo hits (door-pair, partition-pair, node bounds)."""
        return (
            self.d2d_cache_hits
            + self.imind_cache_hits
            + self.imind_node_cache_hits
        )

    def snapshot(self) -> Dict[str, int]:
        """Flat dict of the counters (for reports)."""
        return {
            "distance_computations": self.distance_computations,
            "d2d_lookups": self.d2d_lookups,
            "d2d_cache_hits": self.d2d_cache_hits,
            "imind_calls": self.imind_calls,
            "imind_cache_hits": self.imind_cache_hits,
            "imind_node_calls": self.imind_node_calls,
            "imind_node_cache_hits": self.imind_node_cache_hits,
            "idist_calls": self.idist_calls,
            "single_door_shortcuts": self.single_door_shortcuts,
            "cache_evictions": self.cache_evictions,
        }


class VIPDistanceEngine:
    """Distance primitives over a :class:`VIPTree`.

    ``memoize`` controls the partition-level distance reuse that the
    *efficient* IFLS algorithm contributes (Section 5.3.1): caching
    ``iMinD`` per partition pair, per (partition, node) pair, and
    door-pair distances.  The paper's baseline "considers each client
    separately", so it runs on an engine with ``memoize=False`` where
    every call recomputes from the index matrices — the *code paths*
    (including the single-door shortcut) are identical in both modes,
    only the memo reuse differs.

    ``max_cache_entries`` caps the combined size of the three memo
    tables; ``None`` means unbounded.  Eviction is oldest-first from
    the largest table, counted in ``stats.cache_evictions``.
    """

    def __init__(
        self,
        tree: VIPTree,
        memoize: bool = True,
        max_cache_entries: Optional[int] = None,
    ) -> None:
        if max_cache_entries is not None and max_cache_entries < 1:
            raise ValueError("max_cache_entries must be >= 1 or None")
        self.tree = tree
        self.venue: IndoorVenue = tree.venue
        self.memoize = memoize
        self.max_cache_entries = max_cache_entries
        self.stats = DistanceStats()
        self._imind_pp: Dict[Tuple[PartitionId, PartitionId], float] = {}
        self._imind_node: Dict[Tuple[PartitionId, int], float] = {}
        self._d2d_cache: Dict[Tuple[int, int], float] = {}
        # Per-partition door metadata, resolved once (structural, not a
        # distance memo — kept in both modes and never evicted).
        self._doors_of: Dict[PartitionId, Tuple[int, ...]] = {}
        self._door_locations = {
            d.door_id: d.location for d in self.venue.doors()
        }

    def reset_stats(self) -> DistanceStats:
        """Return current stats and start a fresh counter set."""
        out = self.stats
        self.stats = DistanceStats()
        return out

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def cache_sizes(self) -> Dict[str, int]:
        """Entry counts of the three memo tables."""
        return {
            "imind_pp": len(self._imind_pp),
            "imind_node": len(self._imind_node),
            "d2d": len(self._d2d_cache),
        }

    def cache_entries(self) -> int:
        """Total memoised entries across all tables."""
        return (
            len(self._imind_pp)
            + len(self._imind_node)
            + len(self._d2d_cache)
        )

    def cache_bytes(self) -> int:
        """Approximate memory held by the memo tables (keys + values +
        dict overhead; shared key/value objects counted once each)."""
        total = 0
        for cache in (self._imind_pp, self._imind_node, self._d2d_cache):
            total += sys.getsizeof(cache)
            for key, value in cache.items():
                total += sys.getsizeof(key) + sys.getsizeof(value)
        return total

    def clear_caches(self) -> None:
        """Drop every memoised distance (venue-edit invalidation)."""
        self._imind_pp.clear()
        self._imind_node.clear()
        self._d2d_cache.clear()

    def _store(self, cache: Dict, key, value: float) -> None:
        cache[key] = value
        budget = self.max_cache_entries
        if budget is None:
            return
        evicted = 0
        while self.cache_entries() > budget:
            victim = max(
                (self._imind_pp, self._imind_node, self._d2d_cache),
                key=len,
            )
            victim.pop(next(iter(victim)))
            evicted += 1
        if evicted:
            self.stats.cache_evictions += evicted
            _metrics.add("cache.evictions", evicted)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _doors(self, partition_id: PartitionId) -> Tuple[int, ...]:
        doors = self._doors_of.get(partition_id)
        if doors is None:
            doors = tuple(self.venue.doors_of(partition_id))
            self._doors_of[partition_id] = doors
        return doors

    def door_to_door(self, a: int, b: int) -> float:
        """Door distance via the tree matrices (memoised if enabled)."""
        self.stats.d2d_lookups += 1
        if not self.memoize:
            return self.tree.door_to_door(a, b)
        key = (a, b) if a <= b else (b, a)
        cached = self._d2d_cache.get(key)
        if cached is not None:
            self.stats.d2d_cache_hits += 1
            return cached
        dist = self.tree.door_to_door(a, b)
        self._store(self._d2d_cache, key, dist)
        return dist

    # ------------------------------------------------------------------
    # iMinD: partition <-> entity
    # ------------------------------------------------------------------
    def imind_partitions(self, a: PartitionId, b: PartitionId) -> float:
        """``iMinD`` between two partitions (0 when equal)."""
        if a == b:
            return 0.0
        self.stats.imind_calls += 1
        key = (a, b) if a <= b else (b, a)
        if self.memoize:
            cached = self._imind_pp.get(key)
            if cached is not None:
                self.stats.imind_cache_hits += 1
                return cached
        self.stats.distance_computations += 1
        best = INFINITY
        doors_b = self._doors(b)
        for door_a in self._doors(a):
            for door_b in doors_b:
                d = self.door_to_door(door_a, door_b)
                if d < best:
                    best = d
        if self.memoize:
            self._store(self._imind_pp, key, best)
        return best

    def imind_node(self, partition_id: PartitionId, node: VIPNode) -> float:
        """``iMinD`` from a partition to a VIP-tree node.

        0 when the node's subtree covers the partition; otherwise the
        best door→access-door matrix entry.  This is an exact lower
        bound for ``iDist(c, f)`` of any client ``c`` in the partition
        and any facility ``f`` inside the node.  Memoised per
        ``(partition, node)`` so traversals of later queries in a
        session reuse the bounds computed by earlier ones.
        """
        if self.tree.covers(node, partition_id):
            return 0.0
        self.stats.imind_node_calls += 1
        key = (partition_id, node.node_id)
        if self.memoize:
            cached = self._imind_node.get(key)
            if cached is not None:
                self.stats.imind_node_cache_hits += 1
                return cached
        self.stats.distance_computations += 1
        best = INFINITY
        rows = self.tree.rows
        for access in node.access_doors:
            row = rows[access]
            for door_a in self._doors(partition_id):
                d = row.get(door_a)
                if d is not None and d < best:
                    best = d
        if self.memoize:
            self._store(self._imind_node, key, best)
        return best

    # ------------------------------------------------------------------
    # iDist: client/point <-> partition
    # ------------------------------------------------------------------
    def idist(self, client: Client, target: PartitionId) -> float:
        """``iDist(c, p)``: exact client-to-partition indoor distance.

        Implements both cases of paper §5.3.1: the single-door shortcut
        reuses ``iMinD`` of the client's partition, the general case
        enumerates exit doors.  The shortcut depends only on the door
        count — both ``memoize`` modes take the same code path, the
        memoised mode merely reuses the cached ``iMinD``.
        """
        self.stats.idist_calls += 1
        source = client.partition_id
        if source == target:
            return 0.0
        partition = self.venue.partition(source)
        exit_doors = self._doors(source)
        if len(exit_doors) == 1:
            self.stats.single_door_shortcuts += 1
            door_location = self._door_locations[exit_doors[0]]
            offset = partition.intra_distance(client.location, door_location)
            return self.imind_partitions(source, target) + offset
        best = INFINITY
        target_doors = self._doors(target)
        for exit_id in exit_doors:
            offset = partition.intra_distance(
                client.location, self._door_locations[exit_id]
            )
            if offset >= best:
                continue
            for target_door in target_doors:
                total = offset + self.door_to_door(exit_id, target_door)
                if total < best:
                    best = total
        return best

    def point_min_dist_to_node(self, client: Client, node: VIPNode) -> float:
        """Lower bound from an exact client location to a node.

        Unlike :meth:`imind_node` this includes the client's offset to
        its partition's exit doors, so the bound is tight enough for
        top-down NN search (baseline algorithm).
        """
        source = client.partition_id
        if self.tree.covers(node, source):
            return 0.0
        partition = self.venue.partition(source)
        best = INFINITY
        rows = self.tree.rows
        offsets = [
            (
                partition.intra_distance(
                    client.location, self._door_locations[door_id]
                ),
                door_id,
            )
            for door_id in self._doors(source)
        ]
        for access in node.access_doors:
            row = rows[access]
            for offset, door_id in offsets:
                if offset >= best:
                    continue
                d = row.get(door_id)
                if d is not None and offset + d < best:
                    best = offset + d
        return best

    def point_to_point(
        self,
        a_client: Client,
        b_client: Client,
    ) -> float:
        """Shortest indoor distance between two located clients.

        Not used on the IFLS hot path (facilities are partitions) but
        part of the public VIP-tree API the paper builds on.
        """
        if a_client.partition_id == b_client.partition_id:
            partition = self.venue.partition(a_client.partition_id)
            return partition.intra_distance(
                a_client.location, b_client.location
            )
        partition_b = self.venue.partition(b_client.partition_id)
        best = INFINITY
        for door_id in self._doors(b_client.partition_id):
            tail = partition_b.intra_distance(
                b_client.location, self._door_locations[door_id]
            )
            if tail >= best:
                continue
            head = self._point_to_door(a_client, door_id)
            if head + tail < best:
                best = head + tail
        return best

    def _point_to_door(self, client: Client, door_id: int) -> float:
        partition = self.venue.partition(client.partition_id)
        best = INFINITY
        door = self.venue.door(door_id)
        if client.partition_id in door.partitions():
            best = partition.intra_distance(client.location, door.location)
        for exit_id in self._doors(client.partition_id):
            offset = partition.intra_distance(
                client.location, self._door_locations[exit_id]
            )
            if offset >= best:
                continue
            via = offset + self.door_to_door(exit_id, door_id)
            if via < best:
                best = via
        return best
