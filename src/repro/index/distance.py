"""VIP-tree-backed indoor distance engine.

Implements the three distance primitives the IFLS algorithms consume
(paper Section 5.3.1), all resolved through the tree's matrices:

* ``iMinD(p, I)`` — shortest indoor distance between a partition ``p``
  (distance 0 to its own doors) and an indoor entity ``I`` (partition or
  VIP-tree node);
* ``iDist(c, p)`` — shortest indoor distance between a client and a
  partition, with the paper's single-door shortcut: when the client's
  partition has exactly one door, ``iMinD(c.p, p)`` is reused and only
  the client's offset to that door is added;
* ``minD(point, N)`` — lower bound from an exact point to a node, used
  by the top-down nearest-neighbour search of the baseline.

The engine memoises ``iMinD`` per partition pair *and* per
(partition, node) pair, plus door-pair distances, which is what makes
the paper's client-grouping pay off and what
:class:`~repro.core.session.QuerySession` keeps warm across a whole
query batch.  ``max_cache_entries`` bounds
the total number of memoised entries; the oldest entries are evicted
first (insertion order), so a long-lived session's memory stays flat.

Counter semantics (kept uniform across ``memoize`` modes so
baseline-vs-efficient comparisons in ``bench/`` are apples-to-apples):

* ``*_calls`` / ``*_lookups`` count every request, hit or miss;
* ``*_cache_hits`` count the requests served from a memo;
* ``distance_computations`` counts the requests actually resolved from
  the matrices, so ``calls == cache_hits + computations`` always holds
  (``tools/check_counters.py`` enforces this).

With ``use_kernels`` enabled (the default when numpy is importable,
see :mod:`repro.index.kernels`) the engine resolves the *inner door
loops* of ``imind_partitions`` / ``imind_node`` through dense-array
reductions and exposes batch entry points (:meth:`idist_many`,
:meth:`door_to_door_many`, :meth:`imind_node_many`) that answer whole
client groups per call.  Values are bit-identical to the scalar path;
counters stay ledger-consistent, with bulk increments: a kernelised
``imind_partitions`` miss counts its full door-pair block as
``d2d_lookups`` (no per-pair memo traffic), and every array reduction
counts one ``kernel_batches``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from ..errors import QueryError
from ..indoor.entities import Client, PartitionId
from ..indoor.venue import IndoorVenue
from ..obs import metrics as _metrics
from . import kernels as _kernels
from .node import VIPNode
from .viptree import VIPTree

INFINITY = float("inf")


@dataclass
class DistanceStats:
    """Counters describing how hard the engine worked.

    ``distance_computations`` counts resolved partition/node distance
    requests (the paper's "number of indoor distance computations");
    cache hits are counted separately so pruning and warm-cache effects
    are visible.  The invariant
    ``imind_calls + imind_node_calls ==
    imind_cache_hits + imind_node_cache_hits + distance_computations``
    holds by construction, as does ``d2d_cache_hits <= d2d_lookups``.
    """

    distance_computations: int = 0
    d2d_lookups: int = 0
    d2d_cache_hits: int = 0
    imind_calls: int = 0
    imind_cache_hits: int = 0
    imind_node_calls: int = 0
    imind_node_cache_hits: int = 0
    idist_calls: int = 0
    single_door_shortcuts: int = 0
    cache_evictions: int = 0
    kernel_batches: int = 0

    def merge(self, other: "DistanceStats") -> None:
        """Accumulate another counter set into this one."""
        self.distance_computations += other.distance_computations
        self.d2d_lookups += other.d2d_lookups
        self.d2d_cache_hits += other.d2d_cache_hits
        self.imind_calls += other.imind_calls
        self.imind_cache_hits += other.imind_cache_hits
        self.imind_node_calls += other.imind_node_calls
        self.imind_node_cache_hits += other.imind_node_cache_hits
        self.idist_calls += other.idist_calls
        self.single_door_shortcuts += other.single_door_shortcuts
        self.cache_evictions += other.cache_evictions
        self.kernel_batches += other.kernel_batches

    @property
    def cache_hits(self) -> int:
        """All memo hits (door-pair, partition-pair, node bounds)."""
        return (
            self.d2d_cache_hits
            + self.imind_cache_hits
            + self.imind_node_cache_hits
        )

    def snapshot(self) -> Dict[str, int]:
        """Flat dict of the counters (for reports)."""
        return {
            "distance_computations": self.distance_computations,
            "d2d_lookups": self.d2d_lookups,
            "d2d_cache_hits": self.d2d_cache_hits,
            "imind_calls": self.imind_calls,
            "imind_cache_hits": self.imind_cache_hits,
            "imind_node_calls": self.imind_node_calls,
            "imind_node_cache_hits": self.imind_node_cache_hits,
            "idist_calls": self.idist_calls,
            "single_door_shortcuts": self.single_door_shortcuts,
            "cache_evictions": self.cache_evictions,
            "kernel_batches": self.kernel_batches,
        }


class VIPDistanceEngine:
    """Distance primitives over a :class:`VIPTree`.

    ``memoize`` controls the partition-level distance reuse that the
    *efficient* IFLS algorithm contributes (Section 5.3.1): caching
    ``iMinD`` per partition pair, per (partition, node) pair, and
    door-pair distances.  The paper's baseline "considers each client
    separately", so it runs on an engine with ``memoize=False`` where
    every call recomputes from the index matrices — the *code paths*
    (including the single-door shortcut) are identical in both modes,
    only the memo reuse differs.

    ``max_cache_entries`` caps the combined size of the three memo
    tables; ``None`` means unbounded.  Eviction is oldest-first from
    the largest table, counted in ``stats.cache_evictions``; the entry
    being stored is never its own victim, and a budget of ``0``
    disables storage entirely (every request recomputes).

    ``use_kernels`` selects the dense-array fast paths of
    :mod:`repro.index.kernels` for the inner door loops and enables the
    batch entry points.  ``None`` (default) resolves to "numpy is
    importable and ``IFLS_USE_KERNELS`` is not off"; ``False`` is the
    scalar oracle path; ``True`` without numpy raises.
    """

    def __init__(
        self,
        tree: VIPTree,
        memoize: bool = True,
        max_cache_entries: Optional[int] = None,
        use_kernels: Optional[bool] = None,
    ) -> None:
        if max_cache_entries is not None and max_cache_entries < 0:
            raise ValueError("max_cache_entries must be >= 0 or None")
        if use_kernels is None:
            use_kernels = _kernels.default_enabled()
        elif use_kernels and not _kernels.available():
            raise QueryError(
                "use_kernels=True requires numpy; leave it unset (or "
                "False) for the scalar path"
            )
        self.tree = tree
        self.venue: IndoorVenue = tree.venue
        self.memoize = memoize
        self.max_cache_entries = max_cache_entries
        self.use_kernels = bool(use_kernels)
        self._pack: Optional[_kernels.KernelPack] = (
            tree.kernels() if self.use_kernels else None
        )
        self.stats = DistanceStats()
        self._imind_pp: Dict[Tuple[PartitionId, PartitionId], float] = {}
        self._imind_node: Dict[Tuple[PartitionId, int], float] = {}
        self._d2d_cache: Dict[Tuple[int, int], float] = {}
        # Per-partition door metadata, resolved once (structural, not a
        # distance memo — kept in both modes and never evicted).
        self._doors_of: Dict[PartitionId, Tuple[int, ...]] = {}
        self._door_locations = {
            d.door_id: d.location for d in self.venue.doors()
        }
        # Single-exit-door lane: (intra_distance, door location) per
        # partition, resolved once (structural, like _doors_of).
        self._single_door: Dict[PartitionId, Tuple] = {}

    def reset_stats(self) -> DistanceStats:
        """Return current stats and start a fresh counter set."""
        out = self.stats
        self.stats = DistanceStats()
        return out

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def cache_sizes(self) -> Dict[str, int]:
        """Entry counts of the three memo tables."""
        return {
            "imind_pp": len(self._imind_pp),
            "imind_node": len(self._imind_node),
            "d2d": len(self._d2d_cache),
        }

    def cache_entries(self) -> int:
        """Total memoised entries across all tables."""
        return (
            len(self._imind_pp)
            + len(self._imind_node)
            + len(self._d2d_cache)
        )

    def cache_bytes(self) -> int:
        """Approximate memory held by the memo tables (keys + values +
        dict overhead; shared key/value objects counted once each)."""
        total = 0
        seen: set = set()
        for cache in (self._imind_pp, self._imind_node, self._d2d_cache):
            total += sys.getsizeof(cache)
            for key, value in cache.items():
                # CPython interns small ints and reuses float objects
                # across tables; dedupe by identity so a shared object
                # is charged once, as the docstring promises.
                if id(key) not in seen:
                    seen.add(id(key))
                    total += sys.getsizeof(key)
                if id(value) not in seen:
                    seen.add(id(value))
                    total += sys.getsizeof(value)
        return total

    def clear_caches(self) -> None:
        """Drop every memoised distance (venue-edit invalidation).

        With kernels enabled the tree's array pack is derived data of
        the same matrices, so it is invalidated and re-derived too.
        """
        self._imind_pp.clear()
        self._imind_node.clear()
        self._d2d_cache.clear()
        if self.use_kernels:
            self.tree.invalidate_kernels()
            self._pack = self.tree.kernels()

    def _store(self, cache: Dict, key, value: float) -> None:
        budget = self.max_cache_entries
        if budget == 0:
            return  # cache disabled: never store, never evict
        cache[key] = value
        if budget is None:
            return
        tables = (self._imind_pp, self._imind_node, self._d2d_cache)
        evicted = 0
        while self.cache_entries() > budget:
            victim = max(tables, key=len)
            oldest = next(iter(victim))
            if victim is cache and oldest == key:
                # Never evict the entry we are storing: with a tiny
                # budget the FIFO head of the largest table can be the
                # fresh key itself, and evicting it would thrash the
                # cache (hit counters never move).  Take the
                # next-oldest entry, or fall back to another table.
                if len(victim) > 1:
                    walker = iter(victim)
                    next(walker)
                    oldest = next(walker)
                else:
                    others = [
                        table
                        for table in tables
                        if table is not victim and table
                    ]
                    if not others:  # pragma: no cover - budget 0 only
                        break
                    victim = max(others, key=len)
                    oldest = next(iter(victim))
            victim.pop(oldest)
            evicted += 1
        if evicted:
            self.stats.cache_evictions += evicted
            _metrics.add("cache.evictions", evicted)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _doors(self, partition_id: PartitionId) -> Tuple[int, ...]:
        doors = self._doors_of.get(partition_id)
        if doors is None:
            doors = tuple(self.venue.doors_of(partition_id))
            self._doors_of[partition_id] = doors
        return doors

    def door_to_door(self, a: int, b: int) -> float:
        """Door distance via the tree matrices (memoised if enabled)."""
        self.stats.d2d_lookups += 1
        if not self.memoize:
            return self.tree.door_to_door(a, b)
        key = (a, b) if a <= b else (b, a)
        cached = self._d2d_cache.get(key)
        if cached is not None:
            self.stats.d2d_cache_hits += 1
            return cached
        dist = self.tree.door_to_door(a, b)
        self._store(self._d2d_cache, key, dist)
        return dist

    # ------------------------------------------------------------------
    # iMinD: partition <-> entity
    # ------------------------------------------------------------------
    def imind_partitions(self, a: PartitionId, b: PartitionId) -> float:
        """``iMinD`` between two partitions (0 when equal)."""
        if a == b:
            return 0.0
        self.stats.imind_calls += 1
        key = (a, b) if a <= b else (b, a)
        if self.memoize:
            cached = self._imind_pp.get(key)
            if cached is not None:
                self.stats.imind_cache_hits += 1
                return cached
        self.stats.distance_computations += 1
        doors_a = self._doors(a)
        doors_b = self._doors(b)
        pack = self._pack
        if pack is not None:
            # Whole door-pair block in one reduction.  Every pair is
            # read from the packed matrices, so the full block counts
            # as lookups (same count as the scalar loop); the per-pair
            # memo is bypassed — the pp memo entry stored below is the
            # reuse unit.  The reduction itself is memoised on the pack
            # (static tree data), so cold engines pay it once per tree.
            self.stats.d2d_lookups += len(doors_a) * len(doors_b)
            self.stats.kernel_batches += 1
            best = pack.partition_pair_min(a, b)
        else:
            best = INFINITY
            for door_a in doors_a:
                for door_b in doors_b:
                    d = self.door_to_door(door_a, door_b)
                    if d < best:
                        best = d
        if self.memoize:
            self._store(self._imind_pp, key, best)
        return best

    def imind_node(self, partition_id: PartitionId, node: VIPNode) -> float:
        """``iMinD`` from a partition to a VIP-tree node.

        0 when the node's subtree covers the partition; otherwise the
        best door→access-door matrix entry.  This is an exact lower
        bound for ``iDist(c, f)`` of any client ``c`` in the partition
        and any facility ``f`` inside the node.  Memoised per
        ``(partition, node)`` so traversals of later queries in a
        session reuse the bounds computed by earlier ones.
        """
        if self.tree.covers(node, partition_id):
            return 0.0
        self.stats.imind_node_calls += 1
        key = (partition_id, node.node_id)
        if self.memoize:
            cached = self._imind_node.get(key)
            if cached is not None:
                self.stats.imind_node_cache_hits += 1
                return cached
        self.stats.distance_computations += 1
        pack = self._pack
        if pack is not None:
            # Dense submatrix min over (access rows x partition door
            # columns); like the scalar loop this reads the packed rows
            # directly and counts no d2d lookups.
            self.stats.kernel_batches += 1
            best = pack.imind_node(partition_id, node)
        else:
            best = INFINITY
            rows = self.tree.rows
            for access in node.access_doors:
                row = rows[access]
                for door_a in self._doors(partition_id):
                    d = row.get(door_a)
                    if d is not None and d < best:
                        best = d
        if self.memoize:
            self._store(self._imind_node, key, best)
        return best

    # ------------------------------------------------------------------
    # iDist: client/point <-> partition
    # ------------------------------------------------------------------
    def idist(self, client: Client, target: PartitionId) -> float:
        """``iDist(c, p)``: exact client-to-partition indoor distance.

        Implements both cases of paper §5.3.1: the single-door shortcut
        reuses ``iMinD`` of the client's partition, the general case
        enumerates exit doors.  The shortcut depends only on the door
        count — both ``memoize`` modes take the same code path, the
        memoised mode merely reuses the cached ``iMinD``.
        """
        self.stats.idist_calls += 1
        source = client.partition_id
        if source == target:
            return 0.0
        partition = self.venue.partition(source)
        exit_doors = self._doors(source)
        if len(exit_doors) == 1:
            self.stats.single_door_shortcuts += 1
            door_location = self._door_locations[exit_doors[0]]
            offset = partition.intra_distance(client.location, door_location)
            return self.imind_partitions(source, target) + offset
        best = INFINITY
        target_doors = self._doors(target)
        for exit_id in exit_doors:
            offset = partition.intra_distance(
                client.location, self._door_locations[exit_id]
            )
            if offset >= best:
                continue
            for target_door in target_doors:
                total = offset + self.door_to_door(exit_id, target_door)
                if total < best:
                    best = total
        return best

    # ------------------------------------------------------------------
    # Batch kernels: whole client groups / door sets per call
    # ------------------------------------------------------------------
    @property
    def kernel_pack(self) -> Optional["_kernels.KernelPack"]:
        """The tree's dense-array pack, or ``None`` on the scalar path."""
        return self._pack

    def _require_pack(self) -> "_kernels.KernelPack":
        if self._pack is None:
            raise QueryError(
                "batch kernels require an engine with use_kernels=True"
            )
        return self._pack

    def group_arrays(
        self,
        clients: Sequence[Client],
        partition_id: Optional[PartitionId] = None,
        pruned: Sequence[int] = (),
    ) -> "_kernels.GroupArrays":
        """Array-laid state for one client group (shared partition).

        Computes the clients' intra-partition offsets to every exit
        door once — the scalar path recomputes them on every facility
        retrieval — and initialises the active mask from ``pruned``.
        """
        self._require_pack()
        if partition_id is None:
            partition_id = clients[0].partition_id
        exit_doors = self._doors(partition_id)
        offsets = _kernels.group_offset_rows(
            self.venue,
            partition_id,
            exit_doors,
            self._door_locations,
            clients,
        )
        return _kernels.GroupArrays(
            partition_id, exit_doors, clients, offsets, pruned=pruned
        )

    def idist_rows(self, arrays, rows, target: PartitionId):
        """``iDist(c, target)`` for the given rows of one group.

        One call answers a whole facility retrieval: counters advance
        exactly as ``len(rows)`` scalar :meth:`idist` calls would for
        ``idist_calls`` / ``single_door_shortcuts``, the ``iMinD``
        ledger advances once per *distinct* request (the scalar path's
        repeats were memo hits), and the general case counts its full
        exit-door x target-door block as ``d2d_lookups``.  Values are
        bit-identical to the scalar path (same candidate sums, same
        ``min`` reduction set).
        """
        np = _kernels._np
        n = len(rows)
        self.stats.idist_calls += n
        if n == 0:
            return np.empty(0, dtype=np.float64)
        source = arrays.partition_id
        if source == target:
            return np.zeros(n, dtype=np.float64)
        exit_doors = arrays.exit_doors
        offsets = arrays.offsets
        if len(exit_doors) == 1:
            self.stats.single_door_shortcuts += n
            base = self.imind_partitions(source, target)
            self.stats.kernel_batches += 1
            col = (
                offsets[:, 0]
                if n == offsets.shape[0]
                else offsets[rows, 0]
            )
            return base + col
        target_doors = self._doors(target)
        pairs = len(exit_doors) * len(target_doors)
        self.stats.d2d_lookups += pairs
        self.stats.kernel_batches += 1
        if not pairs:
            return np.full(n, INFINITY, dtype=np.float64)
        # Per-exit-door mins over the target's doors, memoised on the
        # pack: ``min_t fl(offset + d2d_et) == fl(offset + min_t
        # d2d_et)`` because IEEE addition is monotone, so this is
        # bit-identical to reducing the full (exit x target) block.
        mins = self._require_pack().exit_door_mins(source, target)
        if n != offsets.shape[0]:
            offsets = offsets[rows]
        return (offsets + mins).min(axis=1)

    def idist_values(self, arrays, target: PartitionId):
        """``iDist`` over a group's active rows, as plain lists.

        Returns ``(rows, values)`` where ``rows`` is
        ``arrays.active_list()``.  Counter advances and values are
        identical to :meth:`idist_rows` over ``arrays.active_rows()``;
        this lane exists because the solver's per-dequeue groups hold
        only a handful of clients, where Python float adds beat numpy
        dispatch.  Large groups delegate to the array lane.
        """
        rows = arrays.active_list()
        n = len(rows)
        if n >= 32:
            dists = self.idist_rows(arrays, arrays.active_rows(), target)
            return rows, dists.tolist()
        self.stats.idist_calls += n
        if n == 0:
            return rows, []
        source = arrays.partition_id
        if source == target:
            return rows, [0.0] * n
        exit_doors = arrays.exit_doors
        offsets = arrays.offset_lists()
        if len(exit_doors) == 1:
            self.stats.single_door_shortcuts += n
            base = self.imind_partitions(source, target)
            self.stats.kernel_batches += 1
            return rows, [base + offsets[row][0] for row in rows]
        target_doors = self._doors(target)
        pairs = len(exit_doors) * len(target_doors)
        self.stats.d2d_lookups += pairs
        self.stats.kernel_batches += 1
        if not pairs:
            return rows, [INFINITY] * n
        mins = self._require_pack().exit_door_mins_list(source, target)
        values = []
        for row in rows:
            best = INFINITY
            for offset, base in zip(offsets[row], mins):
                cand = offset + base
                if cand < best:
                    best = cand
            values.append(best)
        return rows, values

    def single_exit(self, partition_id: PartitionId) -> bool:
        """True when the partition has exactly one exit door."""
        return len(self._doors(partition_id)) == 1

    def idist_single_door(
        self,
        partition_id: PartitionId,
        clients: Sequence[Client],
        pruned: Set[int],
        target: PartitionId,
    ):
        """``iDist`` to ``target`` for a single-exit-door group.

        The no-arrays lane of the kernel path: a group behind one exit
        door needs no offset matrix — one ``iMinD`` plus a per-client
        intra-partition offset — so the solver skips
        :class:`~repro.index.kernels.GroupArrays` for such groups
        entirely (on venues like MC, over 95% of partitions are
        single-door rooms).  Returns ``(active_clients, values)`` in
        client-list order (``active_clients`` may alias ``clients``
        when nothing is pruned — treat it as read-only).  Counters
        advance exactly as :meth:`idist_values`' single-door lane, and
        the values are the same sums the scalar ``idist`` shortcut
        produces.
        """
        kept = (
            clients
            if not pruned
            else [c for c in clients if c.client_id not in pruned]
        )
        n = len(kept)
        self.stats.idist_calls += n
        if n == 0:
            return kept, []
        if partition_id == target:
            return kept, [0.0] * n
        self.stats.single_door_shortcuts += n
        base = self.imind_partitions(partition_id, target)
        self.stats.kernel_batches += 1
        lane = self._single_door.get(partition_id)
        if lane is None:
            lane = (
                self.venue.partition(partition_id).intra_distance,
                self._door_locations[self._doors(partition_id)[0]],
            )
            self._single_door[partition_id] = lane
        intra, door_location = lane
        return kept, [
            base + intra(client.location, door_location)
            for client in kept
        ]

    def idist_many(
        self, clients: Sequence[Client], target: PartitionId
    ):
        """Vector of ``iDist(c, target)`` for co-located clients."""
        np = _kernels._np
        self._require_pack()
        if not clients:
            self.stats.kernel_batches += 1
            return np.empty(0, dtype=np.float64)
        partition_id = clients[0].partition_id
        for client in clients:
            if client.partition_id != partition_id:
                raise QueryError(
                    "idist_many requires clients of one partition; got "
                    f"{partition_id} and {client.partition_id}"
                )
        arrays = self.group_arrays(clients, partition_id)
        return self.idist_rows(arrays, np.arange(len(clients)), target)

    def door_to_door_many(
        self, doors_a: Sequence[int], doors_b: Sequence[int]
    ):
        """Dense ``(len(a), len(b))`` block of door-pair distances.

        Counts every pair as a lookup (bulk increment) and one kernel
        batch; the per-pair memo is bypassed — callers hold the block.
        """
        pack = self._require_pack()
        self.stats.d2d_lookups += len(doors_a) * len(doors_b)
        self.stats.kernel_batches += 1
        return pack.d2d_block(doors_a, doors_b)

    def imind_node_many(
        self, partition_id: PartitionId, nodes: Sequence[VIPNode]
    ):
        """Vector of :meth:`imind_node` bounds for many nodes.

        Each node goes through the normal covers/memo/store sequence,
        so counters are identical to per-node calls; only the inner
        door loop is the dense-array reduction.
        """
        np = _kernels._np
        self._require_pack()
        out = np.empty(len(nodes), dtype=np.float64)
        for index, node in enumerate(nodes):
            out[index] = self.imind_node(partition_id, node)
        return out

    def point_min_dist_to_node(self, client: Client, node: VIPNode) -> float:
        """Lower bound from an exact client location to a node.

        Unlike :meth:`imind_node` this includes the client's offset to
        its partition's exit doors, so the bound is tight enough for
        top-down NN search (baseline algorithm).
        """
        source = client.partition_id
        if self.tree.covers(node, source):
            return 0.0
        partition = self.venue.partition(source)
        best = INFINITY
        rows = self.tree.rows
        offsets = [
            (
                partition.intra_distance(
                    client.location, self._door_locations[door_id]
                ),
                door_id,
            )
            for door_id in self._doors(source)
        ]
        for access in node.access_doors:
            row = rows[access]
            for offset, door_id in offsets:
                if offset >= best:
                    continue
                d = row.get(door_id)
                if d is not None and offset + d < best:
                    best = offset + d
        return best

    def point_to_point(
        self,
        a_client: Client,
        b_client: Client,
    ) -> float:
        """Shortest indoor distance between two located clients.

        Not used on the IFLS hot path (facilities are partitions) but
        part of the public VIP-tree API the paper builds on.
        """
        if a_client.partition_id == b_client.partition_id:
            partition = self.venue.partition(a_client.partition_id)
            return partition.intra_distance(
                a_client.location, b_client.location
            )
        partition_b = self.venue.partition(b_client.partition_id)
        best = INFINITY
        for door_id in self._doors(b_client.partition_id):
            tail = partition_b.intra_distance(
                b_client.location, self._door_locations[door_id]
            )
            if tail >= best:
                continue
            head = self._point_to_door(a_client, door_id)
            if head + tail < best:
                best = head + tail
        return best

    def _point_to_door(self, client: Client, door_id: int) -> float:
        partition = self.venue.partition(client.partition_id)
        best = INFINITY
        door = self.venue.door(door_id)
        if client.partition_id in door.partitions():
            best = partition.intra_distance(client.location, door.location)
        for exit_id in self._doors(client.partition_id):
            offset = partition.intra_distance(
                client.location, self._door_locations[exit_id]
            )
            if offset >= best:
                continue
            via = offset + self.door_to_door(exit_id, door_id)
            if via < best:
                best = via
        return best
