"""VIP-tree node structure.

A node covers a contiguous group of indoor partitions.  Leaf nodes cover
the partitions directly; internal nodes cover the union of their
children.  Every node knows its *access doors*: the doors connecting a
partition inside the node to a partition outside it (or to the
exterior).  Any indoor path entering or leaving the node must pass
through one of its access doors — the key property behind the VIP-tree
distance matrices (Shao et al., PVLDB'16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..indoor.entities import DoorId, PartitionId

NodeId = int


@dataclass
class VIPNode:
    """One node of a VIP-tree.

    ``leaf_lo``/``leaf_hi`` give the node's span in the DFS leaf
    ordering, so subtree containment tests are two integer comparisons.
    """

    node_id: NodeId
    parent_id: Optional[NodeId] = None
    child_node_ids: Tuple[NodeId, ...] = ()
    partitions: Tuple[PartitionId, ...] = ()
    doors: Tuple[DoorId, ...] = ()
    access_doors: Tuple[DoorId, ...] = ()
    depth: int = 0
    leaf_lo: int = 0
    leaf_hi: int = 0
    _access_door_set: frozenset = field(default_factory=frozenset, repr=False)

    @property
    def is_leaf(self) -> bool:
        """True when the node covers partitions directly."""
        return not self.child_node_ids

    @property
    def is_root(self) -> bool:
        """True for the tree's single root."""
        return self.parent_id is None

    @property
    def access_door_set(self) -> frozenset:
        """Access doors as a frozenset (O(1) membership)."""
        return self._access_door_set

    def finalize(self) -> None:
        """Freeze derived lookup sets after construction mutates fields."""
        self._access_door_set = frozenset(self.access_doors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = "leaf" if self.is_leaf else f"{len(self.child_node_ids)} kids"
        return (
            f"VIPNode(id={self.node_id}, {shape}, "
            f"partitions={len(self.partitions)}, "
            f"access_doors={len(self.access_doors)}, depth={self.depth})"
        )
