"""VIP-tree index: construction, distance matrices, facility search."""

from .construction import DEFAULT_FANOUT, DEFAULT_LEAF_CAPACITY
from .distance import DistanceStats, VIPDistanceEngine
from .doortable import DoorTableIndex
from .iptree import IPTreeDistanceIndex
from .node import NodeId, VIPNode
from .path import PathService, Route, RouteLeg
from .rtree import PartitionLocator, RTree
from .search import FacilitySearch
from .viptree import VIPTree

__all__ = [
    "DEFAULT_FANOUT",
    "DEFAULT_LEAF_CAPACITY",
    "DistanceStats",
    "DoorTableIndex",
    "IPTreeDistanceIndex",
    "FacilitySearch",
    "NodeId",
    "PartitionLocator",
    "PathService",
    "RTree",
    "Route",
    "RouteLeg",
    "VIPDistanceEngine",
    "VIPNode",
    "VIPTree",
]
