"""Door-to-door distance table (Yang et al., EDBT'10).

The oldest indoor distance index the paper cites (§2.3): run graph
traversal on the doors graph and *store all pairwise door distances in
a hash table*.  Queries are O(1); the price is O(doors^2) memory and an
all-pairs construction.  The VIP-tree exists precisely to avoid this
blow-up — `benchmarks/bench_backends.py` reproduces the trade-off.

The class implements the same ``door_to_door`` / ``matrix_entry_count``
surface as :class:`~repro.index.viptree.VIPTree`, so the two can be
compared directly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..indoor.doorgraph import DoorGraph
from ..indoor.entities import DoorId
from ..indoor.venue import IndoorVenue

INFINITY = float("inf")


class DoorTableIndex:
    """All-pairs door distances in a flat hash table."""

    def __init__(
        self, venue: IndoorVenue, graph: Optional[DoorGraph] = None
    ) -> None:
        self.venue = venue
        self.graph = graph if graph is not None else DoorGraph(venue)
        self._table: Dict[Tuple[DoorId, DoorId], float] = {}
        self._build()

    def _build(self) -> None:
        doors = sorted(self.venue.door_ids())
        for source in doors:
            for target, dist in self.graph.dijkstra(source).items():
                if source <= target:
                    self._table[(source, target)] = dist

    # ------------------------------------------------------------------
    def door_to_door(self, a: DoorId, b: DoorId) -> float:
        """O(1) lookup of the shortest indoor distance between doors."""
        if a == b:
            return 0.0
        key = (a, b) if a <= b else (b, a)
        return self._table.get(key, INFINITY)

    def matrix_entry_count(self) -> int:
        """Stored entries (for the memory comparison)."""
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DoorTableIndex(doors={self.venue.door_count}, "
            f"entries={len(self._table)})"
        )
