"""IP-tree distance index — the VIP-tree without the "vivid" matrices.

Shao et al. propose two indexes (paper §2.3): the **IP-tree**, whose
leaf nodes store distances from their doors to their *own* access doors
and whose non-leaf nodes store pairwise distances between their
children's access doors; and the **VIP-tree**, which additionally
stores leaf-door → *ancestor* access-door distances ("vivid" matrices)
to answer queries with O(1) lookups.

This module implements the IP-tree's query procedure: a door-to-door
distance is assembled by dynamic programming up the tree to the lowest
common ancestor —

    D0[a]   = leaf matrix [door, a]              for a in AD(leaf)
    Di+1[b] = min over a in AD(child): Di[a] + M_parent[a, b]

— which trades fewer stored matrix entries for more work per query.
``benchmarks/bench_backends.py`` reproduces that trade-off, justifying
the paper's use of the VIP variant.

The index is extracted from a built :class:`VIPTree` (same hierarchy,
same exact distances); only the hierarchical matrices are retained, so
its memory profile is authentic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import IndexError_
from ..indoor.entities import DoorId
from .node import NodeId
from .viptree import VIPTree

INFINITY = float("inf")


class IPTreeDistanceIndex:
    """Hierarchical (non-vivid) door-to-door distance index."""

    def __init__(self, tree: VIPTree) -> None:
        self.venue = tree.venue
        # Structure (shared, immutable): parents, depths, access doors.
        self._parent: Dict[NodeId, NodeId] = {}
        self._depth: Dict[NodeId, int] = {}
        self._access: Dict[NodeId, Tuple[DoorId, ...]] = {}
        for node in tree.nodes:
            if node.parent_id is not None:
                self._parent[node.node_id] = node.parent_id
            self._depth[node.node_id] = node.depth
            self._access[node.node_id] = node.access_doors
        self._leaf_of = {
            pid: tree.leaf_of(pid).node_id
            for pid in tree.venue.partition_ids()
        }
        self._door_leaf: Dict[DoorId, NodeId] = {}
        for leaf in tree.leaves():
            for door in leaf.doors:
                self._door_leaf.setdefault(door, leaf.node_id)

        # Matrices. Leaf: door -> own access doors, plus the local
        # (within-leaf) all-pairs matrix for same-leaf queries.
        self._leaf_matrix: Dict[
            NodeId, Dict[Tuple[DoorId, DoorId], float]
        ] = {}
        self._local = {
            node_id: dict(matrix) for node_id, matrix in tree.local.items()
        }
        for leaf in tree.leaves():
            matrix: Dict[Tuple[DoorId, DoorId], float] = {}
            for door in leaf.doors:
                for access in leaf.access_doors:
                    matrix[(door, access)] = tree.rows[access].get(
                        door, INFINITY
                    )
            self._leaf_matrix[leaf.node_id] = matrix

        # Non-leaf: pairwise distances between children's access doors.
        self._node_matrix: Dict[
            NodeId, Dict[Tuple[DoorId, DoorId], float]
        ] = {}
        for node in tree.nodes:
            if node.is_leaf:
                continue
            doors: List[DoorId] = sorted(
                {
                    access
                    for child_id in node.child_node_ids
                    for access in tree.node(child_id).access_doors
                }
            )
            matrix = {}
            for i, a in enumerate(doors):
                row = tree.rows[a]
                for b in doors[i:]:
                    matrix[(a, b)] = row.get(b, INFINITY)
            self._node_matrix[node.node_id] = matrix

    # ------------------------------------------------------------------
    def matrix_entry_count(self) -> int:
        """Stored entries — compare with ``VIPTree.matrix_entry_count``."""
        entries = sum(len(m) for m in self._leaf_matrix.values())
        entries += sum(len(m) for m in self._node_matrix.values())
        entries += sum(len(m) for m in self._local.values())
        return entries

    def _node_entry(
        self, node_id: NodeId, a: DoorId, b: DoorId
    ) -> float:
        if a == b:
            return 0.0
        matrix = self._node_matrix[node_id]
        value = matrix.get((a, b) if a <= b else (b, a))
        return INFINITY if value is None else value

    def _ancestors(self, leaf: NodeId, depth_limit: int) -> List[NodeId]:
        """Chain from ``leaf`` up to (excluding) depth ``depth_limit``."""
        chain = [leaf]
        while self._depth[chain[-1]] > depth_limit:
            chain.append(self._parent[chain[-1]])
        return chain

    def _climb(
        self, door: DoorId, chain: List[NodeId]
    ) -> Dict[DoorId, float]:
        """DP: distances from ``door`` to the access doors of the top
        node of ``chain`` (chain runs leaf -> ... -> top)."""
        leaf = chain[0]
        frontier: Dict[DoorId, float] = {}
        matrix = self._leaf_matrix[leaf]
        for access in self._access[leaf]:
            d = matrix.get((door, access), INFINITY)
            if d < INFINITY:
                frontier[access] = d
        for lower, upper in zip(chain, chain[1:]):
            next_frontier: Dict[DoorId, float] = {}
            for target in self._access[upper]:
                best = INFINITY
                for access, base in frontier.items():
                    step = self._node_entry(upper, access, target)
                    if base + step < best:
                        best = base + step
                if best < INFINITY:
                    next_frontier[target] = best
            frontier = next_frontier
        return frontier

    # ------------------------------------------------------------------
    def door_to_door(self, a: DoorId, b: DoorId) -> float:
        """Exact shortest indoor distance via hierarchical assembly."""
        if a == b:
            return 0.0
        leaf_a = self._door_leaf.get(a)
        leaf_b = self._door_leaf.get(b)
        if leaf_a is None or leaf_b is None:
            raise IndexError_(f"door {a if leaf_a is None else b} "
                              f"is not indexed")
        if leaf_a == leaf_b:
            best = self._local[leaf_a].get(
                (a, b), INFINITY
            )
            matrix = self._leaf_matrix[leaf_a]
            for access in self._access[leaf_a]:
                da = matrix.get((a, access), INFINITY)
                db = matrix.get((b, access), INFINITY)
                if da + db < best:
                    best = da + db
            return best

        # Lowest common ancestor by walking the deeper side up.
        node_a, node_b = leaf_a, leaf_b
        while node_a != node_b:
            if self._depth[node_a] >= self._depth[node_b]:
                node_a = self._parent[node_a]
            else:
                node_b = self._parent[node_b]
        lca = node_a

        chain_a = self._ancestors(leaf_a, self._depth[lca] + 1)
        chain_b = self._ancestors(leaf_b, self._depth[lca] + 1)
        up_a = self._climb(a, chain_a)
        up_b = self._climb(b, chain_b)
        best = INFINITY
        for access_a, da in up_a.items():
            for access_b, db in up_b.items():
                step = self._node_entry(lca, access_a, access_b)
                total = da + step + db
                if total < best:
                    best = total
        return best
