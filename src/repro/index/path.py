"""Indoor shortest-path reconstruction.

The IFLS algorithms only need distances, but a deployed facility-
location service also wants to *show* the route (the paper's VIP-tree
stores first-hop doors for exactly this purpose).  This module
reconstructs door sequences and full point-to-point routes on top of
the door graph, with per-source memoised predecessor trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import UnreachableFacilityError
from ..indoor.doorgraph import DoorGraph
from ..indoor.entities import Client, DoorId, PartitionId
from ..indoor.geometry import Point
from ..indoor.venue import IndoorVenue

INFINITY = float("inf")


@dataclass(frozen=True)
class RouteLeg:
    """One step of an indoor route: walk inside ``partition`` from
    ``start`` to ``end`` (``end`` is a door location except for the
    final leg)."""

    partition: PartitionId
    start: Point
    end: Point
    distance: float


@dataclass(frozen=True)
class Route:
    """A full indoor route with its total length and door sequence."""

    legs: Tuple[RouteLeg, ...]
    doors: Tuple[DoorId, ...]
    distance: float

    @property
    def partitions(self) -> Tuple[PartitionId, ...]:
        """Partition sequence the route walks through."""
        return tuple(leg.partition for leg in self.legs)


class PathService:
    """Shortest indoor routes between located points and partitions."""

    def __init__(self, venue: IndoorVenue, graph: Optional[DoorGraph] = None):
        self.venue = venue
        self.graph = graph if graph is not None else DoorGraph(venue)
        self._trees: Dict[
            DoorId, Tuple[Dict[DoorId, float], Dict[DoorId, DoorId]]
        ] = {}

    def _tree(self, source: DoorId):
        tree = self._trees.get(source)
        if tree is None:
            tree = self.graph.dijkstra_with_paths(source)
            self._trees[source] = tree
        return tree

    # ------------------------------------------------------------------
    def door_sequence(
        self, source: DoorId, target: DoorId
    ) -> Tuple[float, List[DoorId]]:
        """Shortest door sequence between two doors."""
        if source == target:
            return 0.0, [source]
        dist, parent = self._tree(source)
        if target not in dist:
            return INFINITY, []
        path = [target]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return dist[target], path

    # ------------------------------------------------------------------
    def route_to_partition(
        self, client: Client, target: PartitionId
    ) -> Route:
        """The walking route from a client to a target partition.

        The route ends at the target's entry door (consistent with the
        library's ``iDist`` convention: reaching the partition means
        reaching one of its doors).  Raises
        :class:`UnreachableFacilityError` when no path exists.
        """
        if client.partition_id == target:
            return Route(legs=(), doors=(), distance=0.0)
        partition = self.venue.partition(client.partition_id)
        best: Optional[Tuple[float, DoorId, DoorId]] = None
        for exit_id in self.venue.doors_of(client.partition_id):
            exit_door = self.venue.door(exit_id)
            offset = partition.intra_distance(
                client.location, exit_door.location
            )
            for target_door in self.venue.doors_of(target):
                dist, _path = self.door_sequence(exit_id, target_door)
                total = offset + dist
                if best is None or total < best[0]:
                    best = (total, exit_id, target_door)
        if best is None or best[0] == INFINITY:
            raise UnreachableFacilityError(
                f"client {client.client_id} cannot reach partition "
                f"{target}"
            )
        total, exit_id, target_door = best
        _dist, door_path = self.door_sequence(exit_id, target_door)
        return self._assemble(client, door_path, total)

    def _assemble(
        self, client: Client, door_path: List[DoorId], total: float
    ) -> Route:
        """Turn a door sequence into per-partition legs.

        Each edge of the door path is walked through a partition both
        doors belong to; when two doors share more than one partition
        the cheaper crossing is chosen (matching the door graph's edge
        weight).
        """
        first = self.venue.door(door_path[0])
        start_partition = self.venue.partition(client.partition_id)
        legs: List[RouteLeg] = [
            RouteLeg(
                partition=client.partition_id,
                start=client.location,
                end=first.location,
                distance=start_partition.intra_distance(
                    client.location, first.location
                ),
            )
        ]
        for a_id, b_id in zip(door_path, door_path[1:]):
            a = self.venue.door(a_id)
            b = self.venue.door(b_id)
            shared = set(a.partitions()) & set(b.partitions())
            if not shared:
                raise UnreachableFacilityError(
                    f"door path broken between {a_id} and {b_id}"
                )
            crossings = [
                (
                    self.venue.partition(pid).intra_distance(
                        a.location, b.location
                    ),
                    pid,
                )
                for pid in shared
            ]
            distance, pid = min(crossings)
            legs.append(
                RouteLeg(
                    partition=pid,
                    start=a.location,
                    end=b.location,
                    distance=distance,
                )
            )
        return Route(
            legs=tuple(legs),
            doors=tuple(door_path),
            distance=total,
        )

    # ------------------------------------------------------------------
    def describe(self, route: Route) -> str:
        """Human-readable route description for examples/CLI output."""
        if not route.legs:
            return "already there (distance 0)"
        lines = [f"total distance: {route.distance:.2f} m"]
        for leg in route.legs:
            name = self.venue.partition(leg.partition).name
            lines.append(
                f"  through {name or leg.partition}: "
                f"{leg.distance:.2f} m"
            )
        return "\n".join(lines)
