"""Bottom-up VIP-tree construction.

Following the paper (Section 3) and Shao et al.: adjacent indoor
partitions are combined into leaf nodes, then adjacent nodes are
repeatedly combined into parents until a single root remains.  Grouping
is a greedy BFS over the adjacency graph so every node covers a
door-connected region, which keeps access-door counts small.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..errors import IndexError_
from ..indoor.entities import PartitionId
from ..indoor.venue import IndoorVenue
from .node import NodeId, VIPNode

DEFAULT_LEAF_CAPACITY = 8
DEFAULT_FANOUT = 4


def _group_connected(
    items: Sequence[int],
    adjacency: Dict[int, Set[int]],
    capacity: int,
) -> List[List[int]]:
    """Greedily partition ``items`` into connected groups of <= capacity.

    Deterministic: items are visited in the given order; the BFS
    frontier absorbs low-degree members first (rooms before corridors),
    so a leaf becomes "a corridor segment plus its rooms" rather than a
    chain of corridors with all their rooms stranded — which is what
    keeps the access-door counts (and hence the index matrices) small.
    """
    degree = {item: len(adjacency.get(item, ())) for item in items}
    unassigned = set(items)
    groups: List[List[int]] = []
    for seed in items:
        if seed not in unassigned:
            continue
        group = [seed]
        unassigned.discard(seed)
        frontier = sorted(
            adjacency.get(seed, ()) & unassigned,
            key=lambda p: (degree[p], p),
        )
        while frontier and len(group) < capacity:
            nxt = frontier.pop(0)
            if nxt not in unassigned:
                continue
            group.append(nxt)
            unassigned.discard(nxt)
            extra = adjacency.get(nxt, ()) & unassigned
            if extra:
                frontier = sorted(
                    set(frontier) | extra,
                    key=lambda p: (degree[p], p),
                )
        groups.append(group)
    return groups


def _absorb_singletons(
    groups: List[List[int]],
    adjacency: Dict[int, Set[int]],
) -> List[List[int]]:
    """Merge singleton leaf groups into an adjacent group.

    Star topologies (one corridor with many rooms) strand rooms whose
    corridor's leaf filled up; a single-partition leaf contributes its
    whole door set as access doors, so absorbing it — even past the
    nominal capacity — yields a strictly smaller index.
    """
    group_of: Dict[int, int] = {}
    for index, group in enumerate(groups):
        for member in group:
            group_of[member] = index
    for index, group in enumerate(groups):
        if len(group) != 1:
            continue
        member = group[0]
        neighbours = adjacency.get(member, ())
        candidates = {
            group_of[n] for n in neighbours if group_of[n] != index
        }
        if not candidates:
            continue
        target = min(candidates, key=lambda g: (len(groups[g]), g))
        groups[target].append(member)
        group_of[member] = target
        group.clear()
    return [group for group in groups if group]


def build_nodes(
    venue: IndoorVenue,
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    fanout: int = DEFAULT_FANOUT,
) -> Tuple[List[VIPNode], Dict[PartitionId, NodeId]]:
    """Build the node hierarchy (without distance matrices).

    Returns the node list (indexed by node id) and the partition → leaf
    map.  Matrices are filled by :class:`repro.index.viptree.VIPTree`.
    """
    if leaf_capacity < 1 or fanout < 2:
        raise IndexError_(
            f"invalid tree parameters: leaf_capacity={leaf_capacity}, "
            f"fanout={fanout}"
        )
    partition_ids = sorted(venue.partition_ids())
    if not partition_ids:
        raise IndexError_("cannot index an empty venue")

    partition_adjacency: Dict[int, Set[int]] = {
        pid: set(venue.neighbours(pid)) for pid in partition_ids
    }
    leaf_groups = _group_connected(
        partition_ids, partition_adjacency, leaf_capacity
    )
    leaf_groups = _absorb_singletons(leaf_groups, partition_adjacency)

    nodes: List[VIPNode] = []
    leaf_of: Dict[PartitionId, NodeId] = {}
    for group in leaf_groups:
        node_id = len(nodes)
        nodes.append(
            VIPNode(node_id=node_id, partitions=tuple(sorted(group)))
        )
        for pid in group:
            leaf_of[pid] = node_id

    # Merge upwards until a single root remains.
    current: List[NodeId] = [n.node_id for n in nodes]
    while len(current) > 1:
        adjacency = _node_adjacency(venue, nodes, current, leaf_of)
        groups = _group_connected(current, adjacency, fanout)
        if len(groups) == len(current):
            # No merges happened (e.g. pathological adjacency): collapse
            # everything into one parent to guarantee termination.
            groups = [list(current)]
        next_level: List[NodeId] = []
        for group in groups:
            if len(group) == 1 and len(groups) > 1:
                # Re-attach singletons to keep the tree balanced-ish: a
                # singleton group simply survives to the next round.
                next_level.append(group[0])
                continue
            node_id = len(nodes)
            covered: List[PartitionId] = []
            for child in group:
                covered.extend(nodes[child].partitions)
                nodes[child].parent_id = node_id
            nodes.append(
                VIPNode(
                    node_id=node_id,
                    child_node_ids=tuple(group),
                    partitions=tuple(sorted(covered)),
                )
            )
            next_level.append(node_id)
        if len(next_level) >= len(current):
            # Defensive: grouping must shrink the level.
            raise IndexError_("VIP-tree construction failed to converge")
        current = next_level

    _assign_doors_and_access(venue, nodes)
    _assign_depth_and_spans(nodes, current[0])
    for node in nodes:
        node.finalize()
    return nodes, leaf_of


def _node_adjacency(
    venue: IndoorVenue,
    nodes: List[VIPNode],
    level: List[NodeId],
    leaf_of: Dict[PartitionId, NodeId],
) -> Dict[int, Set[int]]:
    """Adjacency between same-level nodes: a door crosses between them."""
    # Map each partition to its current-level node by walking up.
    top: Dict[PartitionId, NodeId] = {}
    level_set = set(level)
    for pid, leaf in leaf_of.items():
        node = leaf
        while node not in level_set:
            parent = nodes[node].parent_id
            if parent is None:
                break
            node = parent
        top[pid] = node
    adjacency: Dict[int, Set[int]] = {nid: set() for nid in level}
    for door in venue.doors():
        sides = door.partitions()
        if len(sides) != 2:
            continue
        a, b = top[sides[0]], top[sides[1]]
        if a != b and a in adjacency and b in adjacency:
            adjacency[a].add(b)
            adjacency[b].add(a)
    return adjacency


def _assign_doors_and_access(
    venue: IndoorVenue, nodes: List[VIPNode]
) -> None:
    for node in nodes:
        covered = set(node.partitions)
        door_ids: Set[int] = set()
        for pid in node.partitions:
            door_ids.update(venue.doors_of(pid))
        access: List[int] = []
        for door_id in sorted(door_ids):
            door = venue.door(door_id)
            sides = door.partitions()
            crosses = door.is_exterior or any(
                pid not in covered for pid in sides
            )
            if crosses:
                access.append(door_id)
        node.doors = tuple(sorted(door_ids))
        node.access_doors = tuple(access)


def _assign_depth_and_spans(nodes: List[VIPNode], root_id: NodeId) -> None:
    """DFS from the root: set depth and the [leaf_lo, leaf_hi) spans."""
    counter = 0
    stack: List[Tuple[NodeId, int, bool]] = [(root_id, 0, False)]
    while stack:
        node_id, depth, done = stack.pop()
        node = nodes[node_id]
        if done:
            node.leaf_hi = counter
            continue
        node.depth = depth
        if node.is_leaf:
            node.leaf_lo = counter
            counter += 1
            node.leaf_hi = counter
            continue
        node.leaf_lo = counter
        stack.append((node_id, depth, True))
        for child in reversed(node.child_node_ids):
            stack.append((child, depth + 1, False))
