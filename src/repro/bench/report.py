"""Programmatic EXPERIMENTS.md: recorded JSON in, Markdown out.

EXPERIMENTS.md is a build artifact, not a hand-maintained document.
Following the SimCash paper-generator pattern (DataProvider → section
generators → composed document), this module turns the recorded bench
artifacts into the full report:

* :class:`DataProvider` — the single source of truth.  It loads the
  experiment JSON recorded by :func:`repro.bench.reporting.write_json`
  (committed under ``benchmarks/recorded/``) and the perf-gate
  baselines (``BENCH_<suite>.json``, the very files ``ifls perfgate``
  enforces), and nothing else: no live measurements, no environment
  lookups, so composing is deterministic byte for byte;
* **section generators** (``section_*``) — each renders one Markdown
  section from provider data.  Section generators contain **no numeric
  literals** (``tools/check_counters.py`` lints this): every number in
  a generated table traces to a recorded JSON key or a harness
  constant, never to a hand-typed value;
* :func:`compose` — concatenates the registered :data:`SECTIONS` under
  the ``report.generate`` span, counting each rendered section on the
  ``report.sections`` metric;
* :func:`generate` / :func:`check` — regenerate the document, or diff
  a committed copy against a fresh composition (the CI drift gate
  behind ``ifls report --check``).

Because the provider reads the same ``BENCH_<suite>.json`` files the
perf gate compares against, the report and the gate can never disagree
about a number.
"""

from __future__ import annotations

import difflib
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..datasets.venues import VENUE_NAMES
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .experiments import Row
from .regress import (
    Baseline,
    MATRIX_ALGORITHMS,
    MATRIX_BACKENDS,
    MATRIX_VENUES,
    load_baseline,
)
from .reporting import (
    fmt_count,
    fmt_mb,
    fmt_param,
    fmt_ratio,
    fmt_seconds,
    group_rows,
    markdown_table,
    read_json,
)
from .tables import table2_markdown

__all__ = [
    "DEFAULT_BASELINE_DIR",
    "DEFAULT_RESULTS_DIR",
    "DEFAULT_REPORT_PATH",
    "SECTIONS",
    "DataProvider",
    "compose",
    "generate",
    "check",
]

#: Committed recorded-experiment JSON (``write_json`` documents).
DEFAULT_RESULTS_DIR = Path("benchmarks/recorded")

#: Directory holding the committed ``BENCH_<suite>.json`` baselines.
DEFAULT_BASELINE_DIR = Path(".")

#: The document this module owns.
DEFAULT_REPORT_PATH = Path("EXPERIMENTS.md")

#: Parameter-name constants shared with the harness rows.
PARAM_C = "|C|"

#: The reference ablation variant (everything enabled).
FULL_VARIANT = "full"

#: The backend the d2d ratio column is normalised against.
REFERENCE_BACKEND = "doortable"


class DataProvider:
    """Loads recorded bench data once; answers every section's reads.

    ``results_dir`` holds one ``<experiment>.json`` per recorded
    experiment (schema of :func:`repro.bench.reporting.write_json`);
    ``baseline_dir`` holds the committed ``BENCH_<suite>.json`` files.
    Missing files are not errors — sections render an explicit
    "not recorded" placeholder so partial fixtures (tests, cookbook
    examples) compose cleanly.
    """

    def __init__(
        self,
        results_dir: Path = DEFAULT_RESULTS_DIR,
        baseline_dir: Path = DEFAULT_BASELINE_DIR,
    ) -> None:
        self.results_dir = Path(results_dir)
        self.baseline_dir = Path(baseline_dir)
        self._rows: Dict[str, List[Row]] = {}
        self._documents: Dict[str, dict] = {}
        self._baselines: Dict[str, Optional[Baseline]] = {}

    # -- experiment JSON -------------------------------------------------
    def experiments(self) -> List[str]:
        """Sorted stems of every recorded experiment document."""
        if not self.results_dir.is_dir():
            return []
        return sorted(p.stem for p in self.results_dir.glob("*.json"))

    def document(self, experiment: str) -> dict:
        """The raw recorded JSON document (``{}`` when absent)."""
        if experiment not in self._documents:
            path = self.results_dir / f"{experiment}.json"
            if path.is_file():
                import json

                with open(path) as handle:
                    self._documents[experiment] = json.load(handle)
            else:
                self._documents[experiment] = {}
        return self._documents[experiment]

    def rows(self, experiment: str) -> List[Row]:
        """Recorded rows of one experiment (empty when not recorded)."""
        if experiment not in self._rows:
            path = self.results_dir / f"{experiment}.json"
            self._rows[experiment] = (
                read_json(path) if path.is_file() else []
            )
        return self._rows[experiment]

    def scale(self, experiment: str) -> str:
        """The ``REPRO_SCALE`` the experiment was recorded at."""
        return str(self.document(experiment).get("scale", ""))

    # -- perf-gate baselines ---------------------------------------------
    def suites(self) -> List[str]:
        """Sorted suite names with a committed baseline file."""
        if not self.baseline_dir.is_dir():
            return []
        prefix, suffix = "BENCH_", ".json"
        return sorted(
            p.name[len(prefix):-len(suffix)]
            for p in self.baseline_dir.glob(f"{prefix}*{suffix}")
        )

    def baseline(self, suite: str) -> Optional[Baseline]:
        """The committed baseline for ``suite`` (``None`` when absent)."""
        if suite not in self._baselines:
            path = self.baseline_dir / f"BENCH_{suite}.json"
            self._baselines[suite] = (
                load_baseline(path) if path.is_file() else None
            )
        return self._baselines[suite]

    def metrics(self, suite: str) -> Dict[str, Tuple[float, str]]:
        """A suite's recorded ``name -> (value, kind)`` metrics."""
        baseline = self.baseline(suite)
        return dict(baseline.metrics) if baseline is not None else {}


# ---------------------------------------------------------------------------
# Non-section helpers (section generators themselves stay literal-free)
# ---------------------------------------------------------------------------
def _missing(what: str) -> str:
    """Placeholder paragraph for data that is not recorded yet."""
    return (
        f"_Not recorded: {what}.  Record it and rerun "
        f"`ifls report` (see docs/USAGE.md)._"
    )


def _short_sha(sha: Optional[str]) -> str:
    """Abbreviated git revision for provenance tables."""
    return sha[:10] if sha else "—"


def _metric(
    metrics: Dict[str, Tuple[float, str]], name: str
) -> Optional[float]:
    """One recorded metric value, or ``None`` when absent."""
    sample = metrics.get(name)
    return None if sample is None else sample[0]


def _venue_order(rows: Sequence[Row]) -> List[str]:
    """Venues present in ``rows``, in the canonical paper order."""
    present = {row.venue for row in rows}
    ordered = [name for name in VENUE_NAMES if name in present]
    ordered.extend(sorted(present - set(VENUE_NAMES)))
    return ordered


def _parameters(rows: Sequence[Row]) -> List[str]:
    """Swept parameters in first-appearance order."""
    seen: List[str] = []
    for row in rows:
        if row.parameter not in seen:
            seen.append(row.parameter)
    return seen


def _speedup_matrix(rows: Sequence[Row]):
    """``(venue, setting) -> {value -> ratio}`` plus the value axis."""
    cells: "OrderedDict[Tuple[str, str], Dict[float, Optional[float]]]"
    cells = OrderedDict()
    values: List[float] = []
    for key, by_algorithm in group_rows(rows).items():
        _, venue, setting, _, value = key
        if value not in values:
            values.append(value)
        base = by_algorithm.get("baseline")
        fast = by_algorithm.get("efficient")
        ratio = None
        if (
            base is not None
            and fast is not None
            and fast.time_seconds > 0
        ):
            ratio = base.time_seconds / fast.time_seconds
        cells.setdefault((venue, setting), {})[value] = ratio
    return sorted(values), cells


def _render_speedup_table(
    rows: Sequence[Row],
    label: str,
    labeller: Callable[[str, str], str],
) -> str:
    """Speedup (baseline over efficient) per swept value."""
    values, cells = _speedup_matrix(rows)
    parameter = rows[0].parameter
    header = [label] + [fmt_param(parameter, v) for v in values]
    out = []
    for (venue, setting), by_value in cells.items():
        ratios = [by_value.get(v) for v in values]
        out.append(
            [labeller(venue, setting)]
            + [
                "—" if ratio is None else f"{ratio:.2f}×"
                for ratio in ratios
            ]
        )
    return markdown_table(header, out)


def _metric_matrix(rows: Sequence[Row], metric: str):
    """``(venue, algorithm) -> {value -> figure}`` plus the value axis."""
    cells: "OrderedDict[Tuple[str, str], Dict[float, float]]"
    cells = OrderedDict()
    values: List[float] = []
    for row in rows:
        if row.value not in values:
            values.append(row.value)
        figure = (
            row.time_seconds if metric == "time" else row.memory_mb
        )
        cells.setdefault((row.venue, row.algorithm), {})[row.value] = (
            figure
        )
    return sorted(values), cells


def _render_metric_table(rows: Sequence[Row], metric: str) -> str:
    """Seconds/MB per swept value, one row per venue × algorithm."""
    values, cells = _metric_matrix(rows, metric)
    parameter = rows[0].parameter
    formatter = fmt_seconds if metric == "time" else fmt_mb
    header = ["venue / algorithm"] + [
        fmt_param(parameter, v) for v in values
    ]
    out = []
    for venue in _venue_order(rows):
        for (cell_venue, algorithm), by_value in cells.items():
            if cell_venue != venue:
                continue
            out.append(
                [f"{venue} {algorithm}"]
                + [
                    "—"
                    if by_value.get(v) is None
                    else formatter(by_value[v])
                    for v in values
                ]
            )
    return markdown_table(header, out)


# ---------------------------------------------------------------------------
# Section generators (no numeric literals — linted)
# ---------------------------------------------------------------------------
def section_provenance(provider: DataProvider) -> str:
    """Where every number of this report comes from."""
    lines = [
        "## Provenance",
        "",
        "Every number below is generated from these recorded",
        "artifacts; none is typed by hand.  Re-record, then rerun",
        "`ifls report` to refresh the document.",
        "",
    ]
    experiments = provider.experiments()
    if experiments:
        lines.append(
            markdown_table(
                ("recorded experiment", "scale", "rows"),
                [
                    (
                        f"`benchmarks/recorded/{name}.json`",
                        provider.scale(name) or "—",
                        fmt_count(len(provider.rows(name))),
                    )
                    for name in experiments
                ],
            )
        )
    else:
        lines.append(_missing("experiment JSON"))
    suites = provider.suites()
    if suites:
        rows = []
        for suite in suites:
            baseline = provider.baseline(suite)
            if baseline is None:
                continue
            rows.append(
                (
                    f"`BENCH_{suite}.json`",
                    fmt_count(baseline.runs),
                    fmt_count(len(baseline.metrics)),
                    _short_sha(baseline.git_sha),
                    "on"
                    if baseline.fingerprint.get("kernels")
                    else "off",
                )
            )
        lines.append("")
        lines.append(
            markdown_table(
                (
                    "perf-gate baseline",
                    "median of runs",
                    "metrics",
                    "recorded at git",
                    "kernels",
                ),
                rows,
            )
        )
    return "\n".join(lines)


def section_parameters(provider: DataProvider) -> str:
    """Table 2, regenerated from the constants the harness sweeps."""
    del provider  # parameter ranges come from the harness constants
    return "\n".join(
        [
            "## Table 2 — parameter settings",
            "",
            "Generated from the very constants the sweeps run",
            "(`repro.bench.experiments`), so this table cannot drift",
            "from the harness.",
            "",
            table2_markdown(),
        ]
    )


def section_headline(provider: DataProvider) -> str:
    """Efficient-over-baseline headline factors from the |C| sweeps."""
    rows = [
        row
        for row in provider.rows("fig78")
        if row.parameter == PARAM_C
    ]
    lines = [
        "## Headline — efficient vs baseline",
        "",
        "Speedups of the efficient approach over the baseline on the",
        "synthetic |C| sweeps (the paper's headline experiment; its",
        "compiled-code factors reach 2.84×–71.29× synthetic and",
        "97.74× real — our pure-Python pair shares one distance",
        "engine, which flattens constant factors, so shapes are the",
        "comparison, not magnitudes).",
        "",
    ]
    if not rows:
        lines.append(_missing("the `fig78` sweep"))
        return "\n".join(lines)
    _, cells = _speedup_matrix(rows)
    table_rows = []
    for venue in _venue_order(rows):
        series: "OrderedDict[float, float]" = OrderedDict()
        for (cell_venue, _), by_value in cells.items():
            if cell_venue != venue:
                continue
            for value in sorted(by_value):
                ratio = by_value[value]
                if ratio is not None:
                    series[value] = ratio
        if not series:
            continue
        ratios = list(series.values())
        largest = max(series)
        table_rows.append(
            (
                venue,
                f"{sum(ratios) / len(ratios):.2f}×",
                f"{max(ratios):.2f}×",
                f"{series[largest]:.2f}× @ "
                f"{PARAM_C}={fmt_param(PARAM_C, largest)}",
            )
        )
    lines.append(
        markdown_table(
            ("venue", "mean speedup", "max speedup", "at largest |C|"),
            table_rows,
        )
    )
    return "\n".join(lines)


def section_fig5(provider: DataProvider) -> str:
    """Figure 5: the real-setting |C| sweep, per MC category."""
    rows = provider.rows("fig5")
    lines = [
        "## Figure 5 — |C| sweep, real setting (MC categories)",
        "",
        "Speedup (baseline time over efficient time) per client",
        "count, one row per Melbourne Central facility category.",
        "Values below one mean the baseline wins — the paper's",
        "small-|Fe| mechanism (fewer clients pruned, more candidates",
        "per client) moves its CPH reversal into the smallest",
        "real-setting categories here.",
        "",
    ]
    if not rows:
        lines.append(_missing("the `fig5` experiment"))
        return "\n".join(lines)
    lines.append(
        _render_speedup_table(
            rows,
            "category",
            lambda venue, setting: setting,
        )
    )
    return "\n".join(lines)


def section_fig6(provider: DataProvider) -> str:
    """Figure 6: the σ sweep over normal-distributed clients."""
    rows = provider.rows("fig6")
    lines = [
        "## Figure 6 — sigma sweep (normal clients)",
        "",
        "Speedup per standard deviation.  Both works see the largest",
        "factors at small σ, where clustered clients share partitions",
        "and Lemma 5.1 prunes hardest.",
        "",
    ]
    if not rows:
        lines.append(_missing("the `fig6` experiment"))
        return "\n".join(lines)
    lines.append(
        _render_speedup_table(
            rows,
            "venue / setting",
            lambda venue, setting: f"{venue} {setting}",
        )
    )
    return "\n".join(lines)


def section_fig7(provider: DataProvider) -> str:
    """Figures 7a–7c: synthetic parameter sweeps, time view."""
    all_rows = provider.rows("fig78")
    lines = [
        "## Figure 7 — synthetic sweeps (time)",
        "",
        "Mean query seconds per swept parameter, then the speedup",
        "series.  The paper's shape: baseline time grows sharply in",
        "|C| while the efficient curve stays venue-bounded; the",
        "efficient approach gets faster as |Fe| grows (denser",
        "existing facilities prune more clients) and slower as |Fn|",
        "grows (more candidates retrieved before the answer is",
        "certain).",
        "",
    ]
    if not all_rows:
        lines.append(_missing("the `fig78` experiment"))
        return "\n".join(lines)
    for parameter in _parameters(all_rows):
        rows = [r for r in all_rows if r.parameter == parameter]
        lines.extend(
            [
                f"### varying {parameter}",
                "",
                _render_metric_table(rows, "time"),
                "",
                _render_speedup_table(
                    rows, "venue", lambda venue, setting: venue
                ),
                "",
            ]
        )
    return "\n".join(lines).rstrip("\n")


def section_fig8(provider: DataProvider) -> str:
    """Figures 8a–8c: the same runs, peak-memory view."""
    all_rows = provider.rows("fig78")
    lines = [
        "## Figure 8 — synthetic sweeps (memory)",
        "",
        "Peak traced MB of the same runs (Figures 7 and 8 report one",
        "set of measurements under two metrics).  The baseline holds",
        "one client's state at a time and uses several times less",
        "memory; the efficient approach's state is the retrieved-",
        "facility records, so its peak rises with |C| and |Fn| and",
        "falls as |Fe| prunes clients away.",
        "",
    ]
    if not all_rows:
        lines.append(_missing("the `fig78` experiment"))
        return "\n".join(lines)
    for parameter in _parameters(all_rows):
        rows = [r for r in all_rows if r.parameter == parameter]
        lines.extend(
            [
                f"### varying {parameter}",
                "",
                _render_metric_table(rows, "memory"),
                "",
            ]
        )
    return "\n".join(lines).rstrip("\n")


def section_ablation(provider: DataProvider) -> str:
    """DESIGN.md A1–A3: the efficient approach minus one idea each."""
    rows = provider.rows("ablation")
    lines = [
        "## Ablations — the efficient approach's design choices",
        "",
        "Each variant disables one optimisation (client pruning,",
        "partition grouping, bottom-up traversal); all variants",
        "return identical answers (property-tested), so the slowdown",
        "factor attributes the speedup to each design choice.",
        "",
    ]
    if not rows:
        lines.append(_missing("the `ablation` experiment"))
        return "\n".join(lines)
    full = next(
        (row for row in rows if row.algorithm == FULL_VARIANT), None
    )
    table_rows = []
    for row in rows:
        factor = (
            "—"
            if full is None
            else fmt_ratio(row.time_seconds, full.time_seconds)
        )
        table_rows.append(
            (
                row.algorithm,
                fmt_seconds(row.time_seconds),
                fmt_mb(row.memory_mb),
                factor,
            )
        )
    lines.append(
        markdown_table(
            ("variant", "time", "peak memory", "× of full"),
            table_rows,
        )
    )
    return "\n".join(lines)


def section_extensions(provider: DataProvider) -> str:
    """Section 7: MinDist / MaxSum vs the brute-force oracle."""
    rows = provider.rows("extensions")
    lines = [
        "## Extensions — MinDist and MaxSum (Section 7)",
        "",
        "The efficient objective variants against the brute-force",
        "oracle on the same workload.",
        "",
    ]
    if not rows:
        lines.append(_missing("the `extensions` experiment"))
        return "\n".join(lines)
    table_rows = []
    agreements = []
    for key, by_algorithm in group_rows(rows).items():
        _, _, objective, _, _ = key
        objectives = {
            row.objective
            for row in by_algorithm.values()
            if row.objective is not None
        }
        if len(by_algorithm) > 1:
            agreements.append(len(objectives) == 1)
        for algorithm, row in by_algorithm.items():
            value = (
                "—"
                if row.objective is None
                else f"{row.objective:.4f}"
            )
            table_rows.append(
                (
                    objective,
                    algorithm,
                    fmt_seconds(row.time_seconds),
                    value,
                )
            )
    lines.append(
        markdown_table(
            ("objective", "algorithm", "time", "objective value"),
            table_rows,
        )
    )
    if agreements:
        verdict = "yes" if all(agreements) else "**NO — investigate**"
        lines.extend(
            [
                "",
                f"Efficient and brute-force objectives identical on "
                f"every recorded workload: {verdict}.",
            ]
        )
    return "\n".join(lines)


def section_parallel(provider: DataProvider) -> str:
    """The sharded batch executor's wall-clock scaling."""
    rows = provider.rows("parallel")
    lines = [
        "## Parallel scaling — sharded batch executor",
        "",
        "One warm batch answered through `run_batch_parallel` at each",
        "pool size (identical answers asserted).  Speedup is bounded",
        "by the recording machine's cores; a single-core runner shows",
        "the sharding overhead instead.",
        "",
    ]
    if not rows:
        lines.append(_missing("the `parallel` experiment"))
        return "\n".join(lines)
    serial = next((row for row in rows if row.value == 1), None)
    table_rows = []
    for row in sorted(rows, key=lambda r: r.value):
        speedup = (
            "—"
            if serial is None
            else fmt_ratio(serial.time_seconds, row.time_seconds)
        )
        table_rows.append(
            (
                fmt_count(row.value),
                fmt_seconds(row.time_seconds),
                speedup,
            )
        )
    lines.append(
        markdown_table(
            ("workers", "batch time", "speedup vs 1 worker"),
            table_rows,
        )
    )
    return "\n".join(lines)


def section_matrix(provider: DataProvider) -> str:
    """The cross-index grid: backend × algorithm × venue."""
    metrics = provider.metrics("matrix")
    lines = [
        "## Cross-index matrix — backend × algorithm × venue",
        "",
        "From `BENCH_matrix.json`, the perf-gate baseline the CI",
        "`matrix` suite is gated on — report and gate read one file.",
        "Exact counters reproduce on any machine; seconds describe",
        "the recording host.",
        "",
        "### IFLS algorithms (viptree backend)",
        "",
    ]
    if not metrics:
        lines.append(_missing("the `matrix` perf-gate baseline"))
        return "\n".join(lines)
    ifls_rows = []
    for venue in MATRIX_VENUES:
        for algorithm in MATRIX_ALGORITHMS:
            prefix = f"matrix.{venue}.viptree.{algorithm}"
            computations = _metric(
                metrics, f"{prefix}.distance_computations"
            )
            answer = _metric(metrics, f"{prefix}.answer")
            seconds = _metric(metrics, f"{prefix}.seconds")
            if computations is None:
                continue
            ifls_rows.append(
                (
                    venue,
                    algorithm,
                    fmt_count(computations),
                    "—"
                    if answer is None or answer < 0
                    else fmt_count(answer),
                    "—" if seconds is None else fmt_seconds(seconds),
                )
            )
    lines.extend(
        [
            markdown_table(
                (
                    "venue",
                    "algorithm",
                    "distance computations",
                    "answer",
                    "time",
                ),
                ifls_rows,
            ),
            "",
            "### Door-to-door resolution (all backends)",
            "",
            "The same seeded door pairs through every backend; the",
            "checksum is exact because all backends index one door",
            "graph — any divergence is a correctness bug, not noise.",
            "",
        ]
    )
    d2d_rows = []
    for venue in MATRIX_VENUES:
        reference = _metric(
            metrics,
            f"matrix.{venue}.{REFERENCE_BACKEND}.d2d.seconds",
        )
        for backend in MATRIX_BACKENDS:
            prefix = f"matrix.{venue}.{backend}.d2d"
            checksum = _metric(metrics, f"{prefix}.checksum")
            seconds = _metric(metrics, f"{prefix}.seconds")
            if checksum is None:
                continue
            slowdown = (
                "—"
                if seconds is None or reference is None
                else fmt_ratio(seconds, reference)
            )
            d2d_rows.append(
                (
                    venue,
                    backend,
                    f"{checksum:.6f}",
                    "—" if seconds is None else fmt_seconds(seconds),
                    slowdown,
                )
            )
    lines.append(
        markdown_table(
            (
                "venue",
                "backend",
                "distance checksum",
                "time",
                f"× {REFERENCE_BACKEND}",
            ),
            d2d_rows,
        )
    )
    return "\n".join(lines)


def section_kernels(provider: DataProvider) -> str:
    """Array-kernel fast path vs the scalar oracle."""
    metrics = provider.metrics("matrix")
    lines = [
        "## Kernel vs scalar — the array fast path",
        "",
        "The efficient MinMax query on the dense-array kernel path",
        "against the scalar oracle, over one shared tree.  The",
        "distance-computation ledger is path-independent (asserted at",
        "recording time and CI-gated), so the speedup is measured",
        "over provably identical work.",
        "",
    ]
    if not metrics:
        lines.append(_missing("the `matrix` perf-gate baseline"))
        return "\n".join(lines)
    table_rows = []
    for venue in MATRIX_VENUES:
        off = _metric(metrics, f"kernels.{venue}.off.seconds")
        on = _metric(metrics, f"kernels.{venue}.on.seconds")
        computations = _metric(
            metrics, f"kernels.{venue}.distance_computations"
        )
        if off is None and on is None:
            continue
        table_rows.append(
            (
                venue,
                "—" if off is None else fmt_seconds(off),
                "—" if on is None else fmt_seconds(on),
                "—"
                if off is None or on is None
                else fmt_ratio(off, on),
                "—"
                if computations is None
                else fmt_count(computations),
            )
        )
    if not table_rows:
        lines.append(_missing("kernel-ablation entries"))
        return "\n".join(lines)
    lines.append(
        markdown_table(
            (
                "venue",
                "scalar",
                "kernels",
                "kernel speedup",
                "distance computations (both paths)",
            ),
            table_rows,
        )
    )
    return "\n".join(lines)


#: Registered sections, in document order.  ``tools/check_counters.py``
#: lints every ``section_*`` function for numeric literals.
SECTIONS: "OrderedDict[str, Callable[[DataProvider], str]]" = (
    OrderedDict(
        (
            ("provenance", section_provenance),
            ("parameters", section_parameters),
            ("headline", section_headline),
            ("fig5", section_fig5),
            ("fig6", section_fig6),
            ("fig7", section_fig7),
            ("fig8", section_fig8),
            ("ablation", section_ablation),
            ("extensions", section_extensions),
            ("parallel", section_parallel),
            ("matrix", section_matrix),
            ("kernels", section_kernels),
        )
    )
)

HEADER = """\
# EXPERIMENTS — generated report

<!-- GENERATED FILE — do not edit by hand.
     Regenerate: PYTHONPATH=src python -m repro report
     Drift gate: PYTHONPATH=src python -m repro report --check -->

This document is composed by `repro.bench.report` from the recorded
artifacts under `benchmarks/recorded/` and the committed
`BENCH_<suite>.json` perf-gate baselines — the same files `ifls
perfgate` enforces — so the report and the perf gate cannot disagree.
No number below is typed by hand (`tools/check_counters.py` lints the
section generators for numeric literals).  Absolute magnitudes
describe the recording machine and pure-CPython implementations; the
comparison to the paper is about shape — who wins, and how the curves
move with each parameter (methodology substitutions: DESIGN.md).

```bash
ifls report --check
```"""


def compose(provider: Optional[DataProvider] = None) -> str:
    """Render the full report; deterministic for fixed inputs.

    Runs under the ``report.generate`` span; every rendered section
    increments the ``report.sections`` contract counter.
    """
    provider = provider if provider is not None else DataProvider()
    with _trace.span("report.generate"):
        parts = [HEADER.rstrip("\n")]
        for _name, section in SECTIONS.items():
            parts.append(section(provider).rstrip("\n"))
            _metrics.add("report.sections")
        return "\n\n".join(parts) + "\n"


def generate(
    provider: Optional[DataProvider] = None,
    path: Path = DEFAULT_REPORT_PATH,
) -> str:
    """Compose and write the report; returns the written text."""
    text = compose(provider)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return text


def check(
    provider: Optional[DataProvider] = None,
    path: Path = DEFAULT_REPORT_PATH,
) -> Tuple[bool, str]:
    """Diff the committed report against a fresh composition.

    Returns ``(ok, diff)``; ``diff`` is a unified diff (committed →
    regenerated) when the document drifted, empty when byte-identical.
    """
    expected = compose(provider)
    path = Path(path)
    actual = path.read_text() if path.is_file() else ""
    if actual == expected:
        return True, ""
    diff = "".join(
        difflib.unified_diff(
            actual.splitlines(keepends=True),
            expected.splitlines(keepends=True),
            fromfile=f"{path} (committed)",
            tofile=f"{path} (regenerated)",
        )
    )
    return False, diff
