"""Perf-regression sentinel: versioned bench baselines, tolerance gates.

The benchmark harness answers "how fast is it today"; this module
answers "did it get worse".  A *baseline* is a committed JSON file
(``BENCH_<suite>.json``) holding the median-of-N values of a metric
suite, stamped with the recording machine's fingerprint and git
revision.  A *gate* re-runs the suite and compares metric by metric:

* **exact** metrics (distance computations, queue pops, pruning
  counts, answer checksums) get **zero** tolerance — the algorithms
  are deterministic, so any change is a behavioural regression (or an
  intentional change that must re-record the baseline);
* **wall** metrics (elapsed seconds) get a configurable relative band,
  and are only *enforced* when the current machine fingerprint matches
  the baseline's — wall time measured on different hardware is noise,
  so a mismatch downgrades wall comparisons to ``skipped`` unless
  ``strict_wall`` forces them.

The gate report names every drifted metric with its baseline/current
values, so a CI failure is actionable without re-running anything.
Entry points: :func:`record_baseline`, :func:`gate`, the ``ifls
perfgate`` CLI, and ``tools/perf_gate.py``.  Suite executions run
under the ``perfgate.suite`` span; every comparison increments the
``perfgate.comparisons`` / ``perfgate.drifted_metrics`` contract
metrics.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = [
    "BASELINE_SCHEMA",
    "EXACT",
    "WALL",
    "DEFAULT_WALL_TOLERANCE",
    "MATRIX_ALGORITHMS",
    "MATRIX_BACKENDS",
    "MATRIX_VENUES",
    "SUITES",
    "Baseline",
    "GateEntry",
    "GateReport",
    "machine_fingerprint",
    "git_sha",
    "run_suite",
    "record_baseline",
    "load_baseline",
    "compare_to_baseline",
    "gate",
    "default_baseline_path",
]

BASELINE_SCHEMA = 1

EXACT = "exact"
WALL = "wall"

#: Relative band for wall-clock metrics: current may move +/- 50%.
DEFAULT_WALL_TOLERANCE = 0.5

#: One measured metric: ``(value, kind)`` with kind exact|wall.
MetricSample = Tuple[float, str]


def machine_fingerprint() -> Dict[str, object]:
    """Identify the measuring machine (decides wall enforcement).

    Includes the numpy version (or ``None`` when absent) and whether
    the array kernels resolve enabled, because the kernel fast path
    makes wall times — and the exact memo-traffic ledger — depend on
    whether and how queries were vectorised.
    """
    from ..index import kernels as _kernels

    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy present in dev env
        numpy_version = None
    else:
        numpy_version = numpy.__version__
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
        "numpy": numpy_version,
        "kernels": _kernels.default_enabled(),
    }


def git_sha() -> Optional[str]:
    """The recorded tree's revision, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


# ---------------------------------------------------------------------------
# Suites
# ---------------------------------------------------------------------------
def _answer_checksum(results) -> int:
    """Order-sensitive integer digest of a batch's answers."""
    digest = 0
    for position, result in enumerate(results, start=1):
        answer = -1 if result.answer is None else int(result.answer)
        digest += position * (answer + 7)
    return digest


def _suite_small() -> Dict[str, MetricSample]:
    """The committed ``small`` suite: session + parallel + fig5-small.

    Everything is seeded, so the exact counters are reproducible on
    any machine; the wall metrics describe this host only.
    """
    import random

    from ..core.parallel import run_batch_parallel
    from ..core.queries import IFLSEngine
    from ..core.session import BatchQuery
    from ..core.stats import merge_query_stats
    from ..datasets import (
        random_facility_sets,
        small_office,
        uniform_clients,
        venue_by_name,
    )

    metrics: Dict[str, MetricSample] = {}

    # -- session: warm mixed-objective batch on the toy office venue.
    venue = small_office(levels=2, rooms=24)
    engine = IFLSEngine(venue)
    rng = random.Random(0xC0FFEE)
    objectives = ("minmax", "mindist", "maxsum")
    batch = []
    for number in range(6):
        facilities = random_facility_sets(venue, 4, 8, rng)
        clients = uniform_clients(venue, 40, rng)
        batch.append(
            BatchQuery(
                tuple(clients),
                facilities,
                objective=objectives[number % len(objectives)],
                label=f"q{number + 1}",
            )
        )
    session = engine.session()
    started = time.perf_counter()
    results = session.run(batch)
    session_seconds = time.perf_counter() - started
    report = session.report()
    merged = merge_query_stats(result.stats for result in results)
    metrics["session.distance_computations"] = (
        float(report.totals["distance_computations"]), EXACT,
    )
    metrics["session.d2d_lookups"] = (
        float(report.totals["d2d_lookups"]), EXACT,
    )
    metrics["session.cache_hits"] = (float(report.cache_hits), EXACT)
    metrics["session.queue_pops"] = (float(merged.queue_pops), EXACT)
    metrics["session.clients_pruned"] = (
        float(merged.clients_pruned), EXACT,
    )
    metrics["session.answer_checksum"] = (
        float(_answer_checksum(results)), EXACT,
    )
    metrics["session.seconds"] = (session_seconds, WALL)

    # -- parallel: same batch on a 2-worker pool.  Only QueryStats
    # counters are gated: they are cache-warmth independent, whereas
    # the distance-cache split varies with shard scheduling.
    outcome = run_batch_parallel(engine, batch, workers=2)
    stats = outcome.query_stats
    metrics["parallel.queue_pops"] = (float(stats.queue_pops), EXACT)
    metrics["parallel.facilities_retrieved"] = (
        float(stats.facilities_retrieved), EXACT,
    )
    metrics["parallel.clients_pruned"] = (
        float(stats.clients_pruned), EXACT,
    )
    metrics["parallel.answer_checksum"] = (
        float(_answer_checksum(outcome.results)), EXACT,
    )
    metrics["parallel.seconds"] = (outcome.elapsed_seconds, WALL)

    # -- fig5-small: efficient vs baseline, cold, on the CPH venue.
    venue = venue_by_name("CPH")
    engine = IFLSEngine(venue)
    rng = random.Random(0x5EED)
    facilities = random_facility_sets(venue, 10, 20, rng)
    clients = uniform_clients(venue, 200, rng)
    for algorithm in ("efficient", "baseline"):
        started = time.perf_counter()
        result = engine.query(
            clients, facilities, algorithm=algorithm, cold=True
        )
        seconds = time.perf_counter() - started
        distance = result.stats.distance
        metrics[f"fig5.{algorithm}.distance_computations"] = (
            float(distance.distance_computations), EXACT,
        )
        metrics[f"fig5.{algorithm}.answer"] = (
            float(-1 if result.answer is None else result.answer),
            EXACT,
        )
        metrics[f"fig5.{algorithm}.seconds"] = (seconds, WALL)
        if algorithm == "efficient":
            metrics["fig5.efficient.clients_pruned"] = (
                float(result.stats.clients_pruned), EXACT,
            )
    return metrics


#: Venue axis of the ``matrix`` suite: the smallest real venue plus
#: the mid-sized default one, so the cross-index grid stays cheap
#: enough to gate on every CI run.
MATRIX_VENUES = ("CPH", "MC")

#: Algorithm axis: the paper's two MinMax solvers plus the Section-7
#: objective extensions (answered by the efficient approach).
MATRIX_ALGORITHMS = ("efficient", "baseline", "mindist", "maxsum")

#: Backend axis for door-to-door resolution (viptree is the only one
#: answering full IFLS queries; the others are d2d-only).
MATRIX_BACKENDS = ("viptree", "iptree", "doortable")

#: Fixed matrix workload: |C| / |Fe| / |Fn| / random door pairs.
MATRIX_CLIENTS = 120
MATRIX_FE = 10
MATRIX_FN = 15
MATRIX_D2D_PAIRS = 200


def _suite_matrix() -> Dict[str, MetricSample]:
    """The cross-index ``matrix`` suite: backend x algorithm x venue.

    Three grids, all through the :func:`repro.api.open_venue` facade so
    the suite measures exactly what library users get:

    * **IFLS grid** (``matrix.<venue>.viptree.<algorithm>.*``) — every
      algorithm/objective of :data:`MATRIX_ALGORITHMS` answered cold on
      each venue; exact distance-computation counts and answers, wall
      seconds per cell;
    * **door-to-door grid** (``matrix.<venue>.<backend>.d2d.*``) — the
      same seeded door pairs resolved through each backend; the
      distance checksum is exact (all backends index one graph, so any
      divergence is a correctness bug), seconds describe this host;
    * **kernel ablation** (``kernels.<venue>.*``) — the efficient
      MinMax query on the array-kernel path vs the scalar oracle over
      one shared tree; ``distance_computations`` is recorded from the
      scalar run and asserted identical on the kernel run (the ledger
      is path-independent), so the report's kernel-vs-scalar table can
      show a speedup over provably identical work.

    Everything is seeded; exact metrics reproduce on any machine.  The
    kernel-path entries are only measured where numpy is importable —
    matching the committed baseline, which is recorded with kernels on.
    """
    import random

    from ..api import open_venue
    from ..core.queries import IFLSEngine
    from ..datasets import random_facility_sets, uniform_clients
    from ..datasets.venues import venue_by_name
    from ..index import kernels as _kernels

    metrics: Dict[str, MetricSample] = {}
    for venue_name in MATRIX_VENUES:
        engine = open_venue(venue_name)
        rng = random.Random(zlib_seed("matrix", venue_name))
        facilities = random_facility_sets(
            engine.venue, MATRIX_FE, MATRIX_FN, rng
        )
        clients = uniform_clients(engine.venue, MATRIX_CLIENTS, rng)

        # -- IFLS grid: every algorithm/objective on the viptree backend.
        for algorithm in MATRIX_ALGORITHMS:
            solver = "baseline" if algorithm == "baseline" else "efficient"
            objective = (
                algorithm
                if algorithm in ("mindist", "maxsum")
                else "minmax"
            )
            started = time.perf_counter()
            result = engine.core.query(
                clients,
                facilities,
                algorithm=solver,
                objective=objective,
                cold=True,
            )
            seconds = time.perf_counter() - started
            prefix = f"matrix.{venue_name}.viptree.{algorithm}"
            metrics[f"{prefix}.distance_computations"] = (
                float(result.stats.distance.distance_computations),
                EXACT,
            )
            metrics[f"{prefix}.answer"] = (
                float(-1 if result.answer is None else result.answer),
                EXACT,
            )
            metrics[f"{prefix}.seconds"] = (seconds, WALL)

        # -- d2d grid: the same seeded pairs through every backend.
        doors = sorted(engine.venue.door_ids())
        pair_rng = random.Random(zlib_seed("matrix-d2d", venue_name))
        pairs = [
            tuple(pair_rng.sample(doors, 2))
            for _ in range(MATRIX_D2D_PAIRS)
        ]
        for backend in MATRIX_BACKENDS:
            started = time.perf_counter()
            total = sum(
                engine.door_to_door(a, b, backend=backend)
                for a, b in pairs
            )
            seconds = time.perf_counter() - started
            prefix = f"matrix.{venue_name}.{backend}.d2d"
            metrics[f"{prefix}.checksum"] = (round(total, 6), EXACT)
            metrics[f"{prefix}.seconds"] = (seconds, WALL)

        # -- kernel ablation: array path vs scalar oracle, shared tree.
        scalar = IFLSEngine(
            engine.venue, tree=engine.tree, use_kernels=False
        )
        started = time.perf_counter()
        scalar_result = scalar.query(clients, facilities, cold=True)
        scalar_seconds = time.perf_counter() - started
        metrics[f"kernels.{venue_name}.distance_computations"] = (
            float(scalar_result.stats.distance.distance_computations),
            EXACT,
        )
        metrics[f"kernels.{venue_name}.off.seconds"] = (
            scalar_seconds, WALL,
        )
        if _kernels.available():
            fast = IFLSEngine(
                engine.venue, tree=engine.tree, use_kernels=True
            )
            started = time.perf_counter()
            fast_result = fast.query(clients, facilities, cold=True)
            fast_seconds = time.perf_counter() - started
            if (
                fast_result.stats.distance.distance_computations
                != scalar_result.stats.distance.distance_computations
            ):
                raise RuntimeError(
                    f"matrix suite: kernel-path distance ledger "
                    f"diverged from the scalar oracle on {venue_name}"
                )
            metrics[f"kernels.{venue_name}.on.seconds"] = (
                fast_seconds, WALL,
            )
    return metrics


#: Fixed ``stream`` suite workload (CPH venue): facility counts, the
#: arrivals seeding the crowd, and the mixed arrive/depart/move tail.
STREAM_VENUE = "CPH"
STREAM_FE = 20
STREAM_FN = 15
STREAM_INITIAL = 200
STREAM_EVENTS = 600


def _suite_stream() -> Dict[str, MetricSample]:
    """The continuous-query ``stream`` suite: one incremental replay.

    A seeded synthetic event stream (arrivals, departures, moves) is
    replayed through :class:`~repro.core.stream.ContinuousQuery` in
    incremental mode.  Every tier of the maintenance algorithm is
    pinned exactly — skip counts, partial solves, full recomputes, the
    per-group reevaluation ledger, and an order-sensitive checksum of
    the per-event answers — so any behavioural change to the skip
    rules or the Lemma 5.1 settled-group reduction trips the gate.
    The suite also enforces the headline property the docs promise:
    fewer groups reevaluated than events applied (ratio < 1), i.e. the
    incremental path does strictly less work than one group per event.
    """
    import random

    from ..core.queries import IFLSEngine
    from ..core.stream import ContinuousQuery, synthetic_events
    from ..datasets import random_facility_sets, venue_by_name

    venue = venue_by_name(STREAM_VENUE)
    engine = IFLSEngine(venue)
    rng = random.Random(zlib_seed("stream", STREAM_VENUE))
    facilities = random_facility_sets(
        venue, STREAM_FE, STREAM_FN, rng
    )
    events = synthetic_events(
        venue,
        initial=STREAM_INITIAL,
        events=STREAM_EVENTS,
        seed=zlib_seed("stream-events", STREAM_VENUE),
    )
    stream = ContinuousQuery(engine, facilities, incremental=True)
    started = time.perf_counter()
    answers = stream.apply_batch(events)
    seconds = time.perf_counter() - started
    stats = stream.stats
    if stats.reevaluation_ratio >= 1.0:
        raise RuntimeError(
            f"stream suite: reevaluation ratio "
            f"{stats.reevaluation_ratio:.3f} >= 1 — the incremental "
            "path no longer beats one group per event"
        )
    metrics: Dict[str, MetricSample] = {}
    metrics["stream.events"] = (float(stats.events), EXACT)
    metrics["stream.skips"] = (float(stats.skips), EXACT)
    metrics["stream.partial_solves"] = (
        float(stats.partial_solves), EXACT,
    )
    metrics["stream.full_recomputes"] = (
        float(stats.full_recomputes), EXACT,
    )
    metrics["stream.groups_reevaluated"] = (
        float(stats.groups_reevaluated), EXACT,
    )
    metrics["stream.groups_skipped"] = (
        float(stats.groups_skipped), EXACT,
    )
    metrics["stream.reevaluation_ratio"] = (
        round(stats.reevaluation_ratio, 6), EXACT,
    )
    metrics["stream.answer_checksum"] = (
        float(_answer_checksum(answers)), EXACT,
    )
    metrics["stream.seconds"] = (seconds, WALL)
    return metrics


def zlib_seed(*parts: object) -> int:
    """Deterministic cross-process seed (``hash()`` is salted)."""
    import zlib

    return zlib.crc32(repr(parts).encode("utf-8"))


#: Registered suites.  Tests may install fakes; the committed baseline
#: files cover the real ones.
SUITES: Dict[str, Callable[[], Dict[str, MetricSample]]] = {
    "small": _suite_small,
    "matrix": _suite_matrix,
    "stream": _suite_stream,
}


def run_suite(name: str) -> Dict[str, MetricSample]:
    """Execute suite ``name`` once under the ``perfgate.suite`` span."""
    builder = SUITES.get(name)
    if builder is None:
        known = ", ".join(sorted(SUITES))
        raise ValueError(f"unknown suite {name!r} (known: {known})")
    with _trace.span("perfgate.suite", suite=name):
        return builder()


def _median_of_runs(
    name: str, runs: int
) -> Dict[str, MetricSample]:
    """Per-metric medians over ``runs`` suite executions."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    samples: Dict[str, List[float]] = {}
    kinds: Dict[str, str] = {}
    for _ in range(runs):
        for metric, (value, kind) in run_suite(name).items():
            samples.setdefault(metric, []).append(value)
            kinds[metric] = kind
    return {
        metric: (statistics.median(values), kinds[metric])
        for metric, values in samples.items()
    }


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------
@dataclass
class Baseline:
    """A committed measurement: suite medians plus provenance."""

    suite: str
    runs: int
    created: str
    git_sha: Optional[str]
    fingerprint: Dict[str, object]
    metrics: Dict[str, MetricSample]

    def to_dict(self) -> Dict[str, object]:
        """JSON form (schema :data:`BASELINE_SCHEMA`)."""
        return {
            "schema": BASELINE_SCHEMA,
            "suite": self.suite,
            "runs": self.runs,
            "created": self.created,
            "git_sha": self.git_sha,
            "fingerprint": self.fingerprint,
            "metrics": {
                name: {"kind": kind, "value": value}
                for name, (value, kind) in self.metrics.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Baseline":
        """Inverse of :meth:`to_dict`."""
        schema = payload.get("schema")
        if schema != BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported baseline schema {schema!r} "
                f"(expected {BASELINE_SCHEMA})"
            )
        raw = payload.get("metrics", {})
        return cls(
            suite=str(payload["suite"]),
            runs=int(payload.get("runs", 1)),
            created=str(payload.get("created", "")),
            git_sha=payload.get("git_sha"),  # type: ignore[arg-type]
            fingerprint=dict(payload.get("fingerprint", {})),
            metrics={
                str(name): (
                    float(entry["value"]), str(entry["kind"])
                )
                for name, entry in raw.items()
            },
        )

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def record_baseline(
    suite: str, runs: int = 5, path: Optional[Path] = None
) -> Baseline:
    """Measure ``suite`` ``runs`` times and keep per-metric medians.

    ``path`` additionally writes the baseline file (the committed
    ``BENCH_<suite>.json``).
    """
    baseline = Baseline(
        suite=suite,
        runs=runs,
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        git_sha=git_sha(),
        fingerprint=machine_fingerprint(),
        metrics=_median_of_runs(suite, runs),
    )
    if path is not None:
        baseline.save(path)
    return baseline


def load_baseline(path: Path) -> Baseline:
    """Read a baseline written by :meth:`Baseline.save`."""
    with open(path) as handle:
        return Baseline.from_dict(json.load(handle))


def default_baseline_path(
    suite: str, root: Optional[Path] = None
) -> Path:
    """``<root>/BENCH_<suite>.json`` (root defaults to the cwd)."""
    base = Path(root) if root is not None else Path.cwd()
    return base / f"BENCH_{suite}.json"


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------
@dataclass
class GateEntry:
    """One metric's baseline-vs-current verdict."""

    name: str
    kind: str
    baseline_value: Optional[float]
    current_value: Optional[float]
    tolerance: float
    status: str  # ok | drift | missing | new | skipped
    note: str = ""

    @property
    def drifted(self) -> bool:
        """Whether this entry fails the gate."""
        return self.status in ("drift", "missing", "new")


@dataclass
class GateReport:
    """The full verdict of one baseline-vs-current comparison."""

    suite: str
    fingerprint_match: bool
    wall_tolerance: float
    entries: List[GateEntry] = field(default_factory=list)

    @property
    def drifted(self) -> List[GateEntry]:
        """Entries that fail the gate, in metric-name order."""
        return [entry for entry in self.entries if entry.drifted]

    @property
    def passed(self) -> bool:
        """``True`` when no metric drifted."""
        return not self.drifted

    def describe(self) -> str:
        """Human-readable comparison table plus a PASS/FAIL verdict."""
        lines = [
            f"perf gate: suite {self.suite!r}"
            + (
                ""
                if self.fingerprint_match
                else "  (machine fingerprint differs: wall metrics "
                "informational)"
            ),
            f"  {'metric':<36} {'kind':<6} {'baseline':>12} "
            f"{'current':>12} {'status':>8}",
        ]
        for entry in self.entries:
            baseline = (
                "-" if entry.baseline_value is None
                else f"{entry.baseline_value:.6g}"
            )
            current = (
                "-" if entry.current_value is None
                else f"{entry.current_value:.6g}"
            )
            line = (
                f"  {entry.name:<36} {entry.kind:<6} {baseline:>12} "
                f"{current:>12} {entry.status:>8}"
            )
            if entry.note:
                line += f"  ({entry.note})"
            lines.append(line)
        verdict = "PASS" if self.passed else "FAIL"
        drifted = ", ".join(e.name for e in self.drifted)
        lines.append(
            f"  -> {verdict}"
            + (f": drifted metrics: {drifted}" if drifted else "")
        )
        return "\n".join(lines)


def compare_to_baseline(
    baseline: Baseline,
    current: Dict[str, MetricSample],
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    strict_wall: bool = False,
) -> GateReport:
    """Judge ``current`` against ``baseline`` metric by metric.

    Exact metrics drift on *any* difference.  Wall metrics drift when
    they leave the ``wall_tolerance`` relative band, and are only
    enforced on the recording machine (fingerprint match) unless
    ``strict_wall``.  Metrics missing from either side fail: a vanished
    metric hides a regression, a new one needs a re-recorded baseline.
    """
    match = machine_fingerprint() == baseline.fingerprint
    report = GateReport(
        suite=baseline.suite,
        fingerprint_match=match,
        wall_tolerance=wall_tolerance,
    )
    for name in sorted(set(baseline.metrics) | set(current)):
        recorded = baseline.metrics.get(name)
        measured = current.get(name)
        if measured is None:
            value, kind = recorded  # type: ignore[misc]
            report.entries.append(
                GateEntry(
                    name=name,
                    kind=kind,
                    baseline_value=value,
                    current_value=None,
                    tolerance=0.0,
                    status="missing",
                    note="metric no longer measured",
                )
            )
            continue
        if recorded is None:
            value, kind = measured
            report.entries.append(
                GateEntry(
                    name=name,
                    kind=kind,
                    baseline_value=None,
                    current_value=value,
                    tolerance=0.0,
                    status="new",
                    note="not in baseline; re-record it",
                )
            )
            continue
        base_value, kind = recorded
        cur_value, _ = measured
        if kind == EXACT:
            status = "ok" if cur_value == base_value else "drift"
            report.entries.append(
                GateEntry(
                    name=name,
                    kind=kind,
                    baseline_value=base_value,
                    current_value=cur_value,
                    tolerance=0.0,
                    status=status,
                )
            )
            continue
        if not match and not strict_wall:
            report.entries.append(
                GateEntry(
                    name=name,
                    kind=kind,
                    baseline_value=base_value,
                    current_value=cur_value,
                    tolerance=wall_tolerance,
                    status="skipped",
                    note="fingerprint mismatch",
                )
            )
            continue
        band = wall_tolerance * abs(base_value)
        status = (
            "ok" if abs(cur_value - base_value) <= band else "drift"
        )
        report.entries.append(
            GateEntry(
                name=name,
                kind=kind,
                baseline_value=base_value,
                current_value=cur_value,
                tolerance=wall_tolerance,
                status=status,
            )
        )
    _metrics.add("perfgate.comparisons")
    if report.drifted:
        _metrics.add("perfgate.drifted_metrics", len(report.drifted))
    return report


def gate(
    suite: str,
    baseline_path: Path,
    runs: int = 3,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    strict_wall: bool = False,
) -> GateReport:
    """Load the baseline, re-measure, and compare — the CI entry point."""
    baseline = load_baseline(baseline_path)
    if baseline.suite != suite:
        raise ValueError(
            f"baseline at {baseline_path} records suite "
            f"{baseline.suite!r}, not {suite!r}"
        )
    current = _median_of_runs(suite, runs)
    return compare_to_baseline(
        baseline,
        current,
        wall_tolerance=wall_tolerance,
        strict_wall=strict_wall,
    )
