"""Reproduction sanity gate.

``ifls validate`` runs a quick end-to-end agreement check on every
paper venue: venue statistics against the published numbers, and all
three MinMax algorithms (plus the MinDist/MaxSum extensions against
brute force) on a small workload.  Intended as the first thing to run
after checking out the repository or touching an algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from ..core.queries import IFLSEngine
from ..datasets.venues import EXPECTED_STATS, VENUE_NAMES, venue_by_name
from ..datasets.workloads import workload
from .experiments import default_fe, default_fn


@dataclass
class ValidationReport:
    """Outcome of one validation run."""

    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no check failed."""
        return not self.failures

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        """Append one check outcome."""
        line = f"{'PASS' if passed else 'FAIL'}  {name}"
        if detail:
            line += f"  ({detail})"
        self.checks.append(line)
        if not passed:
            self.failures.append(line)

    def describe(self) -> str:
        """Human-readable check list plus verdict."""
        lines = list(self.checks)
        lines.append("")
        lines.append(
            "all checks passed"
            if self.ok
            else f"{len(self.failures)} check(s) FAILED"
        )
        return "\n".join(lines)


def validate_reproduction(
    client_count: int = 120, seed: int = 13
) -> ValidationReport:
    """Run the agreement checks; never raises, reports instead."""
    report = ValidationReport()
    for name in VENUE_NAMES:
        venue = venue_by_name(name)
        expected = EXPECTED_STATS[name]
        got = (venue.partition_count, venue.door_count)
        report.record(
            f"{name}: venue statistics {got}",
            got == expected,
            f"expected {expected}",
        )
        engine = IFLSEngine(venue)
        clients, facilities = workload(
            venue,
            client_count,
            default_fe(name),
            default_fn(name),
            seed=seed,
        )
        results = {
            algorithm: engine.query(
                clients, facilities, algorithm=algorithm, cold=True
            )
            for algorithm in ("bruteforce", "baseline", "efficient")
        }
        reference = results["bruteforce"]
        for algorithm in ("baseline", "efficient"):
            result = results[algorithm]
            agrees = (
                result.status == reference.status
                and math.isclose(
                    result.objective,
                    reference.objective,
                    rel_tol=1e-9,
                    abs_tol=1e-9,
                )
            )
            report.record(
                f"{name}: {algorithm} MinMax agrees with brute force",
                agrees,
                f"{result.objective:.4f} vs {reference.objective:.4f}",
            )
        for objective in ("mindist", "maxsum"):
            fast = engine.query(
                clients, facilities, objective=objective, cold=True
            )
            slow = engine.query(
                clients,
                facilities,
                objective=objective,
                algorithm="bruteforce",
                cold=True,
            )
            report.record(
                f"{name}: efficient {objective} agrees with brute force",
                fast.status == slow.status
                and math.isclose(
                    fast.objective, slow.objective,
                    rel_tol=1e-9, abs_tol=1e-9,
                ),
                f"{fast.objective:.4f} vs {slow.objective:.4f}",
            )
    return report
