"""Harness entry point: run paper experiments and print their series.

Usage (also exposed as ``ifls bench`` / ``python -m repro bench``)::

    python -m repro bench --experiment fig7 --scale small
    python -m repro bench --experiment all --out bench_results/

Each experiment prints the same series the paper's figure reports (one
line per parameter value, efficient vs baseline, with speedups) and can
persist CSV for plotting.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .experiments import (
    EngineCache,
    Row,
    Scale,
    ablations,
    current_scale,
    extensions,
    fig5,
    fig6,
    fig78,
    parallel_scaling,
    stream_replay,
)
from .counters import (
    format_counters,
    format_parallel_counters,
    format_session_counters,
    measure_counters,
    measure_parallel_counters,
    measure_session_counters,
)
from .plots import plot_rows
from .reporting import (
    format_series,
    summarize_speedups,
    write_csv,
    write_json,
)
from .tables import format_table1, format_table2

_FIGURES = {
    "fig5": (fig5, "Figure 5: effect of |C| (real setting, MC)"),
    "fig6": (fig6, "Figure 6: effect of sigma (real + synthetic)"),
    "fig7": (fig78, "Figure 7: |C|, |Fe|, |Fn| vs time (synthetic)"),
    "fig8": (fig78, "Figure 8: |C|, |Fe|, |Fn| vs memory (synthetic)"),
    "ablation": (ablations, "Ablations: efficient-approach variants"),
    "extensions": (extensions, "Extensions: MinDist / MaxSum (Section 7)"),
}

ALL_EXPERIMENTS = ("table1", "table2", "fig5", "fig6", "fig7", "fig8",
                   "ablation", "extensions", "counters", "session",
                   "parallel", "stream")


def run_experiment(
    name: str,
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    out_dir: Optional[Path] = None,
    echo=print,
) -> List[Row]:
    """Run one experiment, print its series, optionally persist CSV."""
    scale = scale or current_scale()
    cache = cache or EngineCache()
    if name == "table1":
        echo(format_table1())
        return []
    if name == "table2":
        echo(format_table2())
        return []
    if name == "counters":
        echo(format_counters(measure_counters(scale=scale, cache=cache)))
        return []
    if name == "session":
        echo(format_session_counters(
            measure_session_counters(scale=scale, cache=cache)
        ))
        return []
    if name == "parallel":
        rows = parallel_scaling(scale=scale, cache=cache)
        echo(format_series(
            rows, metric="time",
            title=(
                f"Parallel batch executor: wall-clock vs workers "
                f"[scale={scale.name}]"
            ),
        ))
        serial = next(
            (r for r in rows if r.value == 1 and r.time_seconds > 0),
            None,
        )
        if serial is not None:
            echo("")
            echo("Scaling vs 1 worker (same batch, identical answers):")
            for row in rows:
                speedup = serial.time_seconds / row.time_seconds
                echo(
                    f"  workers={int(row.value):<3} "
                    f"{row.time_seconds:8.3f}s   {speedup:5.2f}x"
                )
        echo("")
        echo(format_parallel_counters(
            measure_parallel_counters(scale=scale, cache=cache)
        ))
        _persist(rows, name, scale, out_dir, echo)
        return rows
    if name == "stream":
        rows = stream_replay(scale=scale, cache=cache)
        echo(format_series(
            rows, metric="time",
            title=(
                f"Continuous IFLS: incremental vs oracle replay "
                f"[scale={scale.name}]"
            ),
        ))
        echo("")
        echo("Speedup (incremental over per-event recompute, "
             "identical final answers):")
        by_count: Dict[float, Dict[str, float]] = {}
        for row in rows:
            by_count.setdefault(row.value, {})[row.algorithm] = (
                row.time_seconds
            )
        for value in sorted(by_count):
            pair = by_count[value]
            if "incremental" in pair and "oracle" in pair:
                speedup = (
                    pair["oracle"] / pair["incremental"]
                    if pair["incremental"] > 0
                    else float("inf")
                )
                echo(
                    f"  events={int(value):<5} "
                    f"oracle {pair['oracle']:8.3f}s   "
                    f"incremental {pair['incremental']:8.3f}s   "
                    f"{speedup:5.2f}x"
                )
        _persist(rows, name, scale, out_dir, echo)
        return rows
    try:
        fn, title = _FIGURES[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {ALL_EXPERIMENTS}"
        ) from None
    rows = fn(scale=scale, cache=cache)
    metric = "memory" if name == "fig8" else "time"
    echo(format_series(rows, metric=metric,
                       title=f"{title} [scale={scale.name}]"))
    if name.startswith("fig"):
        echo("")
        echo(plot_rows(rows, metric=metric))
    if name in ("fig5", "fig6"):
        echo("")
        echo(format_series(rows, metric="memory",
                           title=f"{title} — memory view"))
    speedups = summarize_speedups(rows)
    if speedups:
        echo("")
        echo("Speedup summary (efficient over baseline, time):")
        for label, (mean, peak) in sorted(speedups.items()):
            echo(f"  {label:<40} mean {mean:6.2f}x   max {peak:6.2f}x")
    _persist(rows, name, scale, out_dir, echo)
    return rows


def _persist(
    rows: List[Row],
    name: str,
    scale: Scale,
    out_dir: Optional[Path],
    echo,
) -> None:
    """Write CSV + JSON artifacts for one experiment's rows."""
    if out_dir is None or not rows:
        return
    csv_path = Path(out_dir) / f"{name}.csv"
    write_csv(rows, csv_path)
    json_path = Path(out_dir) / f"{name}.json"
    write_json(rows, json_path, experiment=name, scale=scale.name)
    echo(f"\nwrote {csv_path} and {json_path}")


def run_all(
    scale: Optional[Scale] = None,
    out_dir: Optional[Path] = None,
    experiments: Sequence[str] = ALL_EXPERIMENTS,
    echo=print,
) -> Dict[str, List[Row]]:
    """Run every experiment, reusing venue engines across them.

    Figures 7 and 8 are two views (time / memory) of the *same* runs,
    so when both are requested the measured rows are shared instead of
    re-running the sweeps.
    """
    scale = scale or current_scale()
    cache = EngineCache()
    results: Dict[str, List[Row]] = {}
    for name in experiments:
        echo(f"\n{'#' * 70}\n# {name}\n{'#' * 70}")
        if name == "fig8" and "fig7" in results:
            rows = results["fig7"]
            echo(format_series(
                rows, metric="memory",
                title=f"Figure 8 (memory view of the Figure-7 runs) "
                      f"[scale={scale.name}]",
            ))
            echo("")
            echo(plot_rows(rows, metric="memory"))
            _persist(rows, "fig8", scale, out_dir, echo)
            results[name] = rows
            continue
        results[name] = run_experiment(
            name, scale=scale, cache=cache, out_dir=out_dir, echo=echo
        )
    return results
