"""Formatting and persistence of benchmark results.

Renders the paper-style series (one line per parameter value, with the
two algorithms side by side and the efficient-over-baseline speedup)
and writes machine-readable CSV and JSON next to the text output.  The
JSON form carries run metadata (experiment, scale, schema version) so
CI can archive one self-describing artifact per experiment and a perf
trajectory accumulates across builds.

Observability snapshots reuse the same CSV conventions:
:func:`write_metrics_csv` / :func:`read_metrics_csv` (re-exported from
:mod:`repro.obs.exporters`) persist a metrics-registry snapshot — one
row per instrument — so a bench run can archive its ``query.*`` /
``cache.*`` / ``parallel.*`` metrics next to the experiment CSVs.
"""

from __future__ import annotations

import csv
import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.exporters import (  # noqa: F401  (re-exported)
    METRICS_CSV_COLUMNS,
    read_metrics_csv,
    write_metrics_csv,
)
from .experiments import Row


def group_rows(
    rows: Iterable[Row],
) -> "OrderedDict[tuple, Dict[str, Row]]":
    """Group rows by configuration key → {algorithm: row}."""
    grouped: "OrderedDict[tuple, Dict[str, Row]]" = OrderedDict()
    for row in rows:
        grouped.setdefault(row.key(), {})[row.algorithm] = row
    return grouped


def _fmt_value(parameter: str, value: float) -> str:
    if parameter == "|C|" and value >= 1000:
        return f"{value / 1000:g}k"
    return f"{value:g}"


def format_series(
    rows: Sequence[Row],
    metric: str = "time",
    title: str = "",
) -> str:
    """Render a paper-style text table for ``time`` or ``memory``."""
    if metric not in ("time", "memory"):
        raise ValueError(f"unknown metric {metric!r}")
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    grouped = group_rows(rows)
    current_header: Optional[Tuple[str, str, str]] = None
    for key, by_algorithm in grouped.items():
        experiment, venue, setting, parameter, value = key
        header = (venue, setting, parameter)
        if header != current_header:
            current_header = header
            lines.append("")
            lines.append(f"-- {venue} ({setting}), varying {parameter} --")
            algorithms = list(by_algorithm)
            unit = "s" if metric == "time" else "MB"
            cols = "  ".join(f"{a:>18}" for a in algorithms)
            lines.append(f"{parameter:>8}  {cols}  {'speedup':>8}")
        algorithms = list(by_algorithm)
        cells = []
        for algorithm in algorithms:
            row = by_algorithm[algorithm]
            figure = (
                row.time_seconds if metric == "time" else row.memory_mb
            )
            cells.append(f"{figure:>16.4f}{'s' if metric == 'time' else 'M'} ")
        speedup = _speedup(by_algorithm, metric)
        lines.append(
            f"{_fmt_value(parameter, value):>8}  "
            + "  ".join(cells)
            + f"  {speedup:>8}"
        )
    return "\n".join(lines)


def _speedup(by_algorithm: Dict[str, Row], metric: str) -> str:
    """Efficient-over-baseline ratio when both are present."""
    base = by_algorithm.get("baseline")
    fast = by_algorithm.get("efficient")
    if base is None or fast is None:
        return "-"
    if metric == "time":
        num, den = base.time_seconds, fast.time_seconds
    else:
        num, den = base.memory_mb, fast.memory_mb
    if den <= 0:
        return "-"
    return f"{num / den:.2f}x"


def summarize_speedups(rows: Sequence[Row]) -> Dict[str, Tuple[float, float]]:
    """Per (venue, setting) mean and max time speedup of efficient."""
    grouped = group_rows(rows)
    accum: Dict[str, List[float]] = {}
    for key, by_algorithm in grouped.items():
        base = by_algorithm.get("baseline")
        fast = by_algorithm.get("efficient")
        if base is None or fast is None or fast.time_seconds <= 0:
            continue
        label = f"{key[1]}/{key[2]}"
        accum.setdefault(label, []).append(
            base.time_seconds / fast.time_seconds
        )
    return {
        label: (sum(vals) / len(vals), max(vals))
        for label, vals in accum.items()
    }


def format_cache_effectiveness(
    entries: Sequence[Tuple[str, Dict[str, int]]],
    title: str = "Cache effectiveness",
) -> str:
    """Render labelled :class:`DistanceStats` snapshots side by side.

    Every report that compares runs (cold vs warm sessions, efficient
    vs baseline) uses this table so cache behaviour is visible next to
    the raw operation counts: computations actually paid, memo hits,
    the hit rate, and evictions under a bounded cache budget.
    """
    header = (
        f"{'label':<18}{'computed':>10}{'hits':>10}{'hit_rate':>9}"
        f"{'d2d_lookups':>12}{'evictions':>10}"
    )
    lines = [title, header, "-" * len(header)]
    for label, snap in entries:
        hits = (
            snap.get("d2d_cache_hits", 0)
            + snap.get("imind_cache_hits", 0)
            + snap.get("imind_node_cache_hits", 0)
        )
        computed = snap.get("distance_computations", 0)
        calls = computed + hits
        rate = f"{hits / calls:.0%}" if calls else "-"
        lines.append(
            f"{label:<18}"
            f"{computed:>10}{hits:>10}{rate:>9}"
            f"{snap.get('d2d_lookups', 0):>12}"
            f"{snap.get('cache_evictions', 0):>10}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Markdown rendering (used by repro.bench.report)
# ---------------------------------------------------------------------------
def markdown_table(
    header: Sequence[str], rows: Iterable[Sequence[str]]
) -> str:
    """Render a GitHub-flavoured Markdown table, deterministically.

    Cells are written verbatim (callers format values with the ``fmt_*``
    helpers below so every number in a generated report flows through
    one formatting path); column count follows the header.
    """
    lines = [
        "| " + " | ".join(str(cell) for cell in header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(str(cell) for cell in row) + " |"
        )
    return "\n".join(lines)


def fmt_seconds(value: float) -> str:
    """Wall seconds with enough precision for small-scale runs."""
    return f"{value:.4g} s"


def fmt_mb(value: float) -> str:
    """Peak traced memory in MB."""
    return f"{value:.2f} MB"


def fmt_count(value: float) -> str:
    """Exact counter value (thousands separated)."""
    return f"{int(value):,}"


def fmt_ratio(numerator: float, denominator: float) -> str:
    """``numerator / denominator`` as a speedup factor, or ``—``."""
    if denominator <= 0:
        return "—"
    return f"{numerator / denominator:.2f}×"


def fmt_param(parameter: str, value: float) -> str:
    """Axis label for a swept parameter value (``10k`` style for |C|)."""
    return _fmt_value(parameter, value)


def read_csv(path: Path) -> List[Row]:
    """Load rows previously persisted with :func:`write_csv`."""
    rows: List[Row] = []
    with open(path) as handle:
        for record in csv.DictReader(handle):
            rows.append(
                Row(
                    experiment=record["experiment"],
                    venue=record["venue"],
                    setting=record["setting"],
                    parameter=record["parameter"],
                    value=float(record["value"]),
                    algorithm=record["algorithm"],
                    time_seconds=float(record["time_seconds"]),
                    memory_mb=float(record["memory_mb"]),
                    objective=(
                        float(record["objective"])
                        if record["objective"]
                        else None
                    ),
                )
            )
    return rows


def write_json(
    rows: Iterable[Row],
    path: Path,
    experiment: str = "",
    scale: str = "",
) -> None:
    """Persist rows as a self-describing JSON document.

    Schema (version 1)::

        {"schema": 1, "experiment": "...", "scale": "...",
         "rows": [{"experiment": ..., "venue": ..., ...}, ...]}

    Row fields mirror :func:`write_csv` columns with native types
    (``objective`` is ``null`` when absent).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": 1,
        "experiment": experiment,
        "scale": scale,
        "rows": [
            {
                "experiment": row.experiment,
                "venue": row.venue,
                "setting": row.setting,
                "parameter": row.parameter,
                "value": row.value,
                "algorithm": row.algorithm,
                "time_seconds": row.time_seconds,
                "memory_mb": row.memory_mb,
                "objective": row.objective,
            }
            for row in rows
        ],
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def read_json(path: Path) -> List[Row]:
    """Load rows previously persisted with :func:`write_json`."""
    with open(path) as handle:
        document = json.load(handle)
    return [
        Row(
            experiment=record["experiment"],
            venue=record["venue"],
            setting=record["setting"],
            parameter=record["parameter"],
            value=float(record["value"]),
            algorithm=record["algorithm"],
            time_seconds=float(record["time_seconds"]),
            memory_mb=float(record["memory_mb"]),
            objective=(
                None
                if record["objective"] is None
                else float(record["objective"])
            ),
        )
        for record in document["rows"]
    ]


def write_csv(rows: Iterable[Row], path: Path) -> None:
    """Persist rows as CSV (one line per configuration x algorithm)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "experiment", "venue", "setting", "parameter", "value",
                "algorithm", "time_seconds", "memory_mb", "objective",
            ]
        )
        for row in rows:
            writer.writerow(
                [
                    row.experiment, row.venue, row.setting, row.parameter,
                    row.value, row.algorithm,
                    f"{row.time_seconds:.6f}", f"{row.memory_mb:.4f}",
                    "" if row.objective is None else f"{row.objective:.6f}",
                ]
            )
