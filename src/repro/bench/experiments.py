"""Experiment definitions regenerating the paper's evaluation (Section 6).

Every figure of the paper maps to one experiment function returning
:class:`Row` records with both metrics (time and memory), so Figure 7
(time) and Figure 8 (memory) come from the same runs, exactly like the
paper reports one set of runs under two metrics.

Parameter ranges follow Table 2; the ``REPRO_SCALE`` environment
variable selects how much of the paper's scale to run:

* ``small``  (default) — client counts divided by 20, 2 repetitions;
  finishes in a few minutes on a laptop;
* ``medium`` — client counts divided by 4, 3 repetitions;
* ``paper``  — the full Table 2 ranges, 10 repetitions (as in §6.1.3).
"""

from __future__ import annotations

import os
import random
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.efficient import (
    TOP_DOWN,
    EfficientOptions,
    efficient_minmax,
)
from ..core.queries import IFLSEngine
from ..datasets.categories import QUERY_CATEGORIES, real_setting_facilities
from ..datasets.venues import CH, CPH, MC, MZB, VENUE_NAMES, venue_by_name
from ..datasets.workloads import (
    normal_clients,
    random_facility_sets,
    uniform_clients,
)
from ..indoor.entities import FacilitySets
from .measure import Measurement, measure_query

def _seed(*parts: object) -> int:
    """Deterministic cross-process seed (``hash()`` is salted)."""
    return zlib.crc32(repr(parts).encode("utf-8"))


# ---------------------------------------------------------------------------
# Table 2 parameters
# ---------------------------------------------------------------------------
CLIENT_SIZES = (1_000, 5_000, 10_000, 15_000, 20_000)
DEFAULT_CLIENTS = 10_000
SIGMAS = (0.125, 0.25, 0.5, 1.0, 2.0)
DEFAULT_SIGMA = 0.5

FE_RANGES: Dict[str, Sequence[int]] = {
    MC: (25, 50, 75, 100, 125),
    CH: (50, 75, 100, 125, 150),
    CPH: (10, 15, 20, 25, 30),
    MZB: (100, 200, 300, 400, 500),
}
FN_RANGES: Dict[str, Sequence[int]] = {
    MC: (100, 125, 150, 175, 200),
    CH: (100, 200, 300, 400, 500),
    CPH: (25, 30, 35, 40, 45),
    MZB: (300, 400, 500, 600, 700),
}


def default_fe(venue: str) -> int:
    """Table-2 default |Fe| (midpoint of the venue's range)."""
    values = FE_RANGES[venue]
    return values[len(values) // 2]


def default_fn(venue: str) -> int:
    """Table-2 default |Fn| (midpoint of the venue's range)."""
    values = FN_RANGES[venue]
    return values[len(values) // 2]


# ---------------------------------------------------------------------------
# Scale
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Scale:
    """How much of the paper's workload to run."""

    name: str
    client_divisor: int
    repeats: int

    def clients(self, paper_count: int) -> int:
        """Scaled client count for a paper-scale count."""
        return max(20, paper_count // self.client_divisor)


SCALES = {
    "small": Scale("small", 20, 2),
    "medium": Scale("medium", 4, 3),
    "paper": Scale("paper", 1, 10),
}


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_SCALE", "small").lower()
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r}; choose from {sorted(SCALES)}"
        ) from None


# ---------------------------------------------------------------------------
# Row model and engine cache
# ---------------------------------------------------------------------------
@dataclass
class Row:
    """One measured (configuration, algorithm) data point."""

    experiment: str
    venue: str
    setting: str
    parameter: str
    value: float
    algorithm: str
    time_seconds: float
    memory_mb: float
    objective: Optional[float]

    def key(self) -> tuple:
        """Configuration key (everything but the algorithm)."""
        return (
            self.experiment, self.venue, self.setting,
            self.parameter, self.value,
        )


class EngineCache:
    """Builds each venue's IFLS engine once per harness run."""

    def __init__(self) -> None:
        self._engines: Dict[str, IFLSEngine] = {}

    def engine(self, venue_name: str) -> IFLSEngine:
        """The venue's engine, built on first use."""
        if venue_name not in self._engines:
            self._engines[venue_name] = IFLSEngine(
                venue_by_name(venue_name)
            )
        return self._engines[venue_name]


def _rows_from(
    measurements: Iterable[Measurement],
    experiment: str,
    venue: str,
    setting: str,
    parameter: str,
    value: float,
) -> List[Row]:
    return [
        Row(
            experiment=experiment,
            venue=venue,
            setting=setting,
            parameter=parameter,
            value=value,
            algorithm=m.label,
            time_seconds=m.mean_seconds,
            memory_mb=m.mean_memory_mb,
            objective=m.objective,
        )
        for m in measurements
    ]


def _measure_pair(
    engine: IFLSEngine,
    clients,
    facilities: FacilitySets,
    scale: Scale,
) -> List[Measurement]:
    return [
        measure_query(
            engine, clients, facilities, algorithm,
            repeats=scale.repeats,
        )
        for algorithm in ("efficient", "baseline")
    ]


# ---------------------------------------------------------------------------
# Figure 5: |C| sweep, real setting (Melbourne Central, 5 categories)
# ---------------------------------------------------------------------------
def fig5(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    categories: Sequence[str] = QUERY_CATEGORIES,
    client_sizes: Sequence[int] = CLIENT_SIZES,
) -> List[Row]:
    """Effect of client size in the real setting (time and memory)."""
    scale = scale or current_scale()
    cache = cache or EngineCache()
    engine = cache.engine(MC)
    rows: List[Row] = []
    for category in categories:
        facilities = real_setting_facilities(engine.venue, category)
        for paper_count in client_sizes:
            count = scale.clients(paper_count)
            rng = random.Random(_seed(category, paper_count))
            clients = uniform_clients(engine.venue, count, rng)
            rows.extend(
                _rows_from(
                    _measure_pair(engine, clients, facilities, scale),
                    experiment="fig5",
                    venue=MC,
                    setting=category,
                    parameter="|C|",
                    value=paper_count,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 6: sigma sweep, real (MC) and synthetic (all four venues)
# ---------------------------------------------------------------------------
def fig6(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    sigmas: Sequence[float] = SIGMAS,
    venues: Sequence[str] = VENUE_NAMES,
    real_category: str = QUERY_CATEGORIES[0],
) -> List[Row]:
    """Effect of the normal distribution's standard deviation."""
    scale = scale or current_scale()
    cache = cache or EngineCache()
    rows: List[Row] = []
    count = scale.clients(DEFAULT_CLIENTS)

    engine = cache.engine(MC)
    facilities = real_setting_facilities(engine.venue, real_category)
    for sigma in sigmas:
        rng = random.Random(_seed("fig6-real", sigma))
        clients = normal_clients(engine.venue, count, sigma, rng)
        rows.extend(
            _rows_from(
                _measure_pair(engine, clients, facilities, scale),
                experiment="fig6",
                venue=MC,
                setting="real",
                parameter="sigma",
                value=sigma,
            )
        )

    for venue_name in venues:
        engine = cache.engine(venue_name)
        rng = random.Random(_seed("fig6-fac", venue_name))
        facilities = random_facility_sets(
            engine.venue, default_fe(venue_name), default_fn(venue_name),
            rng,
        )
        for sigma in sigmas:
            rng = random.Random(
                _seed("fig6", venue_name, sigma)
            )
            clients = normal_clients(engine.venue, count, sigma, rng)
            rows.extend(
                _rows_from(
                    _measure_pair(engine, clients, facilities, scale),
                    experiment="fig6",
                    venue=venue_name,
                    setting="synthetic",
                    parameter="sigma",
                    value=sigma,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 7 & 8: |C|, |Fe|, |Fn| sweeps, synthetic, all four venues
# (one set of runs, reported as time in Fig 7 and memory in Fig 8)
# ---------------------------------------------------------------------------
def fig78(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    venues: Sequence[str] = VENUE_NAMES,
    parts: Sequence[str] = ("C", "Fe", "Fn"),
) -> List[Row]:
    """Synthetic-setting parameter sweeps (Figures 7 and 8)."""
    scale = scale or current_scale()
    cache = cache or EngineCache()
    rows: List[Row] = []
    for venue_name in venues:
        engine = cache.engine(venue_name)
        if "C" in parts:
            rng = random.Random(_seed("f7c", venue_name))
            facilities = random_facility_sets(
                engine.venue,
                default_fe(venue_name),
                default_fn(venue_name),
                rng,
            )
            for paper_count in CLIENT_SIZES:
                count = scale.clients(paper_count)
                rng = random.Random(
                    _seed("f7c", venue_name, paper_count)
                )
                clients = uniform_clients(engine.venue, count, rng)
                rows.extend(
                    _rows_from(
                        _measure_pair(engine, clients, facilities, scale),
                        experiment="fig78",
                        venue=venue_name,
                        setting="synthetic",
                        parameter="|C|",
                        value=paper_count,
                    )
                )
        count = scale.clients(DEFAULT_CLIENTS)
        if "Fe" in parts:
            for fe in FE_RANGES[venue_name]:
                rng = random.Random(
                    _seed("f7e", venue_name, fe)
                )
                facilities = random_facility_sets(
                    engine.venue, fe, default_fn(venue_name), rng
                )
                clients = uniform_clients(engine.venue, count, rng)
                rows.extend(
                    _rows_from(
                        _measure_pair(engine, clients, facilities, scale),
                        experiment="fig78",
                        venue=venue_name,
                        setting="synthetic",
                        parameter="|Fe|",
                        value=fe,
                    )
                )
        if "Fn" in parts:
            for fn in FN_RANGES[venue_name]:
                rng = random.Random(
                    _seed("f7n", venue_name, fn)
                )
                facilities = random_facility_sets(
                    engine.venue, default_fe(venue_name), fn, rng
                )
                clients = uniform_clients(engine.venue, count, rng)
                rows.extend(
                    _rows_from(
                        _measure_pair(engine, clients, facilities, scale),
                        experiment="fig78",
                        venue=venue_name,
                        setting="synthetic",
                        parameter="|Fn|",
                        value=fn,
                    )
                )
    return rows


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md A1-A3): the efficient approach's design choices
# ---------------------------------------------------------------------------
ABLATION_VARIANTS: Dict[str, EfficientOptions] = {
    "full": EfficientOptions(),
    "no-client-pruning": EfficientOptions(prune_clients=False),
    "no-grouping": EfficientOptions(group_by_partition=False),
    "top-down": EfficientOptions(traversal=TOP_DOWN),
}


def ablations(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    venue_name: str = MC,
) -> List[Row]:
    """Efficient-approach variants with individual optimisations off."""
    import time as _time
    import tracemalloc

    from ..core.problem import IFLSProblem
    from ..index.distance import VIPDistanceEngine

    scale = scale or current_scale()
    cache = cache or EngineCache()
    engine = cache.engine(venue_name)
    rng = random.Random(0xAB1A)
    facilities = random_facility_sets(
        engine.venue, default_fe(venue_name), default_fn(venue_name), rng
    )
    count = scale.clients(DEFAULT_CLIENTS)
    clients = uniform_clients(engine.venue, count, rng)
    rows: List[Row] = []
    for name, options in ABLATION_VARIANTS.items():
        times: List[float] = []
        memories: List[float] = []
        objective = None
        for _ in range(scale.repeats):
            distances = VIPDistanceEngine(engine.tree)
            problem = IFLSProblem(distances, clients, facilities)
            tracemalloc.start()
            started = _time.perf_counter()
            result = efficient_minmax(problem, options)
            elapsed = _time.perf_counter() - started
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            times.append(elapsed)
            memories.append(peak / (1024 * 1024))
            objective = result.objective
        rows.append(
            Row(
                experiment="ablation",
                venue=venue_name,
                setting="synthetic",
                parameter="variant",
                value=0.0,
                algorithm=name,
                time_seconds=sum(times) / len(times),
                memory_mb=sum(memories) / len(memories),
                objective=objective,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Extensions (Section 7): MinDist and MaxSum vs brute force
# ---------------------------------------------------------------------------
def extensions(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    venue_name: str = MC,
) -> List[Row]:
    """Efficient MinDist/MaxSum against the brute-force oracle."""
    scale = scale or current_scale()
    cache = cache or EngineCache()
    engine = cache.engine(venue_name)
    rng = random.Random(0x5EC7)
    facilities = random_facility_sets(
        engine.venue, default_fe(venue_name), default_fn(venue_name), rng
    )
    # Extensions run brute force too, so stay below the figure scales.
    count = max(20, scale.clients(DEFAULT_CLIENTS) // 5)
    clients = uniform_clients(engine.venue, count, rng)
    rows: List[Row] = []
    for objective in ("mindist", "maxsum"):
        for algorithm in ("efficient", "bruteforce"):
            measurement = measure_query(
                engine, clients, facilities, algorithm,
                objective=objective, repeats=max(1, scale.repeats - 1),
            )
            rows.extend(
                _rows_from(
                    [measurement],
                    experiment="extensions",
                    venue=venue_name,
                    setting=objective,
                    parameter="|C|",
                    value=count,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Parallel batch executor: wall-clock scaling across worker counts
# ---------------------------------------------------------------------------
WORKER_COUNTS = (1, 2, 4, 8)


def parallel_scaling(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    venue_name: str = MC,
    worker_counts: Sequence[int] = WORKER_COUNTS,
    queries: Optional[int] = None,
) -> List[Row]:
    """Wall-clock of one warm batch, sharded over 1/2/4/8 workers.

    The same batch (fresh workload per query, identical across worker
    counts) is answered through :func:`~repro.core.parallel.run_batch_parallel`
    at each pool size; answers are asserted identical, so the series
    measures pure execution scaling.  Per worker count the best of
    ``scale.repeats`` runs is reported (pool startup noise suppressed).
    Speedup is bounded by the machine's core count — a single-core
    runner shows ~1x with the sharding overhead on top.
    """
    from ..core.parallel import run_batch_parallel
    from ..core.session import BatchQuery

    scale = scale or current_scale()
    cache = cache or EngineCache()
    engine = cache.engine(venue_name)
    if queries is None:
        queries = max(8, 4 * scale.repeats)
    count = scale.clients(5_000)
    batch = []
    for i in range(queries):
        rng = random.Random(_seed("parallel", venue_name, i))
        facilities = random_facility_sets(
            engine.venue,
            default_fe(venue_name),
            default_fn(venue_name),
            rng,
        )
        clients = uniform_clients(engine.venue, count, rng)
        batch.append(BatchQuery(clients, facilities))
    reference = None
    rows: List[Row] = []
    for workers in worker_counts:
        times: List[float] = []
        for _ in range(scale.repeats):
            outcome = run_batch_parallel(engine, batch, workers)
            times.append(outcome.elapsed_seconds)
            if reference is None:
                reference = outcome.answers
            elif outcome.answers != reference:
                raise RuntimeError(
                    f"parallel answers diverged at workers={workers}"
                )
        rows.append(
            Row(
                experiment="parallel",
                venue=venue_name,
                setting="batch",
                parameter="workers",
                value=workers,
                algorithm="parallel",
                time_seconds=min(times),
                memory_mb=0.0,
                objective=None,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Continuous IFLS: incremental event-stream maintenance vs the oracle
# ---------------------------------------------------------------------------
STREAM_EVENT_COUNTS = (100, 200, 400)
STREAM_INITIAL = 200
STREAM_FE = 20
STREAM_FN = 15


def stream_replay(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    venue_name: str = CPH,
    event_counts: Sequence[int] = STREAM_EVENT_COUNTS,
) -> List[Row]:
    """Incremental stream maintenance vs the from-scratch oracle.

    One synthetic arrive/depart/move stream per event count is replayed
    twice through :class:`~repro.core.stream.ContinuousQuery`: once
    incrementally (Lemma 5.1 settled groups skipped, skip rules applied)
    and once in oracle mode (full recompute per event).  Final answers
    are asserted identical, so the series measures pure maintenance
    cost; per mode the best of ``scale.repeats`` replays is reported.
    """
    from ..core.stream import ContinuousQuery, synthetic_events

    scale = scale or current_scale()
    cache = cache or EngineCache()
    engine = cache.engine(venue_name)
    rng = random.Random(_seed("stream", venue_name))
    facilities = random_facility_sets(
        engine.venue, STREAM_FE, STREAM_FN, rng
    )
    rows: List[Row] = []
    for count in event_counts:
        events = synthetic_events(
            engine.venue,
            initial=STREAM_INITIAL,
            events=count,
            seed=_seed("stream-events", venue_name, count),
        )
        finals = {}
        for mode in ("incremental", "oracle"):
            times: List[float] = []
            final = None
            for _ in range(scale.repeats):
                stream = ContinuousQuery(
                    engine,
                    facilities,
                    incremental=(mode == "incremental"),
                )
                started = time.perf_counter()
                stream.apply_batch(events)
                times.append(time.perf_counter() - started)
                final = stream.answer()
            assert final is not None
            finals[mode] = (final.answer, final.objective, final.status)
            rows.append(
                Row(
                    experiment="stream",
                    venue=venue_name,
                    setting="replay",
                    parameter="events",
                    value=count,
                    algorithm=mode,
                    time_seconds=min(times),
                    memory_mb=0.0,
                    objective=(
                        final.objective
                        if final.objective != float("inf")
                        else None
                    ),
                )
            )
        if finals["incremental"] != finals["oracle"]:
            raise RuntimeError(
                f"stream experiment: incremental final answer diverged "
                f"from the oracle at events={count}: "
                f"{finals['incremental']} != {finals['oracle']}"
            )
    return rows


EXPERIMENTS: Dict[str, Callable[..., List[Row]]] = {
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig78,
    "fig8": fig78,
    "fig78": fig78,
    "ablation": ablations,
    "extensions": extensions,
    "parallel": parallel_scaling,
    "stream": stream_replay,
}
