"""Measurement primitives for the benchmark harness.

The paper's metrics (Section 6.1.3): mean *query processing time* and
*memory cost* over 10 IFLS queries per configuration.  Time is wall
clock around the algorithm only (index construction is offline); memory
is the peak traced allocation during the query (``tracemalloc``),
covering the algorithm's working state and the per-query distance
caches, which is what the paper's per-query memory cost captures.
"""

from __future__ import annotations

import statistics
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.queries import IFLSEngine
from ..core.result import IFLSResult
from ..indoor.entities import Client, FacilitySets


@dataclass
class Measurement:
    """Aggregated runs of one (configuration, algorithm) pair."""

    label: str
    elapsed_seconds: List[float] = field(default_factory=list)
    peak_memory_bytes: List[int] = field(default_factory=list)
    objective: Optional[float] = None
    answer: Optional[int] = None

    @property
    def mean_seconds(self) -> float:
        """Mean wall-clock time over the repetitions."""
        return statistics.fmean(self.elapsed_seconds)

    @property
    def mean_memory_mb(self) -> float:
        """Mean peak traced memory (MB) over the repetitions."""
        return statistics.fmean(self.peak_memory_bytes) / (1024 * 1024)

    def add(self, result: IFLSResult, elapsed: float, peak: int) -> None:
        """Record one repetition."""
        self.elapsed_seconds.append(elapsed)
        self.peak_memory_bytes.append(peak)
        self.objective = result.objective
        self.answer = result.answer


def measure_query(
    engine: IFLSEngine,
    clients: Sequence[Client],
    facilities: FacilitySets,
    algorithm: str,
    objective: str = "minmax",
    repeats: int = 3,
    measure_memory: bool = True,
) -> Measurement:
    """Run one query configuration ``repeats`` times, cold each time.

    Every repetition uses a fresh distance engine (``cold=True``) so
    repeated runs measure the same work instead of cache hits.
    """
    out = Measurement(label=algorithm)
    for _ in range(repeats):
        if measure_memory:
            tracemalloc.start()
        started = time.perf_counter()
        try:
            result = engine.query(
                clients,
                facilities,
                objective=objective,
                algorithm=algorithm,
                cold=True,
            )
        finally:
            if measure_memory:
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
            else:
                peak = 0
        elapsed = time.perf_counter() - started
        out.add(result, elapsed, peak)
    return out


def compare(
    engine: IFLSEngine,
    clients: Sequence[Client],
    facilities: FacilitySets,
    algorithms: Sequence[str] = ("efficient", "baseline"),
    objective: str = "minmax",
    repeats: int = 3,
    measure_memory: bool = True,
) -> List[Measurement]:
    """Measure several algorithms on the same inputs."""
    return [
        measure_query(
            engine,
            clients,
            facilities,
            algorithm,
            objective=objective,
            repeats=repeats,
            measure_memory=measure_memory,
        )
        for algorithm in algorithms
    ]


def timed(fn: Callable[[], object]) -> float:
    """Wall-clock a callable once (used by setup-cost reporting)."""
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
