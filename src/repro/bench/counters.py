"""Operation-count report: why the efficient approach wins.

The paper's §6.2.3 attributes the speedup to (i) grouping clients by
partition (bounded queue traffic), (ii) the single-door distance reuse,
and (iii) Lemma 5.1 client pruning (fewer facility retrievals and
indoor distance computations).  This experiment measures exactly those
internal counters for both algorithms on identical workloads, so the
claim is verifiable independent of wall-clock noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.baseline import modified_minmax
from ..core.efficient import efficient_minmax
from ..core.problem import IFLSProblem
from ..index.distance import VIPDistanceEngine
from ..datasets.venues import VENUE_NAMES
from ..datasets.workloads import random_facility_sets, uniform_clients
from .experiments import (
    EngineCache,
    Scale,
    current_scale,
    default_fe,
    default_fn,
)


@dataclass
class CounterRow:
    """Internal operation counts of one algorithm run."""

    venue: str
    algorithm: str
    clients: int
    clients_pruned: int
    facilities_retrieved: int
    idist_calls: int
    d2d_lookups: int
    distance_computations: int
    single_door_shortcuts: int
    queue_pops: int

    def as_dict(self) -> Dict[str, object]:
        """Field mapping for table rendering."""
        return dict(self.__dict__)


def measure_counters(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    venues: Sequence[str] = VENUE_NAMES,
) -> List[CounterRow]:
    """Run both algorithms at default Table-2 parameters per venue."""
    scale = scale or current_scale()
    cache = cache or EngineCache()
    rows: List[CounterRow] = []
    for venue_name in venues:
        engine = cache.engine(venue_name)
        rng = random.Random(0xC0DE)
        facilities = random_facility_sets(
            engine.venue,
            default_fe(venue_name),
            default_fn(venue_name),
            rng,
        )
        count = scale.clients(10_000)
        clients = uniform_clients(engine.venue, count, rng)
        for name, solver, memoize in (
            ("efficient", efficient_minmax, True),
            ("baseline", modified_minmax, False),
        ):
            distances = VIPDistanceEngine(engine.tree, memoize=memoize)
            problem = IFLSProblem(distances, clients, facilities)
            result = solver(problem)
            stats = result.stats
            rows.append(
                CounterRow(
                    venue=venue_name,
                    algorithm=name,
                    clients=count,
                    clients_pruned=stats.clients_pruned,
                    facilities_retrieved=stats.facilities_retrieved,
                    idist_calls=stats.distance.idist_calls,
                    d2d_lookups=stats.distance.d2d_lookups,
                    distance_computations=(
                        stats.distance.distance_computations
                    ),
                    single_door_shortcuts=(
                        stats.distance.single_door_shortcuts
                    ),
                    queue_pops=stats.queue_pops,
                )
            )
    return rows


def format_counters(rows: Sequence[CounterRow]) -> str:
    """Fixed-width table of the counter comparison."""
    columns = (
        ("venue", 6), ("algorithm", 10), ("clients", 8),
        ("clients_pruned", 15), ("facilities_retrieved", 21),
        ("idist_calls", 12), ("d2d_lookups", 12),
        ("single_door_shortcuts", 22), ("queue_pops", 11),
    )
    header = "".join(f"{name:>{width}}" for name, width in columns)
    lines = ["Operation counts (defaults per venue, uniform clients)",
             header, "-" * len(header)]
    for row in rows:
        data = row.as_dict()
        lines.append(
            "".join(f"{data[name]:>{width}}" for name, width in columns)
        )
    return "\n".join(lines)
