"""Operation-count report: why the efficient approach wins.

The paper's §6.2.3 attributes the speedup to (i) grouping clients by
partition (bounded queue traffic), (ii) the single-door distance reuse,
and (iii) Lemma 5.1 client pruning (fewer facility retrievals and
indoor distance computations).  This experiment measures exactly those
internal counters for both algorithms on identical workloads, so the
claim is verifiable independent of wall-clock noise.

:func:`measure_session_counters` extends the comparison across a whole
query *batch*: the same workload sequence answered cold (fresh distance
engine per query) and warm (one :class:`~repro.core.session.QuerySession`),
with identical answers asserted and the distance-computation savings
reported via :func:`~repro.bench.reporting.format_cache_effectiveness`.

:func:`measure_parallel_counters` does the same for the sharded
process-pool executor (:mod:`repro.core.parallel`): one batch answered
serially and with a worker pool, answers asserted identical and the
merged per-worker counters re-checked against the
:class:`~repro.index.distance.DistanceStats` invariants, so the
deterministic stat merging is verifiable independent of wall-clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.baseline import modified_minmax
from ..core.efficient import efficient_minmax
from ..core.problem import IFLSProblem
from ..index.distance import VIPDistanceEngine
from ..datasets.venues import VENUE_NAMES
from ..datasets.workloads import random_facility_sets, uniform_clients
from .experiments import (
    EngineCache,
    Scale,
    current_scale,
    default_fe,
    default_fn,
)


@dataclass
class CounterRow:
    """Internal operation counts of one algorithm run."""

    venue: str
    algorithm: str
    clients: int
    clients_pruned: int
    facilities_retrieved: int
    idist_calls: int
    d2d_lookups: int
    distance_computations: int
    cache_hits: int
    single_door_shortcuts: int
    queue_pops: int

    @property
    def cache_hit_rate(self) -> float:
        """Memo hits per distance request (0 when nothing was asked)."""
        calls = self.distance_computations + self.cache_hits
        return self.cache_hits / calls if calls else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Field mapping for table rendering."""
        out = dict(self.__dict__)
        out["cache_hit_rate"] = f"{self.cache_hit_rate:.0%}"
        return out


def measure_counters(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    venues: Sequence[str] = VENUE_NAMES,
) -> List[CounterRow]:
    """Run both algorithms at default Table-2 parameters per venue."""
    scale = scale or current_scale()
    cache = cache or EngineCache()
    rows: List[CounterRow] = []
    for venue_name in venues:
        engine = cache.engine(venue_name)
        rng = random.Random(0xC0DE)
        facilities = random_facility_sets(
            engine.venue,
            default_fe(venue_name),
            default_fn(venue_name),
            rng,
        )
        count = scale.clients(10_000)
        clients = uniform_clients(engine.venue, count, rng)
        for name, solver, memoize in (
            ("efficient", efficient_minmax, True),
            ("baseline", modified_minmax, False),
        ):
            distances = VIPDistanceEngine(engine.tree, memoize=memoize)
            problem = IFLSProblem(distances, clients, facilities)
            result = solver(problem)
            stats = result.stats
            rows.append(
                CounterRow(
                    venue=venue_name,
                    algorithm=name,
                    clients=count,
                    clients_pruned=stats.clients_pruned,
                    facilities_retrieved=stats.facilities_retrieved,
                    idist_calls=stats.distance.idist_calls,
                    d2d_lookups=stats.distance.d2d_lookups,
                    distance_computations=(
                        stats.distance.distance_computations
                    ),
                    cache_hits=stats.distance.cache_hits,
                    single_door_shortcuts=(
                        stats.distance.single_door_shortcuts
                    ),
                    queue_pops=stats.queue_pops,
                )
            )
    return rows


@dataclass
class SessionCounterRow:
    """Cold-vs-warm batch comparison on one venue."""

    venue: str
    queries: int
    cold: Dict[str, int]
    warm: Dict[str, int]
    answers_identical: bool

    @property
    def computations_saved(self) -> int:
        """Distance computations the warm session avoided."""
        return (
            self.cold["distance_computations"]
            - self.warm["distance_computations"]
        )


def measure_session_counters(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    venues: Sequence[str] = VENUE_NAMES,
    batch_size: int = 12,
    clients_per_query: int = 2_000,
) -> List[SessionCounterRow]:
    """Answer one batch per venue cold and warm with identical inputs.

    Cold gives every query its own fresh memoising engine (the
    per-query behaviour before sessions existed); warm runs the same
    sequence through one :class:`QuerySession`.  Answers must agree
    exactly — the warm path only changes what is *recomputed*.
    """
    from ..core.session import BatchQuery

    scale = scale or current_scale()
    cache = cache or EngineCache()
    rows: List[SessionCounterRow] = []
    count = scale.clients(clients_per_query)
    for venue_name in venues:
        engine = cache.engine(venue_name)
        batch = []
        for i in range(batch_size):
            rng = random.Random(_SESSION_SEED + i)
            facilities = random_facility_sets(
                engine.venue,
                default_fe(venue_name),
                default_fn(venue_name),
                rng,
            )
            clients = uniform_clients(engine.venue, count, rng)
            batch.append(BatchQuery(clients, facilities))
        cold_totals: Dict[str, int] = {}
        cold_answers = []
        for query in batch:
            distances = VIPDistanceEngine(engine.tree, memoize=True)
            problem = IFLSProblem(
                distances, list(query.clients), query.facilities
            )
            result = efficient_minmax(problem)
            cold_answers.append((result.answer, result.objective))
            for key, value in distances.stats.snapshot().items():
                cold_totals[key] = cold_totals.get(key, 0) + value
        session = engine.session()
        warm_results = session.run(batch)
        warm_answers = [(r.answer, r.objective) for r in warm_results]
        rows.append(
            SessionCounterRow(
                venue=venue_name,
                queries=batch_size,
                cold=cold_totals,
                warm=session.report().totals,
                answers_identical=cold_answers == warm_answers,
            )
        )
    return rows


_SESSION_SEED = 0x5E55


@dataclass
class ParallelCounterRow:
    """Serial-vs-sharded batch comparison on one venue."""

    venue: str
    queries: int
    workers: int
    serial: Dict[str, int]
    merged: Dict[str, int]
    answers_identical: bool
    invariant_violations: List[str]


def measure_parallel_counters(
    scale: Optional[Scale] = None,
    cache: Optional[EngineCache] = None,
    venues: Sequence[str] = ("MC",),
    workers: int = 2,
    batch_size: int = 8,
    clients_per_query: int = 2_000,
) -> List[ParallelCounterRow]:
    """Answer one batch per venue serially and sharded over a pool.

    Answers must agree exactly (sharding only redistributes cache
    warmth); the merged per-worker totals must satisfy every
    :class:`DistanceStats` ledger invariant, which
    :func:`~repro.core.stats.distance_invariant_violations` re-checks
    here so stat-merging drift shows up in bench output, not just CI.
    """
    from ..core.parallel import run_batch_parallel
    from ..core.session import BatchQuery
    from ..core.stats import distance_invariant_violations

    scale = scale or current_scale()
    cache = cache or EngineCache()
    rows: List[ParallelCounterRow] = []
    count = scale.clients(clients_per_query)
    for venue_name in venues:
        engine = cache.engine(venue_name)
        batch = []
        for i in range(batch_size):
            rng = random.Random(_SESSION_SEED + 1_000 + i)
            facilities = random_facility_sets(
                engine.venue,
                default_fe(venue_name),
                default_fn(venue_name),
                rng,
            )
            clients = uniform_clients(engine.venue, count, rng)
            batch.append(BatchQuery(clients, facilities))
        serial = run_batch_parallel(engine, batch, 1)
        sharded = run_batch_parallel(engine, batch, workers)
        rows.append(
            ParallelCounterRow(
                venue=venue_name,
                queries=batch_size,
                workers=sharded.workers,
                serial=serial.report.totals,
                merged=sharded.report.totals,
                answers_identical=serial.answers == sharded.answers,
                invariant_violations=distance_invariant_violations(
                    sharded.report.totals
                ),
            )
        )
    return rows


def format_parallel_counters(rows: Sequence[ParallelCounterRow]) -> str:
    """Serial-vs-merged counter tables, one per venue."""
    from .reporting import format_cache_effectiveness

    blocks = []
    for row in rows:
        table = format_cache_effectiveness(
            [
                ("serial (1 worker)", row.serial),
                (f"sharded ({row.workers} workers)", row.merged),
            ],
            title=(
                f"{row.venue}: {row.queries}-query batch, serial vs "
                f"{row.workers}-worker pool (merged counters)"
            ),
        )
        agree = "yes" if row.answers_identical else "NO — BUG"
        invariants = (
            "ok"
            if not row.invariant_violations
            else "; ".join(row.invariant_violations)
        )
        blocks.append(
            f"{table}\n"
            f"answers identical: {agree}; "
            f"merged-counter invariants: {invariants}"
        )
    return "\n\n".join(blocks)


def format_session_counters(rows: Sequence[SessionCounterRow]) -> str:
    """Cache-effectiveness tables, one per venue, plus savings lines."""
    from .reporting import format_cache_effectiveness

    blocks = []
    for row in rows:
        table = format_cache_effectiveness(
            [("cold (per-query)", row.cold), ("warm (session)", row.warm)],
            title=(
                f"{row.venue}: {row.queries}-query batch, "
                f"cold vs warm session"
            ),
        )
        agree = "yes" if row.answers_identical else "NO — BUG"
        blocks.append(
            f"{table}\n"
            f"answers identical: {agree}; "
            f"computations saved: {row.computations_saved}"
        )
    return "\n\n".join(blocks)


def format_counters(rows: Sequence[CounterRow]) -> str:
    """Fixed-width table of the counter comparison."""
    columns = (
        ("venue", 6), ("algorithm", 10), ("clients", 8),
        ("clients_pruned", 15), ("facilities_retrieved", 21),
        ("idist_calls", 12), ("d2d_lookups", 12),
        ("cache_hits", 11), ("cache_hit_rate", 15),
        ("single_door_shortcuts", 22), ("queue_pops", 11),
    )
    header = "".join(f"{name:>{width}}" for name, width in columns)
    lines = ["Operation counts (defaults per venue, uniform clients)",
             header, "-" * len(header)]
    for row in rows:
        data = row.as_dict()
        lines.append(
            "".join(f"{data[name]:>{width}}" for name, width in columns)
        )
    return "\n".join(lines)
