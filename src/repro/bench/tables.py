"""Static tables of the paper.

* **Table 1** — the related-work taxonomy of non-indoor location
  selection queries.  It is not an experiment; it is regenerated here so
  the harness covers every table of the paper.
* **Table 2** — the parameter settings, regenerated from the constants
  in :mod:`repro.bench.experiments` so the printed table always matches
  what the harness actually runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..datasets.venues import CH, CPH, MC, MZB
from .experiments import CLIENT_SIZES, FE_RANGES, FN_RANGES, SIGMAS


@dataclass(frozen=True)
class TaxonomyEntry:
    """One row of Table 1."""

    reference: str
    objectives: Tuple[str, ...]
    solution_space: str  # D(iscrete) / C(ontinuous)
    metric: str  # M(anhattan) / E(uclidean) / RN (road network)
    answers: str  # "1" or "k"


TABLE1: Tuple[TaxonomyEntry, ...] = (
    TaxonomyEntry("[2] Chen et al. 2014", ("MinDist", "MinMax"), "C",
                  "RN", "k"),
    TaxonomyEntry("[22] Xiao et al. 2011",
                  ("MaxInf", "MinDist", "MinMax"), "C", "RN", "1"),
    TaxonomyEntry("[4] Cui et al. 2018", ("MinDist",), "D", "RN", "1"),
    TaxonomyEntry("[7] Gao et al. 2015", ("MaxInf",), "D", "E", "k"),
    TaxonomyEntry("[21] Xia et al. 2005", ("MaxInf",), "D", "E", "k"),
    TaxonomyEntry("[5] Du et al. 2005", ("MaxInf",), "C", "M", "1"),
    TaxonomyEntry("[24] Xu et al. 2017", ("MinDist",), "C", "RN", "k"),
    TaxonomyEntry("[26] Zhang et al. 2006", ("MinDist",), "C", "M", "1"),
    TaxonomyEntry("[12] Liu et al. 2021", ("MaxSum",), "C", "E", "k"),
    TaxonomyEntry("[14] Qi et al. 2012", ("MinDist",), "C", "E", "1"),
    TaxonomyEntry("[8] Gao et al. 2009", ("MinDist",), "D", "E", "k"),
    TaxonomyEntry("[9] Huang et al. 2011", ("MaxInf",), "D", "E", "k"),
    TaxonomyEntry("[3] Chung et al. 2018", ("MinDist",), "D", "E", "k"),
)

_OBJECTIVES = ("MaxInf", "MinDist", "MinMax", "MaxSum")


def format_table1() -> str:
    """Render Table 1 as fixed-width text."""
    lines = [
        "Table 1: Existing Works in Non-Indoor Setting",
        "(D: Discrete, C: Continuous; M: Manhattan, E: Euclidean, "
        "RN: Road Network)",
        "",
    ]
    header = (
        f"{'Reference':<24}"
        + "".join(f"{o:>9}" for o in _OBJECTIVES)
        + f"{'Space':>7}{'Metric':>8}{'|A|':>5}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for entry in TABLE1:
        marks = "".join(
            f"{'x' if o in entry.objectives else '':>9}"
            for o in _OBJECTIVES
        )
        lines.append(
            f"{entry.reference:<24}{marks}"
            f"{entry.solution_space:>7}{entry.metric:>8}{entry.answers:>5}"
        )
    return "\n".join(lines)


def format_table2() -> str:
    """Render Table 2 (parameter settings) from the harness constants."""
    lines = [
        "Table 2: Parameter settings for the IFLS query",
        "",
        f"{'Venue':<6}{'|Fe| range':>22}{'|Fn| range':>26}",
    ]
    for venue in (MC, CH, CPH, MZB):
        fe = ", ".join(str(v) for v in FE_RANGES[venue])
        fn = ", ".join(str(v) for v in FN_RANGES[venue])
        lines.append(f"{venue:<6}{fe:>22}{fn:>26}")
    clients = ", ".join(f"{c // 1000}k" for c in CLIENT_SIZES)
    sigmas = ", ".join(f"{s:g}" for s in SIGMAS)
    lines.append(f"Client size (C): {clients}")
    lines.append(f"Normal distribution sigma: {sigmas} (mu = 0)")
    lines.append(
        "Real setting (MC): |Fe| in 101, 54, 39, 19, 14 with "
        "|Fn| = 291 - |Fe|"
    )
    return "\n".join(lines)


def table2_markdown() -> str:
    """Table 2 as Markdown, from the same harness constants.

    Used by the generated EXPERIMENTS.md report so the parameter table
    can never disagree with what the sweeps actually run.
    """
    from .reporting import markdown_table

    rows = [
        (
            venue,
            ", ".join(str(v) for v in FE_RANGES[venue]),
            ", ".join(str(v) for v in FN_RANGES[venue]),
        )
        for venue in (MC, CH, CPH, MZB)
    ]
    table = markdown_table(("venue", "|Fe| range", "|Fn| range"), rows)
    clients = ", ".join(f"{c // 1000}k" for c in CLIENT_SIZES)
    sigmas = ", ".join(f"{s:g}" for s in SIGMAS)
    return "\n".join(
        [
            table,
            "",
            f"Client sizes |C|: {clients}; normal-distribution sigma: "
            f"{sigmas} (mu = 0).",
        ]
    )


def table1_rows() -> List[TaxonomyEntry]:
    """Programmatic access for tests."""
    return list(TABLE1)
