"""ASCII charts of benchmark series.

The paper's figures are log-scale line plots of time/memory against a
workload parameter.  This module renders the harness's measured series
in the same shape as terminal charts, so a reproduction run ends with
figures one can eyeball against the paper without any plotting stack.

Series markers: ``*`` efficient, ``o`` baseline, ``#`` overlapping.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from .experiments import Row
from .reporting import group_rows

MARKERS = {"efficient": "*", "baseline": "o"}
FALLBACK_MARKERS = "x+%@"


def _format_x(value: float) -> str:
    if value >= 1000:
        return f"{value / 1000:g}k"
    return f"{value:g}"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_y: bool = True,
    y_label: str = "",
) -> str:
    """Render named (x, y) series as a fixed-width ASCII chart.

    X positions are equally spaced in input order (the paper's figures
    use categorical ticks); the Y axis is log10 by default, matching
    the paper's presentation.
    """
    points = [p for values in series.values() for p in values]
    if not points:
        return f"{title}\n(no data)"
    xs: List[float] = sorted({x for x, _y in points})
    ys = [y for _x, y in points if y > 0 or not log_y]
    if not ys:
        ys = [1.0]

    def transform(y: float) -> float:
        if log_y:
            return math.log10(max(y, 1e-12))
        return y

    lo = min(transform(y) for y in ys)
    hi = max(transform(y) for y in ys)
    if hi - lo < 1e-9:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    x_positions = {
        x: int(round(i * (width - 1) / max(len(xs) - 1, 1)))
        for i, x in enumerate(xs)
    }

    def y_row(y: float) -> int:
        frac = (transform(y) - lo) / (hi - lo)
        return (height - 1) - int(round(frac * (height - 1)))

    fallback = iter(FALLBACK_MARKERS)
    for name, values in series.items():
        marker = MARKERS.get(name) or next(fallback)
        for x, y in values:
            col = x_positions[x]
            row = y_row(y)
            current = grid[row][col]
            grid[row][col] = "#" if current not in (" ", marker) else marker

    # Y-axis labels at top, middle, bottom (in original units).
    def untransform(v: float) -> float:
        return 10 ** v if log_y else v

    labels = {
        0: untransform(hi),
        height // 2: untransform((hi + lo) / 2),
        height - 1: untransform(lo),
    }
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = labels.get(i)
        prefix = (
            f"{label:>9.3g} |" if label is not None else f"{'':>9} |"
        )
        lines.append(prefix + "".join(row))
    lines.append(f"{'':>9} +" + "-" * width)
    tick_line = [" "] * (width + 11)
    for x, col in x_positions.items():
        text = _format_x(x)
        start = min(col + 11, width + 11 - len(text))
        for offset, char in enumerate(text):
            tick_line[start + offset] = char
    lines.append("".join(tick_line).rstrip())
    legend = "  ".join(
        f"{MARKERS.get(name, '?')} {name}" for name in series
    )
    lines.append(f"{'':>11}{legend}"
                 + (f"   [{y_label}, log scale]" if log_y else ""))
    return "\n".join(lines)


def plot_rows(
    rows: Iterable[Row],
    metric: str = "time",
    width: int = 64,
    height: int = 14,
) -> str:
    """One ASCII chart per (venue, setting, parameter) group."""
    if metric not in ("time", "memory"):
        raise ValueError(f"unknown metric {metric!r}")
    grouped = group_rows(rows)
    panels: Dict[Tuple[str, str, str], Dict[str, List[Tuple[float, float]]]]
    panels = {}
    for key, by_algorithm in grouped.items():
        _experiment, venue, setting, parameter, value = key
        panel = panels.setdefault((venue, setting, parameter), {})
        for algorithm, row in by_algorithm.items():
            y = row.time_seconds if metric == "time" else row.memory_mb
            panel.setdefault(algorithm, []).append((value, y))
    charts = []
    unit = "seconds" if metric == "time" else "MB"
    for (venue, setting, parameter), series in panels.items():
        charts.append(
            ascii_chart(
                series,
                title=f"{venue} ({setting}) — {metric} vs {parameter}",
                width=width,
                height=height,
                y_label=unit,
            )
        )
    return "\n\n".join(charts)
