"""Benchmark harness regenerating the paper's evaluation."""

from .experiments import (
    ABLATION_VARIANTS,
    CLIENT_SIZES,
    DEFAULT_CLIENTS,
    DEFAULT_SIGMA,
    FE_RANGES,
    FN_RANGES,
    SCALES,
    SIGMAS,
    EngineCache,
    Row,
    Scale,
    ablations,
    current_scale,
    default_fe,
    default_fn,
    extensions,
    fig5,
    fig6,
    fig78,
)
from .counters import CounterRow, format_counters, measure_counters
from .measure import Measurement, compare, measure_query, timed
from .plots import ascii_chart, plot_rows
from .reporting import format_series, read_csv, summarize_speedups, write_csv
from .runner import ALL_EXPERIMENTS, run_all, run_experiment
from .tables import format_table1, format_table2, table1_rows
from .validate import ValidationReport, validate_reproduction

__all__ = [
    "ABLATION_VARIANTS",
    "ALL_EXPERIMENTS",
    "CLIENT_SIZES",
    "DEFAULT_CLIENTS",
    "DEFAULT_SIGMA",
    "EngineCache",
    "FE_RANGES",
    "FN_RANGES",
    "Measurement",
    "Row",
    "SCALES",
    "SIGMAS",
    "Scale",
    "ablations",
    "compare",
    "CounterRow",
    "format_counters",
    "measure_counters",
    "current_scale",
    "default_fe",
    "default_fn",
    "extensions",
    "fig5",
    "fig6",
    "fig78",
    "ascii_chart",
    "format_series",
    "plot_rows",
    "read_csv",
    "format_table1",
    "format_table2",
    "measure_query",
    "run_all",
    "run_experiment",
    "summarize_speedups",
    "table1_rows",
    "timed",
    "ValidationReport",
    "validate_reproduction",
    "write_csv",
]
