"""Procedural indoor venue generation.

The paper evaluates on four real venues (Melbourne Central, Chadstone,
Copenhagen Airport, Menzies Building) whose floor plans are proprietary.
This module generates corridor/room buildings that reproduce each
venue's *published statistics* — number of levels, rooms, and doors —
which is what the IFLS algorithms actually observe (see DESIGN.md,
"Substitutions").

Layout model
------------
Each level consists of one or more corridor *chains* with rooms
attached:

* ``stack`` layout — corridor chains are horizontal strips stacked on
  top of each other (sharing walls), with a room row below the bottom
  chain and above the top one; used for the multi-level venues;
* ``chain`` layout — halls placed side by side (an airport concourse),
  each with room rows above and below; used for Copenhagen Airport.

A corridor chain is split into ``segments_per_corridor`` corridor
partitions connected by doors, as in real floor plans; segmentation
keeps VIP-tree leaves local (a segment plus its rooms) instead of
funnelling hundreds of rooms through a single corridor partition.

Levels are connected by *portal* doors: a door shared by corridor
segments of two consecutive levels (a zero-length stair abstraction).
A configurable number of rooms receive a second door, and exterior
doors are attached to the ground floor.

Counts are exact and asserted after generation:

* ``partitions = rooms + levels * chains * segments``
* ``doors = rooms + double_door_rooms + segment_links
  + corridor_links + vertical_links + exterior_doors``

The venue specs in :mod:`repro.datasets.venues` solve these equations
for the paper's published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import VenueError
from ..indoor.builder import VenueBuilder
from ..indoor.entities import PartitionId
from ..indoor.geometry import Point, Rect
from ..indoor.venue import IndoorVenue

STACK = "stack"
CHAIN = "chain"


@dataclass(frozen=True)
class BuildingSpec:
    """Parameters of a generated building.

    ``rooms`` is the *total* room count across all levels; rooms are
    spread as evenly as possible over levels and corridor sides.
    """

    name: str
    levels: int
    corridors_per_level: int
    rooms: int
    layout: str = STACK
    segments_per_corridor: int = 1
    corridor_links_per_level: int = 0
    vertical_links_per_gap: int = 1
    double_door_rooms: int = 0
    exterior_doors: int = 2
    width: float = 200.0
    room_depth: float = 8.0
    corridor_depth: float = 4.0

    def __post_init__(self) -> None:
        if self.layout not in (STACK, CHAIN):
            raise VenueError(f"unknown layout {self.layout!r}")
        if self.levels < 1 or self.corridors_per_level < 1:
            raise VenueError("levels and corridors_per_level must be >= 1")
        if self.segments_per_corridor < 1:
            raise VenueError("segments_per_corridor must be >= 1")
        if self.layout == CHAIN and self.levels != 1:
            raise VenueError("chain layout is single-level")
        if self.layout == CHAIN and self.segments_per_corridor != 1:
            raise VenueError("chain halls are not segmented")
        if self.rooms < self.levels * self.corridors_per_level:
            raise VenueError("too few rooms for the requested corridors")
        if self.double_door_rooms > self.rooms:
            raise VenueError("more double-door rooms than rooms")
        if (
            self.layout == STACK
            and self.corridors_per_level > 1
            and self.corridor_links_per_level < 1
        ):
            raise VenueError(
                "stacked corridors need corridor_links_per_level >= 1 "
                "to stay connected"
            )

    @property
    def expected_partitions(self) -> int:
        """Partition count the generated venue will have."""
        corridors = (
            self.levels
            * self.corridors_per_level
            * self.segments_per_corridor
        )
        return self.rooms + corridors

    @property
    def expected_doors(self) -> int:
        """Door count the generated venue will have."""
        segment_links = (
            self.levels
            * self.corridors_per_level
            * (self.segments_per_corridor - 1)
        )
        vertical = (self.levels - 1) * self.vertical_links_per_gap
        links = self.levels * self.corridor_links_per_level
        if self.layout == CHAIN:
            links = self.corridor_links_per_level
        return (
            self.rooms
            + self.double_door_rooms
            + segment_links
            + links
            + vertical
            + self.exterior_doors
        )


def grid_venue(
    rows: int,
    columns: int,
    cell: float = 5.0,
    name: str = "grid",
) -> IndoorVenue:
    """A rows x columns lattice of rooms with doors between neighbours.

    Unlike the corridor buildings, the door graph here is heavily
    *cyclic* (many alternative shortest paths), which stresses the
    VIP-tree's access-door decomposition; used by the property tests.
    """
    if rows < 1 or columns < 1:
        raise VenueError("grid needs at least one row and column")
    if rows * columns < 2:
        raise VenueError("grid needs at least two rooms")
    builder = VenueBuilder(name)
    ids = [
        [
            builder.add_room(
                Rect(c * cell, r * cell, (c + 1) * cell,
                     (r + 1) * cell),
                name=f"cell-{r}-{c}",
            )
            for c in range(columns)
        ]
        for r in range(rows)
    ]
    for r in range(rows):
        for c in range(columns):
            if c + 1 < columns:
                builder.add_door(
                    Point((c + 1) * cell, r * cell + cell / 2, 0),
                    ids[r][c],
                    ids[r][c + 1],
                )
            if r + 1 < rows:
                builder.add_door(
                    Point(c * cell + cell / 2, (r + 1) * cell, 0),
                    ids[r][c],
                    ids[r + 1][c],
                )
    return builder.build()


def _spread(total: int, bins: int) -> List[int]:
    """Distribute ``total`` items over ``bins`` as evenly as possible."""
    base, extra = divmod(total, bins)
    return [base + (1 if i < extra else 0) for i in range(bins)]


def generate_building(spec: BuildingSpec) -> IndoorVenue:
    """Generate the venue described by ``spec`` (deterministic)."""
    builder = VenueBuilder(spec.name)
    rooms_per_level = _spread(spec.rooms, spec.levels)
    double_doors_left = spec.double_door_rooms
    chains_by_level: List[List[List[PartitionId]]] = []

    for level in range(spec.levels):
        if spec.layout == STACK:
            chains, extra = _build_stack_level(
                builder, spec, level, rooms_per_level[level],
                double_doors_left,
            )
        else:
            chains, extra = _build_chain_level(
                builder, spec, level, rooms_per_level[level],
                double_doors_left,
            )
        double_doors_left -= extra
        chains_by_level.append(chains)

    _link_levels(builder, spec, chains_by_level)
    _add_exterior_doors(builder, spec, chains_by_level[0])
    venue = builder.build()
    if venue.partition_count != spec.expected_partitions:
        raise VenueError(
            f"{spec.name}: generated {venue.partition_count} partitions, "
            f"expected {spec.expected_partitions}"
        )
    if venue.door_count != spec.expected_doors:
        raise VenueError(
            f"{spec.name}: generated {venue.door_count} doors, "
            f"expected {spec.expected_doors}"
        )
    return venue


def _segment_index(spec: BuildingSpec, x: float) -> int:
    """Which corridor segment covers planar coordinate ``x``."""
    width_each = spec.width / spec.segments_per_corridor
    index = int(x / width_each)
    return min(max(index, 0), spec.segments_per_corridor - 1)


def _build_corridor_chain(
    builder: VenueBuilder,
    spec: BuildingSpec,
    level: int,
    chain_index: int,
    y0: float,
) -> List[PartitionId]:
    """One segmented corridor strip; segments joined by doors."""
    segment_width = spec.width / spec.segments_per_corridor
    y1 = y0 + spec.corridor_depth
    pids: List[PartitionId] = []
    for k in range(spec.segments_per_corridor):
        rect = Rect(k * segment_width, y0, (k + 1) * segment_width, y1,
                    level)
        pid = builder.add_corridor(
            rect, name=f"corridor-L{level}-{chain_index}-{k}"
        )
        if pids:
            builder.add_door(
                Point(k * segment_width, (y0 + y1) / 2.0, level),
                pids[-1],
                pid,
            )
        pids.append(pid)
    return pids


def _build_stack_level(
    builder: VenueBuilder,
    spec: BuildingSpec,
    level: int,
    room_count: int,
    double_doors_left: int,
):
    """Corridor chains stacked in y; one room row per outer side."""
    c = spec.corridors_per_level
    y = spec.room_depth
    chains: List[List[PartitionId]] = []
    for j in range(c):
        chains.append(
            _build_corridor_chain(builder, spec, level, j, y)
        )
        y += spec.corridor_depth

    # Doors between stacked chains (they share walls).
    for j in range(spec.corridor_links_per_level):
        if c < 2:
            raise VenueError(
                f"{spec.name}: corridor links require >= 2 corridors"
            )
        pair = j % (c - 1)
        x = spec.width * (0.25 + 0.5 * (j % 2))
        y_shared = spec.room_depth + spec.corridor_depth * (pair + 1)
        builder.add_door(
            Point(x, y_shared, level),
            chains[pair][_segment_index(spec, x)],
            chains[pair + 1][_segment_index(spec, x)],
        )

    # Room rows: below the bottom chain and above the top chain.
    used_doubles = 0
    sides = _spread(room_count, 2)
    top_y = spec.room_depth + c * spec.corridor_depth
    for side, count in enumerate(sides):
        if count == 0:
            continue
        width_each = spec.width / count
        for i in range(count):
            x0 = i * width_each
            if side == 0:
                rect = Rect(x0, 0.0, x0 + width_each, spec.room_depth,
                            level)
                chain = chains[0]
                door_y = spec.room_depth
            else:
                rect = Rect(x0, top_y, x0 + width_each,
                            top_y + spec.room_depth, level)
                chain = chains[-1]
                door_y = top_y
            room = builder.add_room(rect, name=f"room-L{level}-{side}-{i}")
            door_x = x0 + width_each / 2.0
            builder.add_door(
                Point(door_x, door_y, level),
                room,
                chain[_segment_index(spec, door_x)],
            )
            if used_doubles < double_doors_left:
                second_x = x0 + width_each / 4.0
                builder.add_door(
                    Point(second_x, door_y, level),
                    room,
                    chain[_segment_index(spec, second_x)],
                )
                used_doubles += 1
    return chains, used_doubles


def _build_chain_level(
    builder: VenueBuilder,
    spec: BuildingSpec,
    level: int,
    room_count: int,
    double_doors_left: int,
):
    """Halls side by side in x, room rows above and below each hall."""
    c = spec.corridors_per_level
    hall_width = spec.width / c
    hall_ids: List[PartitionId] = []
    for j in range(c):
        rect = Rect(
            j * hall_width,
            spec.room_depth,
            (j + 1) * hall_width,
            spec.room_depth + spec.corridor_depth,
            level,
        )
        hall_ids.append(builder.add_hall(rect, name=f"hall-L{level}-{j}"))
    for j in range(min(spec.corridor_links_per_level, c - 1)):
        x = (j + 1) * hall_width
        y = spec.room_depth + spec.corridor_depth / 2.0
        builder.add_door(Point(x, y, level), hall_ids[j], hall_ids[j + 1])

    rooms_made = 0
    used_doubles = 0
    per_hall = _spread(room_count, c)
    top_y = spec.room_depth + spec.corridor_depth
    for j, count in enumerate(per_hall):
        if count == 0:
            continue
        sides = _spread(count, 2)
        for side, side_count in enumerate(sides):
            if side_count == 0:
                continue
            width_each = hall_width / side_count
            for i in range(side_count):
                x0 = j * hall_width + i * width_each
                if side == 0:
                    rect = Rect(x0, 0.0, x0 + width_each,
                                spec.room_depth, level)
                    door_y = spec.room_depth
                else:
                    rect = Rect(x0, top_y, x0 + width_each,
                                top_y + spec.room_depth, level)
                    door_y = top_y
                room = builder.add_room(
                    rect, name=f"room-L{level}-H{j}-{side}-{i}"
                )
                door_x = x0 + width_each / 2.0
                builder.add_door(
                    Point(door_x, door_y, level), room, hall_ids[j]
                )
                if used_doubles < double_doors_left:
                    builder.add_door(
                        Point(x0 + width_each / 4.0, door_y, level),
                        room,
                        hall_ids[j],
                    )
                    used_doubles += 1
                rooms_made += 1
    # One single-segment "chain" per hall, for the shared linking code.
    return [[pid] for pid in hall_ids], used_doubles


def _link_levels(
    builder: VenueBuilder,
    spec: BuildingSpec,
    chains_by_level: List[List[List[PartitionId]]],
) -> None:
    """Portal doors between matching chains on consecutive levels."""
    c = spec.corridors_per_level
    for level in range(spec.levels - 1):
        lower = chains_by_level[level]
        upper = chains_by_level[level + 1]
        for j in range(spec.vertical_links_per_gap):
            chain_index = j % c
            rank = j // c
            frac = (rank + 1) / (spec.vertical_links_per_gap // c + 2)
            x = spec.width * frac
            y = (
                spec.room_depth
                + spec.corridor_depth * (chain_index + 0.5)
            )
            segment = _segment_index(spec, x)
            builder.add_door(
                Point(x, y, level),
                lower[chain_index][segment],
                upper[chain_index][segment],
                name=f"stair-L{level}-{j}",
            )


def _add_exterior_doors(
    builder: VenueBuilder,
    spec: BuildingSpec,
    ground_chains: List[List[PartitionId]],
) -> None:
    """Entrances on the ground floor, spread over the bottom chain."""
    if not spec.exterior_doors:
        return
    bottom = ground_chains[0]
    per_segment = [0] * len(bottom)
    for j in range(spec.exterior_doors):
        per_segment[j % len(bottom)] += 1
    placed = 0
    for index, corridor in enumerate(bottom):
        rect = builder._partition(corridor).rect
        for k in range(per_segment[index]):
            x = rect.min_x + rect.width * (k + 1) / (
                per_segment[index] + 1
            )
            builder.add_door(
                Point(x, rect.min_y, 0),
                corridor,
                None,
                name=f"entrance-{placed}",
            )
            placed += 1
