"""Client and facility workload generation (paper Section 6.1.2).

Clients are generated with either a **uniform** distribution (partition
chosen with probability proportional to its floor area, point uniform
inside) or a **normal** distribution with standard deviation ``sigma``
around the venue centre — the paper's σ ∈ {0.125, 0.25, 0.5, 1, 2}
controls how strongly clients cluster at the central area.  σ is
interpreted as a fraction of half the venue extent, so σ = 2 is close
to uniform and σ = 0.125 is a tight central cluster; sampled points are
snapped to the nearest room partition on their level.

Facilities (existing and candidate) in the synthetic setting are
partitions drawn uniformly at random from the facility-eligible
(room) partitions, without replacement and mutually disjoint.
"""

from __future__ import annotations


import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..indoor.entities import (
    Client,
    FacilitySets,
    Partition,
    PartitionId,
    PartitionKind,
)
from ..indoor.geometry import Point
from ..indoor.venue import IndoorVenue
from .venues import room_partitions


def _client_partitions(venue: IndoorVenue) -> List[Partition]:
    """Partitions clients may occupy: rooms and halls (not corridors,
    which model pure circulation space, and not staircases)."""
    eligible = [
        p
        for p in venue.partitions()
        if p.kind in (PartitionKind.ROOM, PartitionKind.HALL)
    ]
    if not eligible:
        raise QueryError(f"venue {venue.name} has no client partitions")
    return eligible


def uniform_clients(
    venue: IndoorVenue,
    count: int,
    rng: random.Random,
    start_id: int = 0,
) -> List[Client]:
    """``count`` clients uniformly distributed over the venue's rooms."""
    partitions = _client_partitions(venue)
    weights = [p.rect.area for p in partitions]
    chosen = rng.choices(partitions, weights=weights, k=count)
    clients = []
    for offset, partition in enumerate(chosen):
        rect = partition.rect
        point = Point(
            rng.uniform(rect.min_x, rect.max_x),
            rng.uniform(rect.min_y, rect.max_y),
            rect.level,
        )
        clients.append(
            Client(start_id + offset, point, partition.partition_id)
        )
    return clients


def normal_clients(
    venue: IndoorVenue,
    count: int,
    sigma: float,
    rng: random.Random,
    start_id: int = 0,
) -> List[Client]:
    """``count`` clients clustered around the venue centre.

    Points are sampled from N(centre, (sigma * extent/2)^2) per axis
    (levels from a matching discrete normal over floors) and snapped to
    the nearest eligible partition on the sampled level.
    """
    if sigma <= 0:
        raise QueryError("sigma must be positive")
    partitions = _client_partitions(venue)
    by_level: Dict[int, List[Partition]] = {}
    for partition in partitions:
        by_level.setdefault(partition.level, []).append(partition)
    levels = sorted(by_level)
    locators = {
        level: _LevelLocator(parts) for level, parts in by_level.items()
    }
    bounds = venue.bounding_rect()
    centre = bounds.center
    scale_x = sigma * bounds.width / 2.0
    scale_y = sigma * bounds.height / 2.0
    mid_level = (levels[0] + levels[-1]) / 2.0
    scale_level = max(sigma * len(levels) / 2.0, 1e-9)

    clients = []
    for offset in range(count):
        raw_level = rng.gauss(mid_level, scale_level)
        level = min(levels, key=lambda lv: abs(lv - raw_level))
        x = rng.gauss(centre.x, scale_x)
        y = rng.gauss(centre.y, scale_y)
        point = Point(x, y, level)
        partition = locators[level].snap(point)
        rect = partition.rect
        snapped = rect.clamp(point)
        # Interior jitter so clients in the same partition do not pile
        # up on the boundary pixel-for-pixel.
        snapped = Point(
            min(max(snapped.x, rect.min_x), rect.max_x),
            min(max(snapped.y, rect.min_y), rect.max_y),
            level,
        )
        clients.append(
            Client(start_id + offset, snapped, partition.partition_id)
        )
    return clients


class _LevelLocator:
    """R-tree-backed snap of a planar point onto one level's partitions
    (containment first, nearest footprint otherwise)."""

    def __init__(self, partitions: Sequence[Partition]) -> None:
        from ..index.rtree import RTree

        self._by_id = {p.partition_id: p for p in partitions}
        self._tree: "RTree[int]" = RTree()
        for partition in partitions:
            self._tree.insert(partition.rect, partition.partition_id)

    def snap(self, point: Point) -> Partition:
        hits = [
            (rect.area, pid)
            for rect, pid in self._tree.query_point(point)
        ]
        if hits:
            return self._by_id[min(hits)[1]]
        found = self._tree.nearest(point)
        assert found is not None
        return self._by_id[found[1]]


def random_facility_sets(
    venue: IndoorVenue,
    existing_count: int,
    candidate_count: int,
    rng: random.Random,
    eligible: Optional[Iterable[PartitionId]] = None,
) -> FacilitySets:
    """Disjoint uniform-random existing and candidate partition sets."""
    pool = (
        list(eligible) if eligible is not None else room_partitions(venue)
    )
    needed = existing_count + candidate_count
    if needed > len(pool):
        raise QueryError(
            f"venue {venue.name} has only {len(pool)} facility-eligible "
            f"partitions; requested {needed}"
        )
    sample = rng.sample(pool, needed)
    return FacilitySets(
        existing=frozenset(sample[:existing_count]),
        candidates=frozenset(sample[existing_count:]),
    )


def workload(
    venue: IndoorVenue,
    client_count: int,
    existing_count: int,
    candidate_count: int,
    seed: int = 0,
    distribution: str = "uniform",
    sigma: float = 1.0,
) -> Tuple[List[Client], FacilitySets]:
    """One synthetic-setting workload (clients + facility sets)."""
    rng = random.Random(seed)
    facilities = random_facility_sets(
        venue, existing_count, candidate_count, rng
    )
    if distribution == "uniform":
        clients = uniform_clients(venue, client_count, rng)
    elif distribution == "normal":
        clients = normal_clients(venue, client_count, sigma, rng)
    else:
        raise QueryError(f"unknown distribution {distribution!r}")
    return clients, facilities
