"""The running example of the paper (Figure 1).

A 22-partition, single-level venue with three wings — the structure the
paper's Figure 1 and its VIP-tree (Figure 2) describe: wing 1 holds
partitions p1–p6 around corridor p4, wing 2 holds p7–p13 around the
central corridor p7, and wing 3 holds p14–p22 around corridor p22; door
``d4`` connects p4 to p7 and door ``d7`` connects p7 to p22.  Four
existing coffee facilities (e1–e4) and thirteen candidate locations
(n1–n13) are placed in the rooms, and 60 clients populate the venue.

The original floor-plan geometry is not published, so coordinates are
our own; the example preserves the paper's structural facts: three
VIP-tree leaves (one per wing), clients located inside existing
facilities are pruned at distance zero, and the query answer is the
candidate ``n5`` in partition ``p10``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..indoor.builder import VenueBuilder
from ..indoor.entities import Client, PartitionId
from ..indoor.geometry import Point, Rect
from ..indoor.venue import IndoorVenue

#: Paper-style names of the existing facilities (partition labels).
EXISTING_NAMES = ("e1", "e2", "e3", "e4")
#: Paper-style names of the candidate locations.
CANDIDATE_NAMES = tuple(f"n{i}" for i in range(1, 14))

#: The worked example's answer: candidate n5, located in partition p10.
EXPECTED_ANSWER_NAME = "n5"


def figure1_venue(
    client_count: int = 60, seed: int = 42
) -> Tuple[
    IndoorVenue,
    frozenset,
    frozenset,
    List[Client],
    Dict[str, PartitionId],
]:
    """Build the Figure-1 example.

    Returns ``(venue, existing, candidates, clients, names)`` where
    ``names`` maps paper labels (``"p1"``…``"p22"``, ``"e1"``…``"e4"``,
    ``"n1"``…``"n13"``) to partition ids.
    """
    builder = VenueBuilder("figure-1")
    names: Dict[str, PartitionId] = {}

    def room(label: str, rect: Rect) -> PartitionId:
        pid = builder.add_room(rect, name=label)
        names[label] = pid
        return pid

    def corridor(label: str, rect: Rect) -> PartitionId:
        pid = builder.add_corridor(rect, name=label)
        names[label] = pid
        return pid

    # Wing 1: rooms p1, p2, p3 above corridor p4; p5, p6 below.
    p1 = room("p1", Rect(0, 14, 10, 22))
    p2 = room("p2", Rect(10, 14, 20, 22))
    p3 = room("p3", Rect(20, 14, 30, 22))
    p4 = corridor("p4", Rect(0, 10, 30, 14))
    p5 = room("p5", Rect(0, 0, 15, 10))
    p6 = room("p6", Rect(15, 0, 30, 10))

    # Wing 2: central corridor p7 with rooms p8-p10 above, p11-p13 below.
    p7 = corridor("p7", Rect(30, 10, 70, 14))
    p8 = room("p8", Rect(30, 14, 40, 22))
    p9 = room("p9", Rect(40, 14, 50, 22))
    p10 = room("p10", Rect(50, 14, 60, 22))
    p11 = room("p11", Rect(30, 0, 43, 10))
    p12 = room("p12", Rect(43, 0, 56, 10))
    p13 = room("p13", Rect(56, 0, 70, 10))

    # Wing 3: rooms p14-p16 above corridor p22; p17-p21 below.
    p14 = room("p14", Rect(70, 14, 80, 22))
    p15 = room("p15", Rect(80, 14, 90, 22))
    p16 = room("p16", Rect(90, 14, 100, 22))
    p17 = room("p17", Rect(70, 0, 77, 10))
    p18 = room("p18", Rect(77, 0, 84, 10))
    p19 = room("p19", Rect(84, 0, 91, 10))
    p20 = room("p20", Rect(91, 0, 100, 10))
    p21 = room("p21", Rect(60, 14, 70, 22))
    p22 = corridor("p22", Rect(70, 10, 100, 14))

    # Room doors onto the wing corridors.
    for pid, x, y in (
        (p1, 5, 14), (p2, 15, 14), (p3, 25, 14),
        (p5, 7.5, 10), (p6, 22.5, 10),
    ):
        builder.add_door(Point(x, y, 0), pid, p4)
    for pid, x, y in (
        (p8, 35, 14), (p9, 45, 14), (p10, 55, 14),
        (p11, 36.5, 10), (p12, 49.5, 10), (p13, 63, 10),
        (p21, 65, 14),
    ):
        builder.add_door(Point(x, y, 0), pid, p7)
    for pid, x, y in (
        (p14, 75, 14), (p15, 85, 14), (p16, 95, 14),
        (p17, 73.5, 10), (p18, 80.5, 10), (p19, 87.5, 10),
        (p20, 95.5, 10),
    ):
        builder.add_door(Point(x, y, 0), pid, p22)

    # Corridor-to-corridor doors: d4 (p4-p7) and d7 (p7-p22).
    builder.add_door(Point(30, 12, 0), p4, p7, name="d4")
    builder.add_door(Point(70, 12, 0), p7, p22, name="d7")

    venue = builder.build()

    existing_partitions = (p2, p6, p15, p20)
    candidate_partitions = (
        p1, p3, p5, p9, p10, p11, p12, p13, p14, p16, p17, p18, p19
    )
    for label, pid in zip(EXISTING_NAMES, existing_partitions):
        names[label] = pid
    for label, pid in zip(CANDIDATE_NAMES, candidate_partitions):
        names[label] = pid

    clients = _figure1_clients(
        venue, existing_partitions, client_count, seed
    )
    return (
        venue,
        frozenset(existing_partitions),
        frozenset(candidate_partitions),
        clients,
        names,
    )


def _figure1_clients(
    venue: IndoorVenue,
    existing_partitions: Tuple[PartitionId, ...],
    client_count: int,
    seed: int,
) -> List[Client]:
    """60 deterministic clients; six of them inside existing facilities
    (the paper's c1, c17, c18, c52, c58, c59 are pruned at distance 0)."""
    rng = random.Random(seed)
    rooms = [
        p
        for p in venue.partitions()
        if p.kind.value == "room" and p.partition_id not in
        existing_partitions
    ]
    clients: List[Client] = []
    inside = min(6, client_count)
    for i in range(inside):
        partition = venue.partition(existing_partitions[i % 4])
        rect = partition.rect
        clients.append(
            Client(
                i,
                Point(
                    rng.uniform(rect.min_x, rect.max_x),
                    rng.uniform(rect.min_y, rect.max_y),
                    0,
                ),
                partition.partition_id,
            )
        )
    for i in range(inside, client_count):
        partition = rng.choice(rooms)
        rect = partition.rect
        clients.append(
            Client(
                i,
                Point(
                    rng.uniform(rect.min_x, rect.max_x),
                    rng.uniform(rect.min_y, rect.max_y),
                    0,
                ),
                partition.partition_id,
            )
        )
    return clients
