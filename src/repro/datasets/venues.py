"""The paper's four evaluation venues (Section 6.1.1), generated to the
published statistics:

* **Melbourne Central (MC)** — 7 levels, 298 partitions, 299 doors;
* **Chadstone (CH)** — 4 levels, 679 partitions, 678 doors;
* **Copenhagen Airport (CPH)** — ground floor, 2000 m x 600 m,
  76 partitions, 118 doors;
* **Menzies Building (MZB)** — 16 levels, 1344 partitions, 1375 doors.

Each factory is deterministic; venue construction is cheap, but VIP-tree
building is not, so the benchmark harness caches engines per venue.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..indoor.entities import PartitionKind
from ..indoor.venue import IndoorVenue
from .generators import CHAIN, STACK, BuildingSpec, generate_building

MC = "MC"
CH = "CH"
CPH = "CPH"
MZB = "MZB"

VENUE_NAMES = (MC, CH, CPH, MZB)

_SPECS: Dict[str, BuildingSpec] = {
    # 291 rooms + 7 corridors = 298 partitions;
    # 291 room doors + 6 stairs + 2 entrances = 299 doors.
    MC: BuildingSpec(
        name="melbourne-central",
        levels=7,
        corridors_per_level=1,
        rooms=291,
        layout=STACK,
        corridor_links_per_level=0,
        vertical_links_per_gap=1,
        double_door_rooms=0,
        exterior_doors=2,
        width=220.0,
    ),
    # 651 rooms + 4 levels x 7 corridor segments = 679 partitions;
    # 651 room doors + 24 segment links + 3 stairs + 0 entrances
    # = 678 doors.  (>= 651 rooms so the Table-2 maximum |Fe| + |Fn|
    # of 100 + 500 fits among facility-eligible partitions.)
    CH: BuildingSpec(
        name="chadstone",
        levels=4,
        corridors_per_level=1,
        rooms=651,
        layout=STACK,
        segments_per_corridor=7,
        corridor_links_per_level=0,
        vertical_links_per_gap=1,
        double_door_rooms=0,
        exterior_doors=0,
        width=500.0,
    ),
    # 72 rooms + 4 halls = 76 partitions; 72 room doors + 35 second
    # doors + 3 hall links + 8 entrances = 118 doors.
    CPH: BuildingSpec(
        name="copenhagen-airport",
        levels=1,
        corridors_per_level=4,
        rooms=72,
        layout=CHAIN,
        corridor_links_per_level=3,
        double_door_rooms=35,
        exterior_doors=8,
        width=2000.0,
        room_depth=250.0,
        corridor_depth=100.0,
    ),
    # 1184 rooms + 32 chains x 5 segments = 1344 partitions; 1184 room
    # doors + 15 second doors + 128 segment links + 16 corridor links +
    # 30 stairs + 2 entrances = 1375 doors.
    MZB: BuildingSpec(
        name="menzies-building",
        levels=16,
        corridors_per_level=2,
        rooms=1184,
        layout=STACK,
        segments_per_corridor=5,
        corridor_links_per_level=1,
        vertical_links_per_gap=2,
        double_door_rooms=15,
        exterior_doors=2,
        width=120.0,
    ),
}

#: Paper statistics (rooms incl. corridors/halls, doors) per venue.
EXPECTED_STATS = {
    MC: (298, 299),
    CH: (679, 678),
    CPH: (76, 118),
    MZB: (1344, 1375),
}


def melbourne_central() -> IndoorVenue:
    """Melbourne Central: 7 levels, 298 partitions, 299 doors."""
    return generate_building(_SPECS[MC])


def chadstone() -> IndoorVenue:
    """Chadstone: 4 levels, 679 partitions, 678 doors."""
    return generate_building(_SPECS[CH])


def copenhagen_airport() -> IndoorVenue:
    """Copenhagen Airport ground floor: 76 partitions, 118 doors."""
    return generate_building(_SPECS[CPH])


def menzies_building() -> IndoorVenue:
    """Menzies Building: 16 levels, 1344 partitions, 1375 doors."""
    return generate_building(_SPECS[MZB])


_FACTORIES: Dict[str, Callable[[], IndoorVenue]] = {
    MC: melbourne_central,
    CH: chadstone,
    CPH: copenhagen_airport,
    MZB: menzies_building,
}


def venue_by_name(name: str) -> IndoorVenue:
    """Build one of the four paper venues by short name (MC/CH/CPH/MZB)."""
    try:
        factory = _FACTORIES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown venue {name!r}; choose from {VENUE_NAMES}"
        ) from None
    return factory()


def small_office(levels: int = 2, rooms: int = 24) -> IndoorVenue:
    """A small office building for tests and examples (fast to index)."""
    spec = BuildingSpec(
        name="small-office",
        levels=levels,
        corridors_per_level=1,
        rooms=rooms,
        layout=STACK,
        vertical_links_per_gap=1,
        exterior_doors=1,
        width=60.0,
    )
    return generate_building(spec)


def room_partitions(venue: IndoorVenue) -> List[int]:
    """Ids of room partitions (facility-eligible), sorted."""
    return sorted(
        p.partition_id
        for p in venue.partitions()
        if p.kind is PartitionKind.ROOM
    )
