"""Real-setting facility categories for Melbourne Central (Section 6.1).

The paper's real setting splits MC's 291 facility-eligible partitions
into service categories; a query uses one category's partitions as the
existing facilities ``Fe`` and *every other* eligible partition as the
candidate set ``Fn``:

=======================  =====  ======
category                 |Fe|   |Fn|
=======================  =====  ======
fashion & accessories     101    190
dining & entertainment     54    237
health & beauty            39    252
fresh food                 19    272
banks & services           14    277
=======================  =====  ======

The sixth "other" bucket (64 partitions) fills the 291-partition
universe so the |Fn| column matches the paper exactly.  Assignment of
rooms to categories is deterministic (seeded shuffle).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..errors import QueryError
from ..indoor.entities import FacilitySets, PartitionId
from ..indoor.venue import IndoorVenue
from .venues import room_partitions

FASHION = "fashion & accessories"
DINING = "dining & entertainment"
HEALTH = "health & beauty"
FRESH_FOOD = "fresh food"
BANKS = "banks & services"
OTHER = "other"

#: The paper's category sizes for Melbourne Central.
CATEGORY_SIZES: Tuple[Tuple[str, int], ...] = (
    (FASHION, 101),
    (DINING, 54),
    (HEALTH, 39),
    (FRESH_FOOD, 19),
    (BANKS, 14),
    (OTHER, 64),
)

#: Categories usable as the existing-facility set in the real setting.
QUERY_CATEGORIES = (FASHION, DINING, HEALTH, FRESH_FOOD, BANKS)

_UNIVERSE = sum(size for _name, size in CATEGORY_SIZES)


def assign_categories(
    venue: IndoorVenue, seed: int = 7
) -> Dict[str, List[PartitionId]]:
    """Deterministically assign rooms to the paper's categories.

    Requires at least 291 facility-eligible partitions (Melbourne
    Central has exactly 291 rooms).
    """
    rooms = room_partitions(venue)
    if len(rooms) < _UNIVERSE:
        raise QueryError(
            f"venue {venue.name} has {len(rooms)} rooms; the real "
            f"setting needs at least {_UNIVERSE}"
        )
    shuffled = list(rooms)
    random.Random(seed).shuffle(shuffled)
    out: Dict[str, List[PartitionId]] = {}
    cursor = 0
    for name, size in CATEGORY_SIZES:
        out[name] = sorted(shuffled[cursor:cursor + size])
        cursor += size
    return out


def real_setting_facilities(
    venue: IndoorVenue, category: str, seed: int = 7
) -> FacilitySets:
    """Facility sets for one real-setting query category.

    ``Fe`` = the category's partitions; ``Fn`` = all other categorised
    partitions, reproducing the paper's (|Fe|, |Fn|) pairs.
    """
    assignment = assign_categories(venue, seed=seed)
    if category not in assignment:
        raise QueryError(
            f"unknown category {category!r}; choose from "
            f"{tuple(assignment)}"
        )
    existing = frozenset(assignment[category])
    candidates = frozenset(
        pid
        for name, pids in assignment.items()
        if name != category
        for pid in pids
    )
    return FacilitySets(existing=existing, candidates=candidates)
