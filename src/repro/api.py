"""The redesigned public facade: :func:`open_venue` and :class:`Engine`.

One call opens a venue for querying, whatever form the venue arrives
in, and every downstream consumer — library code, the ``ifls`` CLI, and
the HTTP query service — speaks the same
:class:`~repro.core.request.QueryRequest` /
:class:`~repro.core.request.QueryResponse` pair::

    import repro

    engine = repro.open_venue("CPH")          # or a venue.json path
    request = repro.QueryRequest(
        clients=clients,
        facilities=repro.FacilitySets(existing, candidates),
        objective="minmax",
    )
    response = engine.query(request)
    print(response.answer, response.objective_value)

The legacy spellings (:class:`~repro.core.queries.IFLSEngine`,
``EfficientOptions``, session/parallel keyword arguments) keep working
unchanged; :class:`Engine` additionally accepts the legacy
``query(clients, facilities, ...)`` signature through a
:class:`DeprecationWarning` shim.  The migration table lives in
``docs/API.md``.

Backends
--------
``open_venue(..., backend=...)`` records which distance index answers
for this engine.  ``"viptree"`` (default) is the only backend that
implements the full IFLS algorithm suite; ``"iptree"`` and
``"doortable"`` are door-to-door-only research backends (kept
request-level so experiments à la "An Experimental Analysis of Indoor
Spatial Queries" can swap them without touching call sites) — opening
one gives an engine whose :meth:`Engine.door_to_door` uses it, while
IFLS queries still require ``"viptree"`` and say so loudly.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Union

from .core.queries import IFLSEngine
from .core.request import QueryRequest, QueryResponse, warn_legacy_call
from .core.session import QuerySession
from .errors import QueryError, VenueError
from .indoor.entities import Client, FacilitySets
from .indoor.venue import IndoorVenue
from .index.snapshot import IndexSnapshot
from .obs import trace as _trace

#: Distance-index backends selectable at :func:`open_venue` time.
#: ``queries=True`` marks the backends able to answer IFLS queries.
BACKENDS: Dict[str, Dict[str, bool]] = {
    "viptree": {"queries": True},
    "iptree": {"queries": False},
    "doortable": {"queries": False},
}

VenueSource = Union[IndoorVenue, str, "os.PathLike[str]"]


def open_venue(
    source: VenueSource,
    *,
    backend: str = "viptree",
    use_kernels: Optional[bool] = None,
    leaf_capacity: int = 8,
    fanout: int = 4,
) -> "Engine":
    """Open a venue for IFLS querying and return its :class:`Engine`.

    ``source`` may be

    * an :class:`~repro.indoor.venue.IndoorVenue` instance,
    * a built-in venue name (``"MC"``, ``"CH"``, ``"CPH"``, ``"MZB"``,
      case-insensitive), or
    * a path to a venue JSON file written by
      :func:`repro.indoor.io.save_venue`.

    The VIP-tree is built once here; everything opened through the
    returned engine (sessions, pools, snapshots, the service) shares
    it read-only.  ``use_kernels=None`` follows numpy availability and
    ``IFLS_USE_KERNELS`` as everywhere else.
    """
    if backend not in BACKENDS:
        raise QueryError(
            f"unknown backend {backend!r}; choose one of "
            f"{sorted(BACKENDS)}"
        )
    venue = _resolve_venue(source)
    core = IFLSEngine(
        venue,
        leaf_capacity=leaf_capacity,
        fanout=fanout,
        use_kernels=use_kernels,
    )
    return Engine(core, backend=backend)


def _resolve_venue(source: VenueSource) -> IndoorVenue:
    """Turn any accepted venue source into an :class:`IndoorVenue`."""
    if isinstance(source, IndoorVenue):
        return source
    from .datasets.venues import VENUE_NAMES, venue_by_name

    text = os.fspath(source)
    if text.upper() in VENUE_NAMES:
        return venue_by_name(text)
    if os.path.exists(text):
        from .indoor.io import load_venue

        return load_venue(text)
    raise VenueError(
        f"unknown venue {text!r}: not a built-in name "
        f"({', '.join(VENUE_NAMES)}) and no such file"
    )


class Engine:
    """A venue opened for querying — the unified request-in/response-out
    facade over :class:`~repro.core.queries.IFLSEngine`.

    Construct through :func:`open_venue` (or wrap an existing core
    engine).  All answering methods consume
    :class:`~repro.core.request.QueryRequest` and produce
    :class:`~repro.core.request.QueryResponse`; the wrapped core engine
    stays available as :attr:`core` for code that wants raw
    :class:`~repro.core.result.IFLSResult` objects.
    """

    def __init__(self, core: IFLSEngine, backend: str = "viptree") -> None:
        if backend not in BACKENDS:
            raise QueryError(
                f"unknown backend {backend!r}; choose one of "
                f"{sorted(BACKENDS)}"
            )
        self.core = core
        self.backend = backend
        self._d2d_backends: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def venue(self) -> IndoorVenue:
        """The opened venue."""
        return self.core.venue

    @property
    def tree(self):
        """The shared VIP-tree."""
        return self.core.tree

    @property
    def use_kernels(self) -> bool:
        """Whether queries run on the array-kernel fast path."""
        return self.core.use_kernels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine(venue={self.venue.name!r}, "
            f"backend={self.backend!r}, "
            f"use_kernels={self.use_kernels})"
        )

    def _require_query_backend(self) -> None:
        if not BACKENDS[self.backend]["queries"]:
            raise QueryError(
                f"backend {self.backend!r} answers door-to-door "
                "distances only; open the venue with "
                "backend='viptree' for IFLS queries"
            )

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def query(self, request, *args, **kwargs) -> QueryResponse:
        """Answer one :class:`QueryRequest`.

        The legacy ``query(clients, facilities, objective=..., ...)``
        signature still works through a :class:`DeprecationWarning`
        shim that converts the arguments into a request first.

        A request arriving without a ``request_id`` gets one minted
        here (``q…``), so library callers are correlated in telemetry
        just like service traffic; the id is echoed on the response.
        """
        if not isinstance(request, QueryRequest):
            warn_legacy_call(
                "Engine.query(clients, facilities, ...)",
                "Engine.query(QueryRequest(...))",
            )
            request = QueryRequest.from_legacy(
                request, *args, **kwargs
            )
        elif args or kwargs:
            raise QueryError(
                "Engine.query(QueryRequest(...)) takes no further "
                "arguments"
            )
        self._require_query_backend()
        if not request.request_id:
            request = replace(
                request, request_id=_trace.next_request_id("q")
            )
        import time as _time

        before = self.core.distances.stats.snapshot()
        started = _time.perf_counter()
        result = self.core.query(
            request.clients,
            request.facilities,
            objective=request.objective,
            algorithm=request.algorithm,
            options=request.options(),
            measure_memory=request.measure_memory,
        )
        elapsed = _time.perf_counter() - started
        after = self.core.distances.stats.snapshot()
        delta = {
            key: value - before.get(key, 0)
            for key, value in after.items()
        }
        return QueryResponse.from_result(
            result,
            request,
            elapsed_seconds=elapsed,
            distance_delta=delta,
        )

    def run(
        self,
        requests: Sequence[QueryRequest],
        workers: int = 1,
        max_cache_entries: Optional[int] = None,
    ) -> List[QueryResponse]:
        """Answer a request batch on a fresh warm session.

        ``workers > 1`` shards across a process pool exactly like
        ``QuerySession.run``; responses always follow submission order
        and carry per-query distance deltas.
        """
        self._require_query_backend()
        session = self.core.session(
            max_cache_entries=max_cache_entries
        )
        results = session.run(list(requests), workers=workers)
        records = session.take_records()
        responses = []
        for index, (request, result) in enumerate(
            zip(requests, results)
        ):
            record = records[index] if index < len(records) else None
            responses.append(
                QueryResponse.from_result(
                    result,
                    request,
                    elapsed_seconds=(
                        record.elapsed_seconds if record else 0.0
                    ),
                    distance_delta=(
                        dict(record.distance_delta) if record else {}
                    ),
                    index=index,
                )
            )
        return responses

    def explain(self, request: QueryRequest, cold: bool = True):
        """Profile one request under the EXPLAIN profiler."""
        self._require_query_backend()
        return self.core.explain(
            request.clients,
            request.facilities,
            objective=request.objective,
            algorithm=request.algorithm,
            options=request.options(),
            label=request.label,
            cold=cold,
        )

    def stream(
        self,
        facilities: FacilitySets,
        *,
        incremental: bool = True,
        warm_session: bool = False,
        **kwargs,
    ):
        """Open a :class:`~repro.core.stream.ContinuousQuery`.

        The returned handle maintains the MinMax answer incrementally
        while :class:`~repro.core.stream.ClientEvent` records are
        applied; ``incremental=False`` is the from-scratch oracle that
        every event sequence is verified bit-identical against.
        ``warm_session=True`` routes the stream's solves through a
        dedicated warm :class:`QuerySession` (cross-event memo caches
        isolated from interactive queries on this engine).  Remaining
        keywords go to the :class:`ContinuousQuery` constructor.
        """
        from .core.stream import ContinuousQuery

        self._require_query_backend()
        session = self.core.session(keep_records=False) if (
            warm_session
        ) else None
        return ContinuousQuery(
            self.core,
            facilities,
            incremental=incremental,
            session=session,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Execution scopes
    # ------------------------------------------------------------------
    def session(self, **kwargs) -> QuerySession:
        """Open a warm batch session (see ``IFLSEngine.session``)."""
        return self.core.session(**kwargs)

    def snapshot(self) -> IndexSnapshot:
        """A read-only shareable image of this engine's venue + tree."""
        return IndexSnapshot.from_engine(self.core)

    def pool(self, **kwargs):
        """Open a warm :class:`~repro.service.pool.SessionPool`."""
        from .service.pool import SessionPool

        return SessionPool(self.snapshot(), **kwargs)

    def serve(self, **kwargs):
        """Build an :class:`~repro.service.server.IFLSService` over
        this engine (does not start it)."""
        from .service.server import IFLSService

        return IFLSService(self, **kwargs)

    # ------------------------------------------------------------------
    # Backend-parameterised distances
    # ------------------------------------------------------------------
    def door_to_door(
        self, a: int, b: int, backend: Optional[str] = None
    ) -> float:
        """Indoor door-to-door distance under a chosen backend.

        ``backend=None`` uses the engine's opening backend.  Alternate
        backends are built lazily on first use and cached; answers are
        identical across backends (they index the same graph), only
        build/lookup cost differs.
        """
        name = backend or self.backend
        if name == "viptree":
            return self.core.distances.door_to_door(a, b)
        if name not in BACKENDS:
            raise QueryError(
                f"unknown backend {name!r}; choose one of "
                f"{sorted(BACKENDS)}"
            )
        index = self._d2d_backends.get(name)
        if index is None:
            if name == "iptree":
                from .index.iptree import IPTreeDistanceIndex

                index = IPTreeDistanceIndex(self.core.tree)
            else:
                from .index.doortable import DoorTableIndex

                index = DoorTableIndex(
                    self.venue, graph=self.core.tree.graph
                )
            self._d2d_backends[name] = index
        return index.door_to_door(a, b)


def legacy_facilities(
    existing: Sequence[int], candidates: Sequence[int]
) -> FacilitySets:
    """Small helper mirroring the wire format's facility spelling."""
    return FacilitySets(frozenset(existing), frozenset(candidates))


__all__ = [
    "BACKENDS",
    "Engine",
    "open_venue",
    "legacy_facilities",
    "Client",
    "QueryRequest",
    "QueryResponse",
]
