"""ASCII rendering of indoor floor plans.

Debug/teaching aid used by the examples and the CLI: draws one level of
a venue as a character grid with partition outlines, doors, clients,
and facilities.  Rendering is intentionally approximate (rectangles
snapped to a character raster), never used by any algorithm.

Legend::

    +--+   partition outline        D  door
    .      client                   E  existing facility partition
    N      candidate partition      A  answer partition
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .entities import Client, PartitionId
from .venue import IndoorVenue

DOOR_MARK = "D"
CLIENT_MARK = "."
EXISTING_MARK = "E"
CANDIDATE_MARK = "N"
ANSWER_MARK = "A"


class FloorPlanRenderer:
    """Render venue levels to fixed-width text."""

    def __init__(
        self,
        venue: IndoorVenue,
        width: int = 100,
        height: int = 30,
    ) -> None:
        if width < 10 or height < 5:
            raise ValueError("render raster too small")
        self.venue = venue
        self.width = width
        self.height = height

    # ------------------------------------------------------------------
    def render_level(
        self,
        level: int,
        clients: Sequence[Client] = (),
        existing: Iterable[PartitionId] = (),
        candidates: Iterable[PartitionId] = (),
        answer: Optional[PartitionId] = None,
        labels: bool = False,
    ) -> str:
        """Render one level; markers overwrite outlines in draw order."""
        bounds = self.venue.bounding_rect(level)
        scale_x = (self.width - 1) / max(bounds.width, 1e-9)
        scale_y = (self.height - 1) / max(bounds.height, 1e-9)

        def to_cell(x: float, y: float):
            cx = int(round((x - bounds.min_x) * scale_x))
            cy = int(round((bounds.max_y - y) * scale_y))
            return (
                min(max(cx, 0), self.width - 1),
                min(max(cy, 0), self.height - 1),
            )

        grid = [[" "] * self.width for _ in range(self.height)]

        existing = set(existing)
        candidates = set(candidates)
        for pid in self.venue.partitions_on_level(level):
            rect = self.venue.partition(pid).rect
            x0, y1 = to_cell(rect.min_x, rect.min_y)
            x1, y0 = to_cell(rect.max_x, rect.max_y)
            for x in range(x0, x1 + 1):
                grid[y0][x] = "-"
                grid[y1][x] = "-"
            for y in range(y0, y1 + 1):
                grid[y][x0] = "|"
                grid[y][x1] = "|"
            for cx, cy in ((x0, y0), (x0, y1), (x1, y0), (x1, y1)):
                grid[cy][cx] = "+"
            mark = None
            if pid == answer:
                mark = ANSWER_MARK
            elif pid in existing:
                mark = EXISTING_MARK
            elif pid in candidates:
                mark = CANDIDATE_MARK
            if mark or labels:
                mx, my = to_cell(rect.center.x, rect.center.y)
                if mark:
                    grid[my][mx] = mark
                if labels:
                    text = str(pid)
                    for offset, char in enumerate(text):
                        x = mx + 1 + offset
                        if x < self.width:
                            grid[my][x] = char

        for client in clients:
            if client.location.level != level:
                continue
            cx, cy = to_cell(client.location.x, client.location.y)
            if grid[cy][cx] == " ":
                grid[cy][cx] = CLIENT_MARK

        for door in self.venue.doors():
            if door.location.level != level:
                continue
            cx, cy = to_cell(door.location.x, door.location.y)
            grid[cy][cx] = DOOR_MARK

        lines = ["".join(row).rstrip() for row in grid]
        header = f"level {level} ({self.venue.name})"
        return "\n".join([header] + lines)

    def render(
        self,
        clients: Sequence[Client] = (),
        existing: Iterable[PartitionId] = (),
        candidates: Iterable[PartitionId] = (),
        answer: Optional[PartitionId] = None,
    ) -> str:
        """Render every level, top floor first."""
        parts = [
            self.render_level(
                level,
                clients=clients,
                existing=existing,
                candidates=candidates,
                answer=answer,
            )
            for level in reversed(self.venue.levels)
        ]
        return "\n\n".join(parts)


def render_result(
    venue: IndoorVenue,
    clients: Sequence[Client],
    existing: Iterable[PartitionId],
    candidates: Iterable[PartitionId],
    answer: Optional[PartitionId],
    width: int = 100,
    height: int = 24,
) -> str:
    """One-call rendering of a query outcome (the answer's level only,
    or the ground level when there is no answer)."""
    renderer = FloorPlanRenderer(venue, width=width, height=height)
    if answer is not None:
        level = venue.partition(answer).level
    else:
        level = venue.levels[0]
    return renderer.render_level(
        level,
        clients=clients,
        existing=existing,
        candidates=candidates,
        answer=answer,
    )
