"""Incremental construction of :class:`~repro.indoor.venue.IndoorVenue`.

The builder assigns ids, keeps the partial topology mutable, and
produces a validated immutable venue via :meth:`VenueBuilder.build`.
Dataset generators and tests use it so that hand-written venues stay
short and readable.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import VenueError
from .entities import Door, DoorId, Partition, PartitionId, PartitionKind
from .geometry import Point, Rect, midpoint
from .venue import IndoorVenue


class VenueBuilder:
    """Assemble an indoor venue partition by partition.

    Example
    -------
    >>> builder = VenueBuilder("demo")
    >>> room = builder.add_room(Rect(0, 0, 5, 5))
    >>> hall = builder.add_corridor(Rect(5, 0, 20, 5))
    >>> _ = builder.connect(room, hall)
    >>> venue = builder.build()
    >>> venue.partition_count, venue.door_count
    (2, 1)
    """

    def __init__(self, name: str = "venue") -> None:
        self.name = name
        self._partitions: List[Partition] = []
        self._doors: List[Door] = []
        self._next_partition_id: PartitionId = 0
        self._next_door_id: DoorId = 0

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def add_partition(
        self,
        rect: Rect,
        kind: PartitionKind = PartitionKind.ROOM,
        name: str = "",
        category: Optional[str] = None,
        stair_length: float = 0.0,
    ) -> PartitionId:
        """Add a partition and return its id."""
        pid = self._next_partition_id
        self._next_partition_id += 1
        self._partitions.append(
            Partition(
                partition_id=pid,
                rect=rect,
                kind=kind,
                name=name or f"{kind}-{pid}",
                category=category,
                stair_length=stair_length,
            )
        )
        return pid

    def add_room(
        self, rect: Rect, name: str = "", category: Optional[str] = None
    ) -> PartitionId:
        """Add a room partition."""
        return self.add_partition(
            rect, PartitionKind.ROOM, name=name, category=category
        )

    def add_corridor(self, rect: Rect, name: str = "") -> PartitionId:
        """Add a corridor partition."""
        return self.add_partition(rect, PartitionKind.CORRIDOR, name=name)

    def add_hall(self, rect: Rect, name: str = "") -> PartitionId:
        """Add a hall partition."""
        return self.add_partition(rect, PartitionKind.HALL, name=name)

    def add_staircase(
        self, rect: Rect, stair_length: float, name: str = ""
    ) -> PartitionId:
        """Add a staircase whose footprint sits on the *lower* level.

        ``stair_length`` is the walking distance between its lower-level
        and upper-level doors.
        """
        if stair_length <= 0:
            raise VenueError("stair_length must be positive")
        return self.add_partition(
            rect, PartitionKind.STAIRCASE, name=name, stair_length=stair_length
        )

    # ------------------------------------------------------------------
    # Doors
    # ------------------------------------------------------------------
    def add_door(
        self,
        location: Point,
        partition_a: PartitionId,
        partition_b: Optional[PartitionId] = None,
        name: str = "",
    ) -> DoorId:
        """Add a door at an explicit location."""
        did = self._next_door_id
        self._next_door_id += 1
        self._doors.append(
            Door(
                door_id=did,
                location=location,
                partition_a=partition_a,
                partition_b=partition_b,
                name=name or f"door-{did}",
            )
        )
        return did

    def connect(
        self,
        partition_a: PartitionId,
        partition_b: PartitionId,
        at: Optional[Point] = None,
        name: str = "",
    ) -> DoorId:
        """Add a door between two partitions.

        When ``at`` is omitted the door is placed at the midpoint of the
        two footprint centres clamped onto the shared boundary region —
        good enough for generated venues where partitions share a wall.
        """
        if at is None:
            rect_a = self._partition(partition_a).rect
            rect_b = self._partition(partition_b).rect
            guess = midpoint(rect_a.center, rect_b.center)
            at = rect_a.clamp(rect_b.clamp(guess))
        return self.add_door(at, partition_a, partition_b, name=name)

    def connect_levels(
        self,
        lower: PartitionId,
        upper: PartitionId,
        at: Point,
        stair_length: float,
        name: str = "",
    ) -> PartitionId:
        """Insert a staircase partition between two partitions on
        consecutive levels and wire both of its doors.

        ``at`` is the planar position of the stairwell; the footprint is
        a 2x2 m square on the lower level.  Returns the staircase's
        partition id.
        """
        lower_level = self._partition(lower).level
        upper_level = self._partition(upper).level
        if upper_level != lower_level + 1:
            raise VenueError(
                f"connect_levels expects consecutive levels, got "
                f"{lower_level} and {upper_level}"
            )
        rect = Rect(at.x - 1.0, at.y - 1.0, at.x + 1.0, at.y + 1.0,
                    lower_level)
        stair = self.add_staircase(rect, stair_length, name=name or "stair")
        self.add_door(
            Point(at.x, at.y, lower_level), lower, stair,
            name=f"{name or 'stair'}-lower",
        )
        self.add_door(
            Point(at.x, at.y, upper_level), upper, stair,
            name=f"{name or 'stair'}-upper",
        )
        return stair

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def _partition(self, pid: PartitionId) -> Partition:
        try:
            return self._partitions[pid]
        except IndexError:
            raise VenueError(f"unknown partition id {pid}") from None

    @property
    def partition_count(self) -> int:
        """Partitions added so far."""
        return len(self._partitions)

    @property
    def door_count(self) -> int:
        """Doors added so far."""
        return len(self._doors)

    def build(self, validate: bool = True) -> IndoorVenue:
        """Produce the immutable venue (validated by default)."""
        venue = IndoorVenue(self._partitions, self._doors, name=self.name)
        if validate:
            venue.validate()
        return venue
