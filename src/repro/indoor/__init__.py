"""Indoor space substrate: geometry, venues, door graph, exact
distances, serialisation, and floor-plan rendering."""

from .analysis import VenueStats, analyse_venue, compare_to_paper
from .builder import VenueBuilder
from .distance import DistanceService
from .doorgraph import INFINITY, DoorGraph
from .entities import (
    Client,
    ClientId,
    Door,
    DoorId,
    FacilitySets,
    Partition,
    PartitionId,
    PartitionKind,
)
from .geometry import Point, Rect, midpoint
from .io import (
    load_venue,
    load_workload,
    save_venue,
    save_workload,
    venue_from_dict,
    venue_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from .render import FloorPlanRenderer, render_result
from .venue import IndoorVenue

__all__ = [
    "analyse_venue",
    "compare_to_paper",
    "VenueStats",
    "Client",
    "ClientId",
    "DistanceService",
    "Door",
    "DoorGraph",
    "DoorId",
    "FacilitySets",
    "INFINITY",
    "IndoorVenue",
    "midpoint",
    "Partition",
    "PartitionId",
    "PartitionKind",
    "Point",
    "Rect",
    "VenueBuilder",
    "FloorPlanRenderer",
    "load_venue",
    "load_workload",
    "render_result",
    "save_venue",
    "save_workload",
    "venue_from_dict",
    "venue_to_dict",
    "workload_from_dict",
    "workload_to_dict",
]
