"""The door graph (Yang et al., EDBT'10) of an indoor venue.

Vertices are doors; an undirected edge connects two doors that belong to
the same partition, weighted by the intra-partition walking distance
between them.  Shortest door-to-door paths on this graph are exactly the
indoor shortest distances between doors, and serve as the ground truth
the VIP-tree is tested against.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import UnknownEntityError
from .entities import DoorId, PartitionId
from .venue import IndoorVenue

INFINITY = float("inf")


class DoorGraph:
    """Weighted undirected graph over the doors of a venue.

    Construction is O(sum over partitions of doors^2); the per-door
    adjacency lists are plain ``(neighbour, weight, partition)`` tuples
    so Dijkstra runs allocation-free apart from the heap.
    """

    def __init__(self, venue: IndoorVenue) -> None:
        self.venue = venue
        self._adjacency: Dict[
            DoorId, List[Tuple[DoorId, float, PartitionId]]
        ] = {door_id: [] for door_id in venue.door_ids()}
        for partition in venue.partitions():
            door_ids = venue.doors_of(partition.partition_id)
            for i, a in enumerate(door_ids):
                loc_a = venue.door(a).location
                for b in door_ids[i + 1:]:
                    weight = partition.intra_distance(
                        loc_a, venue.door(b).location
                    )
                    self._adjacency[a].append(
                        (b, weight, partition.partition_id)
                    )
                    self._adjacency[b].append(
                        (a, weight, partition.partition_id)
                    )

    @property
    def door_count(self) -> int:
        """Number of vertices (doors)."""
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(edges) for edges in self._adjacency.values()) // 2

    def edges_of(
        self, door_id: DoorId
    ) -> Sequence[Tuple[DoorId, float, PartitionId]]:
        """Adjacency list of one door: (neighbour, weight, partition)."""
        try:
            return self._adjacency[door_id]
        except KeyError:
            raise UnknownEntityError("door", door_id) from None

    # ------------------------------------------------------------------
    # Shortest paths
    # ------------------------------------------------------------------
    def dijkstra(
        self,
        source: DoorId,
        targets: Optional[Iterable[DoorId]] = None,
        allowed_partitions: Optional[frozenset] = None,
    ) -> Dict[DoorId, float]:
        """Single-source shortest distances from ``source``.

        ``targets`` (when given) allows early termination once every
        target has been settled.  ``allowed_partitions`` restricts the
        walk to edges through the given partitions — used to compute the
        VIP-tree's *local* (within-leaf) matrices.
        """
        if source not in self._adjacency:
            raise UnknownEntityError("door", source)
        remaining = set(targets) if targets is not None else None
        dist: Dict[DoorId, float] = {source: 0.0}
        settled: Dict[DoorId, float] = {}
        heap: List[Tuple[float, DoorId]] = [(0.0, source)]
        while heap:
            d, door = heapq.heappop(heap)
            if door in settled:
                continue
            settled[door] = d
            if remaining is not None:
                remaining.discard(door)
                if not remaining:
                    break
            for neighbour, weight, partition_id in self._adjacency[door]:
                if (
                    allowed_partitions is not None
                    and partition_id not in allowed_partitions
                ):
                    continue
                candidate = d + weight
                if candidate < dist.get(neighbour, INFINITY):
                    dist[neighbour] = candidate
                    heapq.heappush(heap, (candidate, neighbour))
        return settled

    def dijkstra_with_paths(
        self, source: DoorId
    ) -> Tuple[Dict[DoorId, float], Dict[DoorId, DoorId]]:
        """Like :meth:`dijkstra` but also returns predecessor doors.

        Used to extract explicit door sequences (e.g. first-hop
        information for VIP-tree matrices and path reconstruction in
        examples).
        """
        if source not in self._adjacency:
            raise UnknownEntityError("door", source)
        dist: Dict[DoorId, float] = {source: 0.0}
        parent: Dict[DoorId, DoorId] = {}
        settled: Dict[DoorId, float] = {}
        heap: List[Tuple[float, DoorId]] = [(0.0, source)]
        while heap:
            d, door = heapq.heappop(heap)
            if door in settled:
                continue
            settled[door] = d
            for neighbour, weight, _pid in self._adjacency[door]:
                candidate = d + weight
                if candidate < dist.get(neighbour, INFINITY):
                    dist[neighbour] = candidate
                    parent[neighbour] = door
                    heapq.heappush(heap, (candidate, neighbour))
        return settled, parent

    def shortest_path(
        self, source: DoorId, target: DoorId
    ) -> Tuple[float, List[DoorId]]:
        """Distance and door sequence from ``source`` to ``target``.

        Returns ``(inf, [])`` when unreachable.
        """
        dist, parent = self.dijkstra_with_paths(source)
        if target not in dist:
            return INFINITY, []
        path = [target]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return dist[target], path
