"""JSON (de)serialisation of venues, clients, and facility sets.

A venue built once (by hand or from a generator) can be persisted and
reloaded without rebuilding, and workloads can be stored next to
benchmark results for exact reproduction.  The format is a plain JSON
document with a ``format`` version marker::

    {
      "format": "repro-venue/1",
      "name": "...",
      "partitions": [{"id": 0, "rect": [x0, y0, x1, y1, level],
                      "kind": "room", "name": "...", "category": null,
                      "stair_length": 0.0}, ...],
      "doors": [{"id": 0, "location": [x, y, level], "a": 0, "b": 1,
                 "name": "..."}, ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import VenueError
from .entities import (
    Client,
    Door,
    FacilitySets,
    Partition,
    PartitionKind,
)
from .geometry import Point, Rect
from .venue import IndoorVenue

VENUE_FORMAT = "repro-venue/1"
WORKLOAD_FORMAT = "repro-workload/1"

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Venue
# ---------------------------------------------------------------------------
def venue_to_dict(venue: IndoorVenue) -> Dict:
    """Serialise a venue to a JSON-compatible dictionary."""
    partitions = []
    for partition in venue.partitions():
        rect = partition.rect
        partitions.append(
            {
                "id": partition.partition_id,
                "rect": [rect.min_x, rect.min_y, rect.max_x,
                         rect.max_y, rect.level],
                "kind": partition.kind.value,
                "name": partition.name,
                "category": partition.category,
                "stair_length": partition.stair_length,
            }
        )
    doors = []
    for door in venue.doors():
        location = door.location
        doors.append(
            {
                "id": door.door_id,
                "location": [location.x, location.y, location.level],
                "a": door.partition_a,
                "b": door.partition_b,
                "name": door.name,
            }
        )
    return {
        "format": VENUE_FORMAT,
        "name": venue.name,
        "partitions": partitions,
        "doors": doors,
    }


def venue_from_dict(data: Dict, validate: bool = True) -> IndoorVenue:
    """Rebuild a venue from :func:`venue_to_dict` output."""
    if data.get("format") != VENUE_FORMAT:
        raise VenueError(
            f"unsupported venue format {data.get('format')!r}; "
            f"expected {VENUE_FORMAT}"
        )
    partitions: List[Partition] = []
    for entry in data["partitions"]:
        x0, y0, x1, y1, level = entry["rect"]
        partitions.append(
            Partition(
                partition_id=int(entry["id"]),
                rect=Rect(x0, y0, x1, y1, int(level)),
                kind=PartitionKind(entry["kind"]),
                name=entry.get("name", ""),
                category=entry.get("category"),
                stair_length=float(entry.get("stair_length", 0.0)),
            )
        )
    doors: List[Door] = []
    for entry in data["doors"]:
        x, y, level = entry["location"]
        b = entry.get("b")
        doors.append(
            Door(
                door_id=int(entry["id"]),
                location=Point(x, y, int(level)),
                partition_a=int(entry["a"]),
                partition_b=None if b is None else int(b),
                name=entry.get("name", ""),
            )
        )
    venue = IndoorVenue(partitions, doors, name=data.get("name", "venue"))
    if validate:
        venue.validate()
    return venue


def save_venue(venue: IndoorVenue, path: PathLike) -> None:
    """Write a venue to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(venue_to_dict(venue), handle, indent=1)


def load_venue(path: PathLike, validate: bool = True) -> IndoorVenue:
    """Read a venue from a JSON file."""
    with open(path) as handle:
        return venue_from_dict(json.load(handle), validate=validate)


# ---------------------------------------------------------------------------
# Workloads (clients + facility sets)
# ---------------------------------------------------------------------------
def workload_to_dict(
    clients: Sequence[Client],
    facilities: Optional[FacilitySets] = None,
) -> Dict:
    """Serialise a workload (clients and optional facility sets)."""
    out: Dict = {
        "format": WORKLOAD_FORMAT,
        "clients": [
            {
                "id": c.client_id,
                "location": [c.location.x, c.location.y,
                             c.location.level],
                "partition": c.partition_id,
            }
            for c in clients
        ],
    }
    if facilities is not None:
        out["existing"] = sorted(facilities.existing)
        out["candidates"] = sorted(facilities.candidates)
    return out


def workload_from_dict(data: Dict):
    """Rebuild ``(clients, facilities_or_None)`` from a workload dict."""
    if data.get("format") != WORKLOAD_FORMAT:
        raise VenueError(
            f"unsupported workload format {data.get('format')!r}; "
            f"expected {WORKLOAD_FORMAT}"
        )
    clients = [
        Client(
            int(entry["id"]),
            Point(
                entry["location"][0],
                entry["location"][1],
                int(entry["location"][2]),
            ),
            int(entry["partition"]),
        )
        for entry in data["clients"]
    ]
    facilities = None
    if "existing" in data or "candidates" in data:
        facilities = FacilitySets(
            frozenset(data.get("existing", ())),
            frozenset(data.get("candidates", ())),
        )
    return clients, facilities


def save_workload(
    clients: Sequence[Client],
    path: PathLike,
    facilities: Optional[FacilitySets] = None,
) -> None:
    """Write a workload to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(workload_to_dict(clients, facilities), handle, indent=1)


def load_workload(path: PathLike):
    """Read ``(clients, facilities_or_None)`` from a JSON file."""
    with open(path) as handle:
        return workload_from_dict(json.load(handle))
