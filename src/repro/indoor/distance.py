"""Exact indoor distance service backed by door-graph Dijkstra.

This is the *ground truth* distance oracle: simple, exact, and O(graph)
per uncached source door.  The VIP-tree engine in :mod:`repro.index`
computes the same quantities from its matrices and is property-tested
against this service.

Distance conventions (paper Section 5.3.1):

* movement inside a partition is free, so the distance between two
  points in the same partition is the intra-partition distance;
* the distance between a *partition* and its own doors is 0 (a whole
  partition "touches" its doors), whereas the distance between a point
  and a door of its partition is the positive intra-partition distance;
* ``iDist(c, p)`` — client to partition — is 0 when the client is inside
  ``p`` and otherwise the length of the shortest door path that reaches
  any door of ``p``;
* ``iMinD(p, q)`` — partition to partition — is the door-to-door lower
  bound with zero offsets on both sides.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import UnknownEntityError
from .doorgraph import INFINITY, DoorGraph
from .entities import DoorId, PartitionId
from .geometry import Point
from .venue import IndoorVenue


class DistanceService:
    """Exact indoor distances with per-door memoised Dijkstra rows."""

    def __init__(self, venue: IndoorVenue, graph: Optional[DoorGraph] = None):
        self.venue = venue
        self.graph = graph if graph is not None else DoorGraph(venue)
        self._rows: Dict[DoorId, Dict[DoorId, float]] = {}

    # ------------------------------------------------------------------
    # Door-level distances
    # ------------------------------------------------------------------
    def _row(self, door_id: DoorId) -> Dict[DoorId, float]:
        row = self._rows.get(door_id)
        if row is None:
            row = self.graph.dijkstra(door_id)
            self._rows[door_id] = row
        return row

    def door_to_door(self, a: DoorId, b: DoorId) -> float:
        """Shortest indoor distance between two doors (inf if unreachable)."""
        if a == b:
            return 0.0
        # Reuse whichever row is already cached to avoid extra Dijkstras.
        if b in self._rows and a not in self._rows:
            return self._rows[b].get(a, INFINITY)
        return self._row(a).get(b, INFINITY)

    # ------------------------------------------------------------------
    # Point-level distances
    # ------------------------------------------------------------------
    def point_to_door(
        self, point: Point, partition_id: PartitionId, door_id: DoorId
    ) -> float:
        """Distance from a point inside ``partition_id`` to any door.

        The point must leave through one of its partition's doors unless
        the target door already belongs to the partition.
        """
        partition = self.venue.partition(partition_id)
        target = self.venue.door(door_id)
        best = INFINITY
        if partition_id in target.partitions():
            best = partition.intra_distance(point, target.location)
        for exit_id in self.venue.doors_of(partition_id):
            exit_door = self.venue.door(exit_id)
            offset = partition.intra_distance(point, exit_door.location)
            if offset >= best:
                continue
            via = offset + self.door_to_door(exit_id, door_id)
            if via < best:
                best = via
        return best

    def point_to_point(
        self,
        a: Point,
        a_partition: PartitionId,
        b: Point,
        b_partition: PartitionId,
    ) -> float:
        """Shortest indoor distance between two located points."""
        if a_partition == b_partition:
            return self.venue.partition(a_partition).intra_distance(a, b)
        partition_b = self.venue.partition(b_partition)
        best = INFINITY
        for door_id in self.venue.doors_of(b_partition):
            door = self.venue.door(door_id)
            tail = partition_b.intra_distance(b, door.location)
            if tail >= best:
                continue
            total = self.point_to_door(a, a_partition, door_id) + tail
            if total < best:
                best = total
        return best

    def point_to_partition(
        self, point: Point, point_partition: PartitionId, target: PartitionId
    ) -> float:
        """``iDist(c, p)``: 0 inside, else shortest path to a door of ``p``."""
        if point_partition == target:
            return 0.0
        if target not in set(self.venue.partition_ids()):
            raise UnknownEntityError("partition", target)
        best = INFINITY
        for door_id in self.venue.doors_of(target):
            d = self.point_to_door(point, point_partition, door_id)
            if d < best:
                best = d
        return best

    # ------------------------------------------------------------------
    # Partition-level distances
    # ------------------------------------------------------------------
    def partition_to_partition(
        self, a: PartitionId, b: PartitionId
    ) -> float:
        """``iMinD(p, q)`` between two partitions (0 when equal/adjacent
        through a shared door)."""
        if a == b:
            return 0.0
        best = INFINITY
        doors_b = self.venue.doors_of(b)
        for door_a in self.venue.doors_of(a):
            for door_b in doors_b:
                d = self.door_to_door(door_a, door_b)
                if d < best:
                    best = d
        return best
