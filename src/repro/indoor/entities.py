"""Core indoor entities: partitions, doors, and clients.

The model follows the accessibility-graph view used by the paper (and by
Lu et al., ICDE'12): an indoor venue is a set of *partitions* (rooms,
corridors, staircases) connected by *doors*.  Movement is free inside a
partition and restricted to doors between partitions.

Facilities (existing facilities ``Fe`` and candidate locations ``Fn``)
are partitions, matching the paper's problem setting ("our problem
setting considers an existing facility or a candidate location as a
partition of the indoor space").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .geometry import Point, Rect

PartitionId = int
DoorId = int
ClientId = int


class PartitionKind(enum.Enum):
    """Functional role of a partition.

    The IFLS algorithms never branch on the kind; it exists for dataset
    generation (e.g. category assignment skips corridors/stairs) and for
    the staircase traversal-cost override.
    """

    ROOM = "room"
    CORRIDOR = "corridor"
    STAIRCASE = "staircase"
    HALL = "hall"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Partition:
    """An indoor partition (room / corridor / staircase / hall).

    ``stair_length`` only applies to ``STAIRCASE`` partitions: it is the
    walking distance between any two of the staircase's doors, replacing
    the planar Euclidean distance (the doors are on different levels).
    """

    partition_id: PartitionId
    rect: Rect
    kind: PartitionKind = PartitionKind.ROOM
    name: str = ""
    category: Optional[str] = None
    stair_length: float = 0.0

    @property
    def level(self) -> int:
        """Floor this partition sits on."""
        return self.rect.level

    @property
    def center(self) -> Point:
        """Centre of the footprint."""
        return self.rect.center

    def intra_distance(self, a: Point, b: Point) -> float:
        """Walking distance between two points inside this partition.

        Free movement means Euclidean distance for planar partitions;
        staircases use their fixed ``stair_length`` when the two points
        sit on different levels (e.g. the bottom and top doors).
        """
        if self.kind is PartitionKind.STAIRCASE and a.level != b.level:
            return self.stair_length
        return a.planar_distance(b)

    def contains(self, point: Point) -> bool:
        """True when ``point`` lies within this partition's footprint."""
        if self.kind is PartitionKind.STAIRCASE:
            # A staircase spans two levels; accept either endpoint level.
            if point.level not in (self.rect.level, self.rect.level + 1):
                return False
            flat = Point(point.x, point.y, self.rect.level)
            return self.rect.contains(flat)
        return self.rect.contains(point)


@dataclass(frozen=True)
class Door:
    """A door connecting two partitions (or a partition and the exterior).

    ``partition_a`` is always a valid partition id; ``partition_b`` is
    ``None`` for exterior doors (building entrances).  The door's
    ``location`` lies on the shared boundary; for stair doors the level
    of ``location`` is the level of the side it opens onto.
    """

    door_id: DoorId
    location: Point
    partition_a: PartitionId
    partition_b: Optional[PartitionId] = None
    name: str = ""

    def partitions(self) -> Tuple[PartitionId, ...]:
        """Ids of the partitions this door belongs to (1 or 2)."""
        if self.partition_b is None:
            return (self.partition_a,)
        return (self.partition_a, self.partition_b)

    def other_side(self, partition_id: PartitionId) -> Optional[PartitionId]:
        """The partition on the other side of the door, if any.

        Raises :class:`ValueError` when the door does not belong to
        ``partition_id`` at all — that is always a caller bug.
        """
        if partition_id == self.partition_a:
            return self.partition_b
        if partition_id == self.partition_b:
            return self.partition_a
        raise ValueError(
            f"door {self.door_id} does not belong to partition {partition_id}"
        )

    @property
    def is_exterior(self) -> bool:
        """True for building entrances (one-sided doors)."""
        return self.partition_b is None


@dataclass(frozen=True)
class Client:
    """A client (query object) at a fixed indoor location.

    ``partition_id`` is the partition containing ``location``; it is
    stored explicitly because the IFLS algorithms group clients by
    partition and never perform point-in-partition lookups on the hot
    path.
    """

    client_id: ClientId
    location: Point
    partition_id: PartitionId


@dataclass
class FacilitySets:
    """The query's facility configuration: existing ``Fe``, candidate ``Fn``.

    Kept as ``frozenset`` so membership tests on the query hot path are
    O(1) and the sets are safe to share between algorithms.
    """

    existing: frozenset = field(default_factory=frozenset)
    candidates: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        self.existing = frozenset(self.existing)
        self.candidates = frozenset(self.candidates)
        overlap = self.existing & self.candidates
        if overlap:
            raise ValueError(
                f"facility sets overlap on partitions {sorted(overlap)!r}; "
                "a partition cannot be both an existing facility and a "
                "candidate location"
            )

    @property
    def all_facilities(self) -> frozenset:
        """Union of existing facilities and candidate locations."""
        return self.existing | self.candidates
