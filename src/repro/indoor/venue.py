"""The indoor venue: an immutable collection of partitions and doors.

A :class:`IndoorVenue` owns the topology (which doors belong to which
partitions) and exposes the adjacency queries every other layer builds
on: the door graph (`repro.indoor.doorgraph`), the exact distance
service (`repro.indoor.distance`) and the VIP-tree (`repro.index`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import DisconnectedVenueError, UnknownEntityError, VenueError
from .entities import Door, DoorId, Partition, PartitionId
from .geometry import Point, Rect


class IndoorVenue:
    """An indoor space made of partitions connected by doors.

    Instances are conceptually immutable after construction: all derived
    structures (adjacency lists, level index) are computed once in
    ``__init__``.  Use :class:`repro.indoor.builder.VenueBuilder` to
    assemble venues incrementally.
    """

    def __init__(
        self,
        partitions: Iterable[Partition],
        doors: Iterable[Door],
        name: str = "venue",
    ) -> None:
        self.name = name
        self._partitions: Dict[PartitionId, Partition] = {}
        for partition in partitions:
            if partition.partition_id in self._partitions:
                raise VenueError(
                    f"duplicate partition id {partition.partition_id}"
                )
            self._partitions[partition.partition_id] = partition

        self._doors: Dict[DoorId, Door] = {}
        self._partition_doors: Dict[PartitionId, List[DoorId]] = {
            pid: [] for pid in self._partitions
        }
        for door in doors:
            if door.door_id in self._doors:
                raise VenueError(f"duplicate door id {door.door_id}")
            for pid in door.partitions():
                if pid not in self._partitions:
                    raise VenueError(
                        f"door {door.door_id} references unknown "
                        f"partition {pid}"
                    )
                self._partition_doors[pid].append(door.door_id)
            self._doors[door.door_id] = door

        self._levels: Dict[int, List[PartitionId]] = {}
        for partition in self._partitions.values():
            self._levels.setdefault(partition.level, []).append(
                partition.partition_id
            )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def partition(self, partition_id: PartitionId) -> Partition:
        """Return a partition by id, raising on unknown ids."""
        try:
            return self._partitions[partition_id]
        except KeyError:
            raise UnknownEntityError("partition", partition_id) from None

    def door(self, door_id: DoorId) -> Door:
        """Return a door by id, raising on unknown ids."""
        try:
            return self._doors[door_id]
        except KeyError:
            raise UnknownEntityError("door", door_id) from None

    def doors_of(self, partition_id: PartitionId) -> Sequence[DoorId]:
        """Door ids belonging to a partition (order is insertion order)."""
        if partition_id not in self._partition_doors:
            raise UnknownEntityError("partition", partition_id)
        return tuple(self._partition_doors[partition_id])

    def partitions(self) -> Iterator[Partition]:
        """Iterate over all partitions."""
        return iter(self._partitions.values())

    def doors(self) -> Iterator[Door]:
        """Iterate over all doors."""
        return iter(self._doors.values())

    def partition_ids(self) -> Iterator[PartitionId]:
        """Iterate over all partition ids."""
        return iter(self._partitions.keys())

    def door_ids(self) -> Iterator[DoorId]:
        """Iterate over all door ids."""
        return iter(self._doors.keys())

    @property
    def partition_count(self) -> int:
        """Total number of partitions."""
        return len(self._partitions)

    @property
    def door_count(self) -> int:
        """Total number of doors."""
        return len(self._doors)

    @property
    def levels(self) -> Tuple[int, ...]:
        """Sorted floor numbers present in the venue."""
        return tuple(sorted(self._levels))

    def partitions_on_level(self, level: int) -> Sequence[PartitionId]:
        """Partition ids on one floor (empty for unknown levels)."""
        return tuple(self._levels.get(level, ()))

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def neighbours(self, partition_id: PartitionId) -> Iterator[PartitionId]:
        """Partitions sharing at least one door with ``partition_id``."""
        seen = set()
        for door_id in self.doors_of(partition_id):
            other = self._doors[door_id].other_side(partition_id)
            if other is not None and other not in seen:
                seen.add(other)
                yield other

    def connecting_doors(
        self, a: PartitionId, b: PartitionId
    ) -> List[DoorId]:
        """All doors directly connecting partitions ``a`` and ``b``."""
        doors_b = set(self.doors_of(b))
        return [d for d in self.doors_of(a) if d in doors_b]

    def locate(self, point: Point) -> Optional[PartitionId]:
        """Find the partition containing ``point`` (linear scan).

        Used by workload generators and examples, never on the query hot
        path.  Returns ``None`` when the point is outside every
        partition.  When footprints overlap (e.g. a staircase sharing a
        wall) the partition with the smallest area wins, which picks the
        room over the enclosing hall.
        """
        best: Optional[Partition] = None
        for partition in self._partitions.values():
            if partition.contains(point):
                if best is None or partition.rect.area < best.rect.area:
                    best = partition
        return None if best is None else best.partition_id

    def bounding_rect(self, level: Optional[int] = None) -> Rect:
        """Bounding box of the venue (optionally of a single level)."""
        rects = [
            p.rect
            for p in self._partitions.values()
            if level is None or p.level == level
        ]
        if not rects:
            raise VenueError(f"no partitions on level {level!r}")
        out = rects[0]
        for rect in rects[1:]:
            out = out.union(rect)
        return out

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`VenueError` on failure.

        Checks: every partition has at least one door, door locations lie
        on their partitions, and the venue is door-connected (a single
        connected component), which the IFLS algorithms rely on.
        """
        for pid, door_ids in self._partition_doors.items():
            if not door_ids:
                raise VenueError(f"partition {pid} has no doors")
        for door in self._doors.values():
            for pid in door.partitions():
                partition = self._partitions[pid]
                if not partition.contains(door.location) and (
                    partition.rect.distance_to_point(door.location) > 1e-6
                ):
                    raise VenueError(
                        f"door {door.door_id} location {door.location} not "
                        f"on partition {pid}"
                    )
        self._check_connected()

    def _check_connected(self) -> None:
        if not self._partitions:
            raise VenueError("venue has no partitions")
        start = next(iter(self._partitions))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbour in self.neighbours(current):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        if len(seen) != len(self._partitions):
            missing = sorted(set(self._partitions) - seen)
            raise DisconnectedVenueError(
                f"venue is disconnected; unreachable partitions "
                f"(first 10): {missing[:10]}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndoorVenue(name={self.name!r}, "
            f"partitions={self.partition_count}, doors={self.door_count}, "
            f"levels={len(self.levels)})"
        )
