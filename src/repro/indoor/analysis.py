"""Venue analysis: descriptive statistics of an indoor space.

Used by ``ifls info`` and handy when preparing reproductions: the
paper's venue descriptions boil down to exactly these numbers (levels,
partitions, doors, degree profile, footprint).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from .venue import IndoorVenue


@dataclass(frozen=True)
class VenueStats:
    """Summary statistics of a venue."""

    name: str
    partitions: int
    doors: int
    levels: int
    kind_counts: Tuple[Tuple[str, int], ...]
    partitions_per_level: Tuple[Tuple[int, int], ...]
    door_degree_histogram: Tuple[Tuple[int, int], ...]
    mean_doors_per_partition: float
    exterior_doors: int
    footprint: Tuple[float, float]

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"venue: {self.name}",
            f"partitions: {self.partitions} over {self.levels} level(s)",
            f"doors: {self.doors} ({self.exterior_doors} exterior)",
            "kinds: "
            + ", ".join(f"{kind}={count}"
                        for kind, count in self.kind_counts),
            f"footprint: {self.footprint[0]:.0f} x "
            f"{self.footprint[1]:.0f} m",
            f"mean doors per partition: "
            f"{self.mean_doors_per_partition:.2f}",
            "door-degree histogram (doors-per-partition: partitions): "
            + ", ".join(f"{deg}: {count}"
                        for deg, count in self.door_degree_histogram),
        ]
        return "\n".join(lines)


def analyse_venue(venue: IndoorVenue) -> VenueStats:
    """Compute :class:`VenueStats` for a venue."""
    kind_counter: Counter = Counter(
        partition.kind.value for partition in venue.partitions()
    )
    per_level: Dict[int, int] = {
        level: len(venue.partitions_on_level(level))
        for level in venue.levels
    }
    degree_counter: Counter = Counter(
        len(venue.doors_of(pid)) for pid in venue.partition_ids()
    )
    exterior = sum(1 for door in venue.doors() if door.is_exterior)
    bounds = venue.bounding_rect()
    total_degree = sum(
        degree * count for degree, count in degree_counter.items()
    )
    return VenueStats(
        name=venue.name,
        partitions=venue.partition_count,
        doors=venue.door_count,
        levels=len(venue.levels),
        kind_counts=tuple(sorted(kind_counter.items())),
        partitions_per_level=tuple(sorted(per_level.items())),
        door_degree_histogram=tuple(sorted(degree_counter.items())),
        mean_doors_per_partition=(
            total_degree / venue.partition_count
        ),
        exterior_doors=exterior,
        footprint=(bounds.width, bounds.height),
    )


def compare_to_paper(
    venue: IndoorVenue, expected_partitions: int, expected_doors: int
) -> Dict[str, bool]:
    """Check a venue against published statistics (used in tests)."""
    return {
        "partitions_match": venue.partition_count == expected_partitions,
        "doors_match": venue.door_count == expected_doors,
    }
