"""Planar geometry primitives used by the indoor space model.

Indoor venues are modelled on a per-level basis: every geometric object
carries an integer ``level`` (floor number).  Within a level, coordinates
are metres in the plane.  Movement inside a partition is free (Euclidean);
movement between levels happens only through staircase partitions, whose
traversal cost is a fixed stair length rather than a planar distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A location inside an indoor venue.

    ``x`` and ``y`` are planar coordinates in metres; ``level`` is the
    floor the point lies on.  Points are immutable and hashable so they
    can be used as dictionary keys (e.g. memoised distances).
    """

    x: float
    y: float
    level: int = 0

    def planar_distance(self, other: "Point") -> float:
        """Euclidean distance ignoring the level.

        Only meaningful when both points lie in the same partition (free
        movement); callers are responsible for that invariant.
        """
        return math.hypot(self.x - other.x, self.y - other.y)

    def offset(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)`` on the same level."""
        return Point(self.x + dx, self.y + dy, self.level)

    def as_tuple(self) -> Tuple[float, float, int]:
        """Return ``(x, y, level)`` for serialisation."""
        return (self.x, self.y, self.level)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle on one level (a partition footprint)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    level: int = 0

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate rect: ({self.min_x},{self.min_y})-"
                f"({self.max_x},{self.max_y})"
            )

    @property
    def width(self) -> float:
        """Extent in x (metres)."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent in y (metres)."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Footprint area (square metres)."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centre point of the rect, on the rect's level."""
        return Point(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
            self.level,
        )

    def contains(self, point: Point, *, tolerance: float = 1e-9) -> bool:
        """True when ``point`` lies inside the rect (same level)."""
        if point.level != self.level:
            return False
        return (
            self.min_x - tolerance <= point.x <= self.max_x + tolerance
            and self.min_y - tolerance <= point.y <= self.max_y + tolerance
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the rect (keeping the rect's level)."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
            self.level,
        )

    def distance_to_point(self, point: Point) -> float:
        """Planar distance from the rect boundary/interior to ``point``.

        Returns ``0.0`` for points inside the rect.  Levels are ignored;
        use only for same-level reasoning or visualisation.
        """
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return math.hypot(dx, dy)

    def union(self, other: "Rect") -> "Rect":
        """Smallest rect covering both (levels must match for geometry;
        cross-level unions keep this rect's level and are used only for
        display bounding boxes)."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
            self.level,
        )

    def sample_grid(self, nx: int, ny: int) -> Iterator[Point]:
        """Yield an ``nx`` x ``ny`` grid of interior points (for tests)."""
        for i in range(nx):
            for j in range(ny):
                fx = (i + 0.5) / nx
                fy = (j + 0.5) / ny
                yield Point(
                    self.min_x + fx * self.width,
                    self.min_y + fy * self.height,
                    self.level,
                )


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of two points on the same level."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0, a.level)
