"""Exporters: JSON-lines traces, human-readable trees, metrics CSV.

Three output shapes, all documented in ``docs/OBSERVABILITY.md``:

* **JSON-lines trace** — one span object per line in start order
  (:func:`write_trace_jsonl`), round-tripped by
  :func:`read_trace_jsonl`.  The schema is
  :meth:`repro.obs.trace.SpanRecord.to_dict`.
* **tree dump** — :func:`format_trace_tree` renders the span forest
  with durations and the biggest counter deltas, for eyeballing where
  a query spent its time.
* **metrics CSV** — :func:`write_metrics_csv` flattens a
  :meth:`repro.obs.metrics.MetricsRegistry.snapshot` into one row per
  instrument (the same CSV conventions as the bench harness;
  re-exported by :mod:`repro.bench.reporting`), round-tripped by
  :func:`read_metrics_csv`.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from .metrics import Histogram, MetricsRegistry
from .trace import SpanRecord, Tracer

__all__ = [
    "write_trace_jsonl",
    "read_trace_jsonl",
    "format_trace_tree",
    "METRICS_CSV_COLUMNS",
    "write_metrics_csv",
    "read_metrics_csv",
]


def _records(
    source: Union[Tracer, Iterable[SpanRecord]],
) -> List[SpanRecord]:
    if isinstance(source, Tracer):
        return source.sorted_records()
    return sorted(source, key=lambda record: record.index)


# ---------------------------------------------------------------------------
# JSON-lines traces
# ---------------------------------------------------------------------------
def write_trace_jsonl(
    source: Union[Tracer, Iterable[SpanRecord]], path: Path
) -> int:
    """Write spans as JSON lines (start order); returns the span count.

    Accepts a :class:`Tracer` or an iterable of records, so merged
    multi-process traces export the same way as single-process ones.
    """
    records = _records(source)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        for record in records:
            json.dump(record.to_dict(), handle, sort_keys=True)
            handle.write("\n")
    return len(records)


def read_trace_jsonl(path: Path) -> List[SpanRecord]:
    """Inverse of :func:`write_trace_jsonl` (blank lines tolerated)."""
    records: List[SpanRecord] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_dict(json.loads(line)))
    return records


# ---------------------------------------------------------------------------
# Human-readable tree
# ---------------------------------------------------------------------------
def _escape_cell(text: str) -> str:
    """Make a name or attribute value safe for one-line formats.

    Control characters that would break the tree's one-line-per-span
    invariant are escaped (``\\n``, ``\\r``, ``\\t``, and the escape
    character itself).
    """
    return (
        text.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


def format_trace_tree(
    source: Union[Tracer, Iterable[SpanRecord]],
    counters: int = 3,
) -> str:
    """Render the span forest, one line per span.

    Indentation follows span depth; each line shows the duration in
    milliseconds, span attributes, and the ``counters`` largest
    counter deltas.  Multi-process traces interleave by merge order
    and tag spans from foreign pids.
    """
    records = _records(source)
    if not records:
        return "(empty trace)"
    own_pid = records[0].pid
    lines: List[str] = []
    for record in records:
        parts = [
            f"{'  ' * record.depth}{_escape_cell(record.name)}",
            f"{record.duration * 1000:.2f}ms",
        ]
        if record.pid != own_pid:
            parts.append(f"pid={record.pid}")
        for key, value in sorted(record.attrs.items()):
            parts.append(
                f"{_escape_cell(str(key))}={_escape_cell(str(value))}"
            )
        top = sorted(
            record.counters.items(),
            key=lambda item: (-abs(item[1]), item[0]),
        )[:counters]
        for key, value in top:
            parts.append(f"{key}={value:+g}")
        lines.append("  ".join(parts))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Metrics CSV
# ---------------------------------------------------------------------------
METRICS_CSV_COLUMNS = (
    "metric", "type", "value", "count", "sum", "min", "max",
    "p50", "p95",
)


def _fmt_stat(value: float) -> str:
    """Render one histogram statistic cell deterministically.

    Non-finite bounds get fixed spellings (``NaN`` / ``Inf`` /
    ``-Inf``) rather than platform/format-dependent ones; Python's
    ``float()`` parses all three back, so round-trips are exact.
    """
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Inf" if value > 0 else "-Inf"
    return f"{value:.9g}"


def write_metrics_csv(
    source: Union[MetricsRegistry, Dict], path: Path
) -> int:
    """Write a metrics snapshot as CSV; returns the row count.

    One row per instrument, columns :data:`METRICS_CSV_COLUMNS`:
    counters and gauges fill ``value``; histograms fill ``count`` /
    ``sum`` / ``min`` / ``max`` and the reservoir-estimated ``p50`` /
    ``p95``.  Rows are sorted by (type, metric) so diffs are stable.
    """
    snapshot = (
        source.snapshot()
        if isinstance(source, MetricsRegistry)
        else source
    )
    rows: List[Sequence[object]] = []
    for name, payload in sorted(snapshot.get("counters", {}).items()):
        rows.append(
            (name, "counter", payload["value"], "", "", "", "", "", "")
        )
    for name, payload in sorted(snapshot.get("gauges", {}).items()):
        rows.append(
            (name, "gauge", payload["value"], "", "", "", "", "", "")
        )
    for name, payload in sorted(snapshot.get("histograms", {}).items()):
        reservoir = Histogram()
        for sample in payload["reservoir"]:
            reservoir.record(sample)
        empty = not payload["count"]
        rows.append(
            (
                name, "histogram", "",
                payload["count"],
                _fmt_stat(payload["sum"]),
                "" if empty else _fmt_stat(payload["min"]),
                "" if empty else _fmt_stat(payload["max"]),
                "" if empty else _fmt_stat(reservoir.percentile(0.5)),
                "" if empty else _fmt_stat(reservoir.percentile(0.95)),
            )
        )
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(METRICS_CSV_COLUMNS)
        writer.writerows(rows)
    return len(rows)


def read_metrics_csv(path: Path) -> Dict[str, Dict[str, object]]:
    """Load a :func:`write_metrics_csv` file as ``{metric: row}``.

    Numeric fields come back as floats (counters/gauges under
    ``"value"``, histograms under ``"count"``/``"sum"``/``"min"``/
    ``"max"``/``"p50"``/``"p95"``); absent fields are omitted.
    """
    out: Dict[str, Dict[str, object]] = {}
    # newline="" hands line splitting to the csv module, so quoted
    # fields containing \r or \n survive the round trip untranslated.
    with open(path, newline="") as handle:
        for record in csv.DictReader(handle):
            row: Dict[str, object] = {"type": record["type"]}
            for column in (
                "value", "count", "sum", "min", "max", "p50", "p95"
            ):
                text = record.get(column, "")
                if text != "" and text is not None:
                    row[column] = float(text)
            out[record["metric"]] = row
    return out
