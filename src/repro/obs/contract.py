"""The instrumentation contract: every span and metric the library emits.

This module is the machine-readable half of ``docs/OBSERVABILITY.md``:
the tables there are generated from — and CI-checked against — these
dictionaries (``tools/check_docs.py --contract``), so documented names
cannot drift from emitted names.

Stability guarantee: names listed here are **stable** — they only
change with a major version bump and a CHANGELOG entry.  New spans and
metrics may be *added* in minor versions.  Anything a library emits
must appear here; the observability integration tests enforce the
subset relation on real traced runs.

Units: ``seconds`` are wall time from a monotonic clock; counter-style
units (``queries``, ``entries``, ...) are exact event counts, never
sampled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["SpanSpec", "MetricSpec", "SPANS", "METRICS"]


@dataclass(frozen=True)
class SpanSpec:
    """Documentation record for one span name."""

    name: str
    fires: str


@dataclass(frozen=True)
class MetricSpec:
    """Documentation record for one metric name."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str
    fires: str


def _spans(*specs: SpanSpec) -> Dict[str, SpanSpec]:
    return {spec.name: spec for spec in specs}


def _metrics(*specs: MetricSpec) -> Dict[str, MetricSpec]:
    return {spec.name: spec for spec in specs}


SPANS: Dict[str, SpanSpec] = _spans(
    SpanSpec(
        "index.build",
        "once per VIP-tree construction (whole build)",
    ),
    SpanSpec(
        "index.build.nodes",
        "child of index.build: node-hierarchy construction",
    ),
    SpanSpec(
        "index.build.matrices",
        "child of index.build: access-door row and leaf-matrix fill",
    ),
    SpanSpec(
        "index.kernels.pack",
        "once per lazy dense-array kernel pack build (first "
        "kernel-enabled engine on a tree, or after invalidation)",
    ),
    SpanSpec(
        "query.efficient.minmax",
        "once per efficient MinMax query (Algorithms 2-3)",
    ),
    SpanSpec(
        "query.efficient.mindist",
        "once per efficient MinDist query (Section 7)",
    ),
    SpanSpec(
        "query.efficient.maxsum",
        "once per efficient MaxSum query (Section 7)",
    ),
    SpanSpec(
        "query.baseline.minmax",
        "once per modified-MinMax baseline query (Algorithm 1)",
    ),
    SpanSpec(
        "ea.prephase",
        "child of query.efficient.*: Algorithm 2 pre-phase (clients "
        "located inside facility partitions)",
    ),
    SpanSpec(
        "ea.stream",
        "child of query.efficient.*: Algorithm 3 traversal loop "
        "(index descent, facility retrieval, pruning, refinement)",
    ),
    SpanSpec(
        "baseline.nearest_existing",
        "child of query.baseline.minmax: nearest-existing NN pass and "
        "the sorted list Ls",
    ),
    SpanSpec(
        "baseline.refine",
        "child of query.baseline.minmax: CA construction and the "
        "client-by-client refinement (rules 3a/3b)",
    ),
    SpanSpec(
        "baseline.finalize",
        "child of query.baseline.minmax: Find_Ans and the exact "
        "post-hoc objective",
    ),
    SpanSpec(
        "session.query",
        "once per QuerySession.query (wraps the solver span)",
    ),
    SpanSpec(
        "parallel.run",
        "once per run_batch_parallel call with workers > 1",
    ),
    SpanSpec(
        "parallel.prepare",
        "child of parallel.run: sharding plus index snapshot/fork "
        "setup, before the pool starts",
    ),
    SpanSpec(
        "parallel.shard",
        "in each worker, once per executed shard (its records are "
        "absorbed into the parent trace tagged with the worker pid "
        "and the shard's request ids)",
    ),
    SpanSpec(
        "parallel.merge",
        "child of parallel.run: result reassembly and counter/metric "
        "merging after all shards returned",
    ),
    SpanSpec(
        "explain.query",
        "once per EXPLAIN-profiled query (engine.explain, an "
        "explain-mode session query, or ifls explain); wraps the "
        "solver span and anchors the report's counter attribution",
    ),
    SpanSpec(
        "perfgate.suite",
        "once per perf-gate suite execution (baseline recording or "
        "comparison run)",
    ),
    SpanSpec(
        "report.generate",
        "once per EXPERIMENTS.md composition (ifls report, regenerate "
        "or --check; wraps every section generator)",
    ),
    SpanSpec(
        "stream.event",
        "once per ClientEvent applied to a ContinuousQuery "
        "(incremental or oracle mode; wraps any solver span the "
        "event triggers)",
    ),
    SpanSpec(
        "service.request",
        "once per HTTP request the query service answers (any "
        "endpoint, error responses included; tagged with the minted "
        "request_id)",
    ),
    SpanSpec(
        "service.batch.flush",
        "once per coalesced batch flushed onto a pooled session "
        "(wraps the executor call answering the batch; tagged with "
        "the batch members' request ids)",
    ),
    SpanSpec(
        "service.pool.checkout",
        "once per session borrowed from the service pool (wraps the "
        "checkout wait; tagged with the borrowing flush's request "
        "ids)",
    ),
)


METRICS: Dict[str, MetricSpec] = _metrics(
    MetricSpec(
        "query.count", "counter", "queries",
        "every answered query (efficient or baseline, any objective)",
    ),
    MetricSpec(
        "query.improved", "counter", "queries",
        "answered queries whose result places a new facility",
    ),
    MetricSpec(
        "query.no_improvement", "counter", "queries",
        "answered queries normalised to NO_IMPROVEMENT",
    ),
    MetricSpec(
        "query.seconds", "histogram", "seconds",
        "per-query wall time (solver only, excluding index build)",
    ),
    MetricSpec(
        "query.clients", "histogram", "clients",
        "per-query |C|",
    ),
    MetricSpec(
        "query.pruned_clients", "histogram", "clients",
        "per-query clients pruned/settled (Lemma 5.1)",
    ),
    MetricSpec(
        "query.distance_computations", "histogram", "computations",
        "per-query matrix-resolved distance computations",
    ),
    MetricSpec(
        "index.build.seconds", "histogram", "seconds",
        "per VIP-tree construction wall time",
    ),
    MetricSpec(
        "index.kernels.pack.seconds", "histogram", "seconds",
        "per kernel-pack build wall time (lazy, once per tree until "
        "invalidated)",
    ),
    MetricSpec(
        "cache.entries", "gauge", "entries",
        "distance-memo entries after the most recent session query",
    ),
    MetricSpec(
        "cache.evictions", "counter", "evictions",
        "memo entries evicted under a max_cache_entries budget",
    ),
    MetricSpec(
        "parallel.batches", "counter", "batches",
        "every run_batch_parallel call with workers > 1",
    ),
    MetricSpec(
        "parallel.shards", "counter", "shards",
        "every shard executed by a pool worker",
    ),
    MetricSpec(
        "parallel.workers", "gauge", "processes",
        "pool size of the most recent parallel batch",
    ),
    MetricSpec(
        "parallel.shard.seconds", "histogram", "seconds",
        "per-shard execution wall time (inside the worker)",
    ),
    MetricSpec(
        "parallel.shard.queue_wait_seconds", "histogram", "seconds",
        "per-shard wait between submission and worker pickup "
        "(wall-clock based; approximate across processes)",
    ),
    MetricSpec(
        "parallel.merge.seconds", "histogram", "seconds",
        "per-batch result reassembly and statistics merge time",
    ),
    MetricSpec(
        "explain.reports", "counter", "reports",
        "every ExplainReport built by the EXPLAIN profiler",
    ),
    MetricSpec(
        "perfgate.comparisons", "counter", "comparisons",
        "every baseline-vs-current perf-gate comparison",
    ),
    MetricSpec(
        "perfgate.drifted_metrics", "counter", "metrics",
        "metrics flagged outside tolerance by a perf-gate comparison",
    ),
    MetricSpec(
        "report.sections", "counter", "sections",
        "every Markdown section rendered into a composed report",
    ),
    MetricSpec(
        "stream.events", "counter", "events",
        "every ClientEvent applied to a ContinuousQuery",
    ),
    MetricSpec(
        "stream.groups.reevaluated", "counter", "groups",
        "partition groups handed to the solver while answering an "
        "event (partial and full recomputes)",
    ),
    MetricSpec(
        "stream.groups.skipped", "counter", "groups",
        "partition groups excluded from an event's answer (settled "
        "by Lemma 5.1, or all of them on a skipped event)",
    ),
    MetricSpec(
        "stream.full_recomputes", "counter", "events",
        "events answered by a from-scratch recompute (oracle mode, "
        "first answers, and failed incremental reductions)",
    ),
    MetricSpec(
        "service.requests", "counter", "requests",
        "every HTTP request the query service answered (any "
        "endpoint, error responses included)",
    ),
    MetricSpec(
        "service.errors", "counter", "requests",
        "requests answered with a non-2xx status (timeouts "
        "included)",
    ),
    MetricSpec(
        "service.timeouts", "counter", "requests",
        "requests answered with HTTP 504 after exceeding their "
        "timeout",
    ),
    MetricSpec(
        "service.request.seconds", "histogram", "seconds",
        "per-request wall time from parsed head to rendered "
        "response",
    ),
    MetricSpec(
        "service.batch.size", "histogram", "queries",
        "queries per coalesced batch flush",
    ),
    MetricSpec(
        "service.batch.flush.seconds", "histogram", "seconds",
        "per-flush wall time answering one coalesced batch",
    ),
    MetricSpec(
        "service.pool.sessions", "gauge", "sessions",
        "live sessions of the service's pool after the most recent "
        "checkout",
    ),
    MetricSpec(
        "service.pool.evictions", "counter", "sessions",
        "idle sessions whose memos were dropped under the pool's "
        "cache-byte budget",
    ),
    MetricSpec(
        "flight.records", "counter", "spans",
        "every completed span captured by the installed flight "
        "recorder",
    ),
    MetricSpec(
        "flight.dropped", "counter", "spans",
        "ring-buffer slots overwritten before export "
        "(flight-recorder wraparound)",
    ),
    MetricSpec(
        "service.slow_queries", "counter", "requests",
        "flight-recorded spans slower than the recorder's slow-query "
        "threshold",
    ),
    MetricSpec(
        "log.lines", "counter", "lines",
        "every structured JSON log line emitted",
    ),
)
