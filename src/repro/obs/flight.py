"""Always-on flight recorder: a fixed-size ring of finished spans.

The tracer (:mod:`repro.obs.trace`) is opt-in and unbounded — perfect
for a profiling session, useless for the question "what were the last
things this server did before the 504?".  The :class:`FlightRecorder`
answers that question: a **preallocated ring buffer** of the most
recent :class:`~repro.obs.trace.SpanRecord` objects, cheap enough to
leave on in production (O(1) append under one lock, no per-record
allocation beyond the record itself, which instrumentation already
builds).

Two capture paths feed the ring:

* while a :class:`~repro.obs.trace.Tracer` is installed, every span it
  finishes is *forwarded* here as well (same record object);
* while tracing is **off**, the module-level ``trace.span()`` function
  routes through :meth:`FlightRecorder.span`, which records flat
  (parentless, depth-0) spans — so the recorder sees traffic even when
  nobody asked for a trace.

A configurable **slow-query log** rides along: records matching
``slow_names`` whose duration meets ``slow_threshold_seconds`` are
copied into a small bounded deque and counted on the
``service.slow_queries`` metric.  Ring accounting is exported on the
``flight.records`` / ``flight.dropped`` counters; both are bumped
inside the recorder's lock so concurrent tests can assert exact
equality against :meth:`dropped` / :meth:`appended`.

Enablement mirrors the tracer: :func:`install` / :func:`uninstall` /
:func:`active` / :func:`use` manage a process-global recorder and keep
the trace module's forwarding sink in sync.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional, Sequence

from . import metrics as _metrics
from . import trace as _trace
from .trace import SpanRecord

__all__ = [
    "FlightRecorder",
    "DEFAULT_CAPACITY",
    "DEFAULT_SLOW_NAMES",
    "install",
    "uninstall",
    "active",
    "use",
]

DEFAULT_CAPACITY = 256

# Spans eligible for the slow-query log by default: the service's
# per-request envelope and the library's per-query span.
DEFAULT_SLOW_NAMES = ("service.request", "session.query")


class _FlightSpan:
    """A flat span recorded straight into the ring (tracing is off)."""

    __slots__ = ("_recorder", "name", "_stats", "attrs", "_start",
                 "_before")

    def __init__(
        self,
        recorder: "FlightRecorder",
        name: str,
        stats: Optional[Any],
        attrs: Dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self.name = name
        self._stats = stats
        self.attrs = attrs
        self._start = 0.0
        self._before: Optional[Dict[str, float]] = None

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_FlightSpan":
        if self._stats is not None:
            self._before = dict(self._stats.snapshot())
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        finished = time.perf_counter()
        counters: Dict[str, float] = {}
        if self._before is not None:
            after = self._stats.snapshot()
            before = self._before
            for key, value in after.items():
                delta = value - before.get(key, 0)
                if delta:
                    counters[key] = delta
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        recorder = self._recorder
        recorder.record(
            SpanRecord(
                index=recorder._next_index(),
                name=self.name,
                parent=None,
                depth=0,
                start=self._start - recorder.epoch,
                duration=finished - self._start,
                pid=os.getpid(),
                attrs=self.attrs,
                counters=counters,
            )
        )
        return False


class FlightRecorder:
    """Fixed-capacity ring of the most recent finished spans.

    ``capacity`` bounds the ring; once full, each append overwrites the
    oldest slot and counts one drop.  ``slow_threshold_seconds`` (when
    not ``None``) enables the slow-query log for spans named in
    ``slow_names``; the ``slow_capacity`` most recent slow records are
    kept.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slow_threshold_seconds: Optional[float] = None,
        slow_capacity: int = 32,
        slow_names: Sequence[str] = DEFAULT_SLOW_NAMES,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        if slow_capacity < 1:
            raise ValueError(
                f"slow_capacity must be >= 1: {slow_capacity}"
            )
        self.capacity = capacity
        self.slow_threshold_seconds = slow_threshold_seconds
        self.slow_names = frozenset(slow_names)
        self.epoch = time.perf_counter()
        self._ring: List[Optional[SpanRecord]] = [None] * capacity
        self._head = 0  # next slot to write
        self._appended = 0
        self._dropped = 0
        self._slow: Deque[SpanRecord] = deque(maxlen=slow_capacity)
        self._slow_total = 0
        self._lock = threading.Lock()
        self._index = 0

    def _next_index(self) -> int:
        with self._lock:
            index = self._index
            self._index += 1
            return index

    # -- capture --------------------------------------------------------
    def record(self, record: SpanRecord) -> None:
        """Append one finished span to the ring (thread-safe, O(1)).

        The ``flight.records`` / ``flight.dropped`` /
        ``service.slow_queries`` counter bumps happen inside the ring
        lock, so metric values and ring accounting never diverge.
        """
        threshold = self.slow_threshold_seconds
        slow = (
            threshold is not None
            and record.duration >= threshold
            and record.name in self.slow_names
        )
        with self._lock:
            dropped = self._ring[self._head] is not None
            self._ring[self._head] = record
            self._head = (self._head + 1) % self.capacity
            self._appended += 1
            _metrics.add("flight.records")
            if dropped:
                self._dropped += 1
                _metrics.add("flight.dropped")
            if slow:
                self._slow.append(record)
                self._slow_total += 1
                _metrics.add("service.slow_queries")

    def span(self, name: str, stats: Optional[Any] = None, **attrs):
        """Open a flat span recorded into the ring on exit.

        This is the capture path ``trace.span()`` uses while no tracer
        is installed; records carry no parent links (``parent=None``,
        ``depth=0``) because there is no stack to nest under.
        """
        return _FlightSpan(self, name, stats, attrs)

    # -- accounting -----------------------------------------------------
    @property
    def appended(self) -> int:
        """Total records ever appended (monotonic)."""
        with self._lock:
            return self._appended

    @property
    def dropped(self) -> int:
        """Ring slots overwritten before export (wraparound count)."""
        with self._lock:
            return self._dropped

    @property
    def resident(self) -> int:
        """Records currently held in the ring."""
        with self._lock:
            return min(self._appended, self.capacity)

    @property
    def slow_total(self) -> int:
        """Total slow-query records ever captured (monotonic)."""
        with self._lock:
            return self._slow_total

    # -- export ---------------------------------------------------------
    def records(self, last: Optional[int] = None) -> List[SpanRecord]:
        """Resident records, oldest first (optionally only the last N)."""
        with self._lock:
            if self._appended < self.capacity:
                resident = self._ring[: self._appended]
            else:
                resident = (
                    self._ring[self._head:] + self._ring[: self._head]
                )
            out = list(resident)
        if last is not None and last >= 0:
            out = out[len(out) - min(last, len(out)):]
        return out

    def slow_records(self) -> List[SpanRecord]:
        """The retained slow-query records, oldest first."""
        with self._lock:
            return list(self._slow)

    def dump(self, last: Optional[int] = None) -> Dict[str, Any]:
        """JSON-friendly image: resident records plus accounting.

        This is the payload ``GET /debug/flight`` serves and
        ``ifls flight`` renders.
        """
        records = self.records(last=last)
        with self._lock:
            appended = self._appended
            dropped = self._dropped
            slow = list(self._slow)
        return {
            "capacity": self.capacity,
            "appended": appended,
            "dropped": dropped,
            "slow_threshold_seconds": self.slow_threshold_seconds,
            "records": [record.to_dict() for record in records],
            "slow": [record.to_dict() for record in slow],
        }


# ---------------------------------------------------------------------------
# Process-global enablement
# ---------------------------------------------------------------------------
_ACTIVE: Optional[FlightRecorder] = None


def install(
    recorder: Optional[FlightRecorder],
) -> Optional[FlightRecorder]:
    """Make ``recorder`` the process-global flight recorder; returns
    the previous one (``None`` disables recording).  Keeps the trace
    module's forwarding sink in sync."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    _trace.set_flight_sink(recorder)
    return previous


def uninstall() -> Optional[FlightRecorder]:
    """Disable flight recording; returns the recorder that was active."""
    return install(None)


def active() -> Optional[FlightRecorder]:
    """The process-global recorder, or ``None`` when recording is off."""
    return _ACTIVE


@contextmanager
def use(
    recorder: Optional[FlightRecorder],
) -> Iterator[Optional[FlightRecorder]]:
    """Scope-install a recorder, restoring the previous one on exit."""
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)
