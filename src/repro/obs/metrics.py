"""Metrics registry: counters, gauges, bounded-reservoir histograms.

A :class:`MetricsRegistry` aggregates the serving-level view the span
tracer is too fine-grained for: how many queries ran, how the per-query
latency distribution looks, how big the distance caches are, how long
parallel shards waited in the pool queue.  The metric *names* and units
the library reports are the documented contract in
:mod:`repro.obs.contract` / ``docs/OBSERVABILITY.md``.

Three instrument kinds:

* **counter** — a monotonically increasing sum (``query.count``);
* **gauge** — a last-written level sample (``cache.entries``);
* **histogram** — count / sum / min / max plus a *bounded reservoir*
  of the first ``reservoir_limit`` samples, from which percentiles are
  estimated.  Keeping the first N (rather than random sampling) makes
  runs deterministic and costs O(1) per observation.

Merging (``merge_snapshot``) is how per-worker registries fold into
one session-level registry after a parallel batch: counters and
histogram count/sum add, min/max combine, reservoirs concatenate up to
the bound, and gauges take the **maximum** across workers (a gauge is
a per-process level, so the pool-wide view keeps the largest
observation; sums would double-count re-sampled levels).

Like :mod:`repro.obs.trace`, enablement is process-global: library
code reports through the module-level :func:`add` / :func:`record` /
:func:`set_gauge` functions, which are single-global-read no-ops while
no registry is installed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "install",
    "uninstall",
    "active",
    "use",
    "add",
    "record",
    "set_gauge",
]

Number = Union[int, float]

DEFAULT_RESERVOIR_LIMIT = 256


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def add(self, amount: Number = 1) -> None:
        """Increase the counter (``amount`` must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A last-written level sample."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Overwrite the gauge with the current level."""
        self.value = value


class Histogram:
    """Count/sum/min/max plus a bounded first-N sample reservoir."""

    __slots__ = ("count", "total", "minimum", "maximum", "reservoir",
                 "reservoir_limit")

    def __init__(
        self, reservoir_limit: int = DEFAULT_RESERVOIR_LIMIT
    ) -> None:
        if reservoir_limit < 1:
            raise ValueError("reservoir_limit must be >= 1")
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.reservoir: List[float] = []
        self.reservoir_limit = reservoir_limit

    def record(self, value: Number) -> None:
        """Observe one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self.reservoir) < self.reservoir_limit:
            self.reservoir.append(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the reservoir.

        Nearest-rank on the sorted reservoir; exact while fewer than
        ``reservoir_limit`` samples were observed, an estimate over the
        first N afterwards.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1]: {q}")
        if not self.reservoir:
            return 0.0
        ordered = sorted(self.reservoir)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use."""

    def __init__(
        self, reservoir_limit: int = DEFAULT_RESERVOIR_LIMIT
    ) -> None:
        self.reservoir_limit = reservoir_limit
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instrument access (create on first use) -----------------------
    def counter(self, name: str) -> Counter:
        """The named counter (created at zero on first access)."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The named gauge (created at zero on first access)."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The named histogram (created empty on first access)."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(
                self.reservoir_limit
            )
        return instrument

    # -- reporting shorthands ------------------------------------------
    def add(self, name: str, amount: Number = 1) -> None:
        """Increment the named counter."""
        self.counter(name).add(amount)

    def record(self, name: str, value: Number) -> None:
        """Observe a sample on the named histogram."""
        self.histogram(name).record(value)

    def set_gauge(self, name: str, value: Number) -> None:
        """Set the named gauge."""
        self.gauge(name).set(value)

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """Plain-data image of every instrument (JSON/CSV friendly).

        Schema::

            {"counters":   {name: {"value": n}},
             "gauges":     {name: {"value": x}},
             "histograms": {name: {"count": n, "sum": s,
                                   "min": lo, "max": hi,
                                   "reservoir": [...]}}}
        """
        return {
            "counters": {
                name: {"value": counter.value}
                for name, counter in self.counters.items()
            },
            "gauges": {
                name: {"value": gauge.value}
                for name, gauge in self.gauges.items()
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "sum": hist.total,
                    "min": hist.minimum,
                    "max": hist.maximum,
                    "reservoir": list(hist.reservoir),
                }
                for name, hist in self.histograms.items()
            },
        }

    def merge_snapshot(
        self, snapshot: Dict[str, Dict[str, Dict[str, object]]]
    ) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this
        registry: counters and histogram count/sum add, min/max
        combine, reservoirs concatenate up to the bound, gauges take
        the maximum (see module docstring)."""
        for name, payload in snapshot.get("counters", {}).items():
            self.counter(name).add(payload["value"])
        for name, payload in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if payload["value"] > gauge.value:
                gauge.set(payload["value"])
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += payload["count"]
            hist.total += payload["sum"]
            if payload["count"]:
                if payload["min"] < hist.minimum:
                    hist.minimum = payload["min"]
                if payload["max"] > hist.maximum:
                    hist.maximum = payload["max"]
            room = hist.reservoir_limit - len(hist.reservoir)
            if room > 0:
                hist.reservoir.extend(payload["reservoir"][:room])


# ---------------------------------------------------------------------------
# Process-global enablement
# ---------------------------------------------------------------------------
_ACTIVE: Optional[MetricsRegistry] = None


def install(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Make ``registry`` the process-global registry; returns the
    previous one (``None`` disables metrics)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def uninstall() -> Optional[MetricsRegistry]:
    """Disable metrics; returns the registry that was active."""
    return install(None)


def active() -> Optional[MetricsRegistry]:
    """The process-global registry, or ``None`` when metrics are off."""
    return _ACTIVE


def add(name: str, amount: Number = 1) -> None:
    """Increment a counter on the active registry (no-op when off)."""
    registry = _ACTIVE
    if registry is not None:
        registry.add(name, amount)


def record(name: str, value: Number) -> None:
    """Observe a histogram sample on the active registry (no-op when
    off)."""
    registry = _ACTIVE
    if registry is not None:
        registry.record(name, value)


def set_gauge(name: str, value: Number) -> None:
    """Set a gauge on the active registry (no-op when off)."""
    registry = _ACTIVE
    if registry is not None:
        registry.set_gauge(name, value)


@contextmanager
def use(
    registry: Optional[MetricsRegistry],
) -> Iterator[Optional[MetricsRegistry]]:
    """Scope-install a registry, restoring the previous one on exit."""
    previous = install(registry)
    try:
        yield registry
    finally:
        install(previous)
