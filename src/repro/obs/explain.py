"""EXPLAIN reports: a structured account of one IFLS query.

An :class:`ExplainReport` bundles everything the observability layer
knows about a single query into one queryable object:

* **phases** — the query's span tree (:mod:`repro.obs.trace`) with
  per-phase wall time and the :class:`DistanceStats` counter deltas
  each phase paid, plus the *own* share of every delta (the phase's
  counters minus its counter-bearing descendants), so the per-phase
  attribution sums **exactly** to the query's top-level distance
  ledger (``tools/check_counters.py`` enforces this);
* **bound evolution** — the Lemma 5.1 global bound after each solver
  round with the retained/pruned client split
  (:class:`~repro.obs.profile.ProfileCollector`);
* **index visits** — VIP-tree node expansions and access-door widths
  per tree level;
* **cache breakdown** — memo hits versus paid computations, per cache,
  from the same ledger the session layer reports.

Three renderings, following the exporter conventions of
:mod:`repro.obs.exporters`: an aligned text tree
(:func:`format_explain` / :meth:`ExplainReport.describe`), JSON
(:func:`write_explain_json` / :func:`read_explain_json`, schema
version :data:`EXPLAIN_SCHEMA`), and CSV (one row per phase with the
full distance-counter attribution,
:func:`write_explain_csv` / :func:`read_explain_csv`).

Reports are produced by :meth:`repro.core.queries.IFLSEngine.explain`,
``QuerySession(explain=True)`` (serial and sharded-parallel batches),
and the ``ifls explain`` CLI; each assembly increments the
``explain.reports`` contract metric.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from . import metrics as _metrics
from .profile import BoundStep, ProfileCollector
from .trace import SpanRecord

__all__ = [
    "EXPLAIN_SCHEMA",
    "EXPLAIN_CSV_COLUMNS",
    "DISTANCE_COUNTER_KEYS",
    "ExplainPhase",
    "ExplainReport",
    "build_report",
    "format_explain",
    "write_explain_json",
    "read_explain_json",
    "write_explain_csv",
    "read_explain_csv",
]

EXPLAIN_SCHEMA = 1

#: The full :class:`repro.index.distance.DistanceStats` ledger, in
#: declaration order — the fixed counter columns of the CSV rendering.
DISTANCE_COUNTER_KEYS = (
    "distance_computations",
    "d2d_lookups",
    "d2d_cache_hits",
    "imind_calls",
    "imind_cache_hits",
    "imind_node_calls",
    "imind_node_cache_hits",
    "idist_calls",
    "single_door_shortcuts",
    "cache_evictions",
)

EXPLAIN_CSV_COLUMNS = (
    "phase", "depth", "duration_seconds"
) + DISTANCE_COUNTER_KEYS


@dataclass
class ExplainPhase:
    """One span of the explained query, with counter attribution.

    ``counters`` is the span's *inclusive* delta (everything that
    happened while it was open); ``own_counters`` subtracts the
    nearest counter-bearing descendants, so summing ``own_counters``
    over all phases reproduces the root delta exactly.  Spans opened
    without a counter source (e.g. ``session.query``) carry empty
    dicts and attribute nothing.
    """

    index: int
    name: str
    parent: Optional[int]
    depth: int
    duration_seconds: float
    counters: Dict[str, int] = field(default_factory=dict)
    own_counters: Dict[str, int] = field(default_factory=dict)
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "index": self.index,
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "duration_seconds": self.duration_seconds,
            "counters": self.counters,
            "own_counters": self.own_counters,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExplainPhase":
        """Inverse of :meth:`to_dict`."""
        parent = payload.get("parent")
        return cls(
            index=int(payload["index"]),
            name=str(payload["name"]),
            parent=None if parent is None else int(parent),
            depth=int(payload["depth"]),
            duration_seconds=float(payload["duration_seconds"]),
            counters={
                str(k): int(v)
                for k, v in payload.get("counters", {}).items()
            },
            own_counters={
                str(k): int(v)
                for k, v in payload.get("own_counters", {}).items()
            },
            attrs=dict(payload.get("attrs", {})),
        )


@dataclass
class ExplainReport:
    """Everything the profiler learned about one query."""

    label: str
    objective: str
    algorithm: str
    answer: Optional[int]
    objective_value: float
    status: str
    clients_total: int
    clients_pruned: int
    elapsed_seconds: float
    phases: List[ExplainPhase]
    distance_totals: Dict[str, int]
    bound_steps: List[BoundStep]
    bound_rounds: int
    bound_steps_dropped: int
    node_visits: Dict[int, Dict[str, int]]
    index: Optional[int] = None
    cache_entries: Optional[int] = None

    # -- derived views -------------------------------------------------
    def attributed_counters(self) -> Dict[str, int]:
        """Sum of per-phase *own* deltas (non-zero entries only).

        Equals the non-zero entries of :attr:`distance_totals` — the
        attribution invariant checked by ``tools/check_counters.py``.
        """
        summed: Dict[str, int] = {}
        for phase in self.phases:
            for key, value in phase.own_counters.items():
                summed[key] = summed.get(key, 0) + value
        return {key: value for key, value in summed.items() if value}

    @property
    def cache_hits(self) -> int:
        """Memo hits across all three caches."""
        totals = self.distance_totals
        return (
            totals.get("d2d_cache_hits", 0)
            + totals.get("imind_cache_hits", 0)
            + totals.get("imind_node_cache_hits", 0)
        )

    @property
    def cache_hit_rate(self) -> float:
        """Hits per distance request inside this query."""
        requests = (
            self.distance_totals.get("distance_computations", 0)
            + self.cache_hits
        )
        return self.cache_hits / requests if requests else 0.0

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (schema :data:`EXPLAIN_SCHEMA`)."""
        return {
            "schema": EXPLAIN_SCHEMA,
            "label": self.label,
            "objective": self.objective,
            "algorithm": self.algorithm,
            "answer": self.answer,
            "objective_value": self.objective_value,
            "status": self.status,
            "clients_total": self.clients_total,
            "clients_pruned": self.clients_pruned,
            "elapsed_seconds": self.elapsed_seconds,
            "phases": [phase.to_dict() for phase in self.phases],
            "distance_totals": self.distance_totals,
            "bound_steps": [
                step.to_dict() for step in self.bound_steps
            ],
            "bound_rounds": self.bound_rounds,
            "bound_steps_dropped": self.bound_steps_dropped,
            "node_visits": {
                str(depth): dict(visit)
                for depth, visit in self.node_visits.items()
            },
            "index": self.index,
            "cache_entries": self.cache_entries,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExplainReport":
        """Inverse of :meth:`to_dict`."""
        schema = payload.get("schema")
        if schema != EXPLAIN_SCHEMA:
            raise ValueError(
                f"unsupported explain schema {schema!r} "
                f"(expected {EXPLAIN_SCHEMA})"
            )
        answer = payload.get("answer")
        index = payload.get("index")
        cache_entries = payload.get("cache_entries")
        return cls(
            label=str(payload["label"]),
            objective=str(payload["objective"]),
            algorithm=str(payload["algorithm"]),
            answer=None if answer is None else int(answer),
            objective_value=float(payload["objective_value"]),
            status=str(payload["status"]),
            clients_total=int(payload["clients_total"]),
            clients_pruned=int(payload["clients_pruned"]),
            elapsed_seconds=float(payload["elapsed_seconds"]),
            phases=[
                ExplainPhase.from_dict(item)
                for item in payload["phases"]
            ],
            distance_totals={
                str(k): int(v)
                for k, v in payload["distance_totals"].items()
            },
            bound_steps=[
                BoundStep.from_dict(item)
                for item in payload.get("bound_steps", [])
            ],
            bound_rounds=int(payload.get("bound_rounds", 0)),
            bound_steps_dropped=int(
                payload.get("bound_steps_dropped", 0)
            ),
            node_visits={
                int(depth): {
                    "nodes": int(visit["nodes"]),
                    "access_doors": int(visit["access_doors"]),
                }
                for depth, visit in payload.get(
                    "node_visits", {}
                ).items()
            },
            index=None if index is None else int(index),
            cache_entries=(
                None if cache_entries is None else int(cache_entries)
            ),
        )

    def describe(self, timings: bool = True, counters: int = 3) -> str:
        """Aligned text rendering (see :func:`format_explain`)."""
        return format_explain(self, timings=timings, counters=counters)


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------
def _own_counters(
    phases: Sequence[ExplainPhase],
) -> None:
    """Fill ``own_counters``: inclusive deltas minus the nearest
    counter-bearing descendants (stats-less spans are transparent)."""
    by_index = {phase.index: phase for phase in phases}
    for phase in phases:
        phase.own_counters = dict(phase.counters)
    for phase in phases:
        if not phase.counters:
            continue
        ancestor = (
            by_index.get(phase.parent)
            if phase.parent is not None
            else None
        )
        while ancestor is not None and not ancestor.counters:
            ancestor = (
                by_index.get(ancestor.parent)
                if ancestor.parent is not None
                else None
            )
        if ancestor is None:
            continue
        own = ancestor.own_counters
        for key, value in phase.counters.items():
            own[key] = own.get(key, 0) - value


def build_report(
    records: Sequence[SpanRecord],
    collector: ProfileCollector,
    distance_totals: Dict[str, int],
    result: Any,
    label: str = "",
    objective: str = "",
    algorithm: str = "",
    cache_entries: Optional[int] = None,
) -> ExplainReport:
    """Assemble an :class:`ExplainReport` for one finished query.

    ``records`` are the spans collected while the query ran (the
    outermost one is expected to be the ``explain.query`` root);
    ``distance_totals`` is the engine's :class:`DistanceStats` delta
    over the same window — the ledger every per-phase attribution must
    sum back to.  ``result`` is the query's
    :class:`~repro.core.result.IFLSResult`.
    """
    phases = [
        ExplainPhase(
            index=record.index,
            name=record.name,
            parent=record.parent,
            depth=record.depth,
            duration_seconds=record.duration,
            counters={
                key: int(value)
                for key, value in record.counters.items()
            },
            attrs=dict(record.attrs),
        )
        for record in sorted(records, key=lambda item: item.index)
    ]
    _own_counters(phases)
    elapsed = phases[0].duration_seconds if phases else 0.0
    stats = result.stats
    report = ExplainReport(
        label=label,
        objective=objective or getattr(stats, "algorithm", ""),
        algorithm=algorithm,
        answer=result.answer,
        objective_value=result.objective,
        status=str(result.status),
        clients_total=stats.clients_total,
        clients_pruned=stats.clients_pruned,
        elapsed_seconds=elapsed,
        phases=phases,
        distance_totals={
            key: int(value)
            for key, value in distance_totals.items()
            if key != "algorithm"
        },
        bound_steps=list(collector.bound_steps),
        bound_rounds=collector.bound_rounds,
        bound_steps_dropped=collector.bound_steps_dropped,
        node_visits=collector.visits_by_depth(),
        cache_entries=cache_entries,
    )
    _metrics.add("explain.reports")
    return report


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------
def _fmt_bound(value: float) -> str:
    return "inf" if not math.isfinite(value) else f"{value:.3f}"


def format_explain(
    report: ExplainReport, timings: bool = True, counters: int = 3
) -> str:
    """Render a report as an aligned text tree.

    ``timings=False`` replaces every wall-time figure with ``-`` so
    the output is byte-stable across runs (used by the golden test);
    ``counters`` bounds how many counter deltas each phase line shows.
    """
    lines: List[str] = []
    head = f"EXPLAIN  {report.algorithm}/{report.objective}"
    if report.label:
        head += f"  label={report.label}"
    lines.append(head)
    answer = (
        f"partition {report.answer}"
        if report.answer is not None
        else "none"
    )
    lines.append(
        f"answer: {answer}  objective={report.objective_value:.4f}  "
        f"({report.status})"
    )
    lines.append(
        f"clients: {report.clients_total} total, "
        f"{report.clients_pruned} pruned (Lemma 5.1)"
    )
    if timings:
        lines.append(f"time: {report.elapsed_seconds * 1000:.2f}ms")

    lines.append("")
    lines.append("phases")
    width = max(
        (len("  " * p.depth + p.name) for p in report.phases),
        default=0,
    )
    for phase in report.phases:
        name = "  " * phase.depth + phase.name
        duration = (
            f"{phase.duration_seconds * 1000:9.2f}ms"
            if timings
            else f"{'-':>11}"
        )
        parts = [f"  {name:<{width}}  {duration}"]
        top = sorted(
            phase.own_counters.items(),
            key=lambda item: (-abs(item[1]), item[0]),
        )
        shown = [
            f"{key}={value:+d}"
            for key, value in top[:counters]
            if value
        ]
        if shown:
            parts.append("  ".join(shown))
        lines.append("  ".join(parts))

    lines.append("")
    lines.append(
        f"Lemma 5.1 bound evolution "
        f"({report.bound_rounds} rounds, "
        f"{len(report.bound_steps)} samples"
        + (
            f", {report.bound_steps_dropped} thinned"
            if report.bound_steps_dropped
            else ""
        )
        + ")"
    )
    if report.bound_steps:
        lines.append(
            f"  {'round':>7}  {'bound':>10}  {'retained':>8}  "
            f"{'pruned':>6}"
        )
        for step in report.bound_steps:
            lines.append(
                f"  {step.round_index:>7}  "
                f"{_fmt_bound(step.bound):>10}  "
                f"{step.retained:>8}  {step.pruned:>6}"
            )
    else:
        lines.append("  (no solver rounds recorded)")

    lines.append("")
    lines.append("VIP-tree visits by level")
    if report.node_visits:
        lines.append(
            f"  {'depth':>5}  {'nodes':>6}  {'access_doors':>12}"
        )
        for depth in sorted(report.node_visits):
            visit = report.node_visits[depth]
            lines.append(
                f"  {depth:>5}  {visit['nodes']:>6}  "
                f"{visit['access_doors']:>12}"
            )
    else:
        lines.append("  (no node expansions recorded)")

    lines.append("")
    lines.append("distance ledger (phase-attributed)")
    attributed = report.attributed_counters()
    shown_keys = [
        key
        for key in DISTANCE_COUNTER_KEYS
        if report.distance_totals.get(key) or attributed.get(key)
    ]
    lines.append(f"  {'counter':<24}  {'total':>8}  {'attributed':>10}")
    for key in shown_keys:
        lines.append(
            f"  {key:<24}  {report.distance_totals.get(key, 0):>8}  "
            f"{attributed.get(key, 0):>10}"
        )

    requests = (
        report.distance_totals.get("distance_computations", 0)
        + report.cache_hits
    )
    lines.append("")
    cache_line = (
        f"cache: {report.cache_hits} hits / {requests} requests "
        f"({report.cache_hit_rate:.0%})"
    )
    if report.cache_entries is not None:
        cache_line += f", {report.cache_entries} entries held"
    lines.append(cache_line)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# JSON / CSV exporters
# ---------------------------------------------------------------------------
def _prepare(path: Path) -> Path:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    return path


def write_explain_json(report: ExplainReport, path: Path) -> None:
    """Write one report as an indented JSON document."""
    path = _prepare(path)
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_explain_json(path: Path) -> ExplainReport:
    """Inverse of :func:`write_explain_json`."""
    with open(path) as handle:
        return ExplainReport.from_dict(json.load(handle))


def write_explain_csv(report: ExplainReport, path: Path) -> int:
    """Write the per-phase attribution as CSV; returns the row count.

    One row per phase, columns :data:`EXPLAIN_CSV_COLUMNS`; counter
    columns hold the phase's *own* (attributed) deltas, so summing a
    column over all rows reproduces the query's ledger total.
    """
    path = _prepare(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(EXPLAIN_CSV_COLUMNS)
        for phase in report.phases:
            writer.writerow(
                (
                    phase.name,
                    phase.depth,
                    f"{phase.duration_seconds:.9g}",
                )
                + tuple(
                    phase.own_counters.get(key, 0)
                    for key in DISTANCE_COUNTER_KEYS
                )
            )
    return len(report.phases)


def read_explain_csv(path: Path) -> List[Dict[str, object]]:
    """Load a :func:`write_explain_csv` file as a list of row dicts."""
    rows: List[Dict[str, object]] = []
    with open(path) as handle:
        for record in csv.DictReader(handle):
            row: Dict[str, object] = {
                "phase": record["phase"],
                "depth": int(record["depth"]),
                "duration_seconds": float(record["duration_seconds"]),
            }
            for key in DISTANCE_COUNTER_KEYS:
                row[key] = int(record[key])
            rows.append(row)
    return rows
