"""Algorithm-internal profiling hooks for the EXPLAIN profiler.

Spans (:mod:`repro.obs.trace`) answer *where the time went*; the
counters attached to them answer *how much distance work each phase
paid*.  What neither can show is the **inside** of the efficient
solver: how the Lemma 5.1 global bound ``Gd`` grew, when clients were
pruned versus retained, and which VIP-tree levels the traversal
actually touched.  :class:`ProfileCollector` records exactly that,
fed by two tiny hook points inside :mod:`repro.core.efficient` (and
the MinDist/MaxSum variants that share its traversal):

* :meth:`ProfileCollector.bound_step` — one sample per solver round:
  the current global bound and the retained/pruned client split.
  Consecutive rounds that change nothing are collapsed, and the
  sample list is bounded (``bound_limit``); when full, the *last*
  slot keeps being overwritten so the final state always survives and
  ``bound_steps_dropped`` says how much of the middle was thinned.
* :meth:`ProfileCollector.node_visit` — one call per VIP-tree node
  expansion, keyed by tree depth, also summing the expanded node's
  access-door count (the width of the matrix rows the expansion may
  touch).

Enablement mirrors :mod:`repro.obs.trace`: a process-global collector
plus :func:`install` / :func:`uninstall` / :func:`active` /
:func:`use`.  Solver code fetches the collector **once per query**
(``profile.active()``) and keeps it in a local; with profiling off
that local is ``None`` and each hook point is a single local-variable
test — the per-dequeue hot loop stays uninstrumented in the disabled
path, same budget as the rest of ``repro.obs``.

Collectors are consumed by :mod:`repro.obs.explain`, which folds the
samples into an :class:`~repro.obs.explain.ExplainReport`.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "BoundStep",
    "ProfileCollector",
    "install",
    "uninstall",
    "active",
    "use",
]


@dataclass
class BoundStep:
    """One recorded solver round of the Lemma 5.1 bound evolution.

    ``round_index`` is 1-based over *all* rounds the solver ran (not
    just the recorded ones); ``bound`` is the global bound after the
    round (``Gd`` for the stream, the drain bound for refinement;
    ``inf`` marks the final queue-exhausted drain).  ``retained`` and
    ``pruned`` split the client set after the round.
    """

    round_index: int
    bound: float
    retained: int
    pruned: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (non-finite bounds become ``None``)."""
        return {
            "round": self.round_index,
            "bound": self.bound if math.isfinite(self.bound) else None,
            "retained": self.retained,
            "pruned": self.pruned,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BoundStep":
        """Inverse of :meth:`to_dict`."""
        bound = payload.get("bound")
        return cls(
            round_index=int(payload["round"]),
            bound=float("inf") if bound is None else float(bound),
            retained=int(payload["retained"]),
            pruned=int(payload["pruned"]),
        )


class ProfileCollector:
    """Collects solver-internal events for one (or more) queries.

    The collector is deliberately dumb — append-only counters and a
    bounded sample list — so the enabled cost stays O(1) per solver
    round.  One collector normally profiles one query
    (:meth:`IFLSEngine.explain` and session explain mode install a
    fresh one per query); reusing it across queries simply
    concatenates rounds.
    """

    def __init__(self, bound_limit: int = 512) -> None:
        if bound_limit < 2:
            raise ValueError("bound_limit must be >= 2")
        self.bound_limit = bound_limit
        self.bound_steps: List[BoundStep] = []
        self.bound_rounds = 0
        self.bound_steps_dropped = 0
        self.node_visits: Dict[int, int] = {}
        self.access_doors: Dict[int, int] = {}

    # -- hook points (called from solver code) -------------------------
    def bound_step(
        self, bound: float, retained: int, pruned: int
    ) -> None:
        """Record one solver round (collapses no-change rounds)."""
        self.bound_rounds += 1
        steps = self.bound_steps
        if steps:
            last = steps[-1]
            if (
                last.bound == bound
                and last.retained == retained
                and last.pruned == pruned
            ):
                return
        step = BoundStep(self.bound_rounds, bound, retained, pruned)
        if len(steps) >= self.bound_limit:
            # Keep the first bound_limit-1 samples plus the latest, so
            # both ends of the evolution survive truncation.
            self.bound_steps_dropped += 1
            steps[-1] = step
        else:
            steps.append(step)

    def node_visit(self, depth: int, access_doors: int) -> None:
        """Record one VIP-tree node expansion at ``depth``."""
        self.node_visits[depth] = self.node_visits.get(depth, 0) + 1
        self.access_doors[depth] = (
            self.access_doors.get(depth, 0) + access_doors
        )

    # -- consumption ---------------------------------------------------
    @property
    def nodes_visited(self) -> int:
        """Total node expansions across all levels."""
        return sum(self.node_visits.values())

    def visits_by_depth(self) -> Dict[int, Dict[str, int]]:
        """``{depth: {"nodes": n, "access_doors": d}}``, sorted."""
        return {
            depth: {
                "nodes": self.node_visits[depth],
                "access_doors": self.access_doors.get(depth, 0),
            }
            for depth in sorted(self.node_visits)
        }


# ---------------------------------------------------------------------------
# Process-global enablement (same pattern as repro.obs.trace)
# ---------------------------------------------------------------------------
_ACTIVE: Optional[ProfileCollector] = None


def install(
    collector: Optional[ProfileCollector],
) -> Optional[ProfileCollector]:
    """Make ``collector`` process-global; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = collector
    return previous


def uninstall() -> Optional[ProfileCollector]:
    """Disable profiling; returns the collector that was active."""
    return install(None)


def active() -> Optional[ProfileCollector]:
    """The process-global collector, or ``None`` when profiling is off.

    Solver code calls this once per query and keeps the result in a
    local variable, so the per-round hook cost with profiling disabled
    is a single local ``is None`` test.
    """
    return _ACTIVE


@contextmanager
def use(
    collector: Optional[ProfileCollector],
) -> Iterator[Optional[ProfileCollector]]:
    """Scope-install a collector, restoring the previous one on exit."""
    previous = install(collector)
    try:
        yield collector
    finally:
        install(previous)
