"""Structured JSON logging: one machine-parseable line per event.

The service used to narrate through ad-hoc ``print`` calls; this
module replaces them with :class:`StructuredLog`, which emits exactly
one JSON object per line — stable keys, sorted, newline-free — so a
log shipper (or a test) can parse every line with ``json.loads``.

The canonical consumer is the query service, which logs one
``service.request`` event per answered request (request id, backend,
algorithm, status, tiers, wall time) and one ``flight.dump`` event per
triggered flight-recorder dump.  Every emitted line counts on the
``log.lines`` metric.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Any, Optional, TextIO

from . import metrics as _metrics

__all__ = ["StructuredLog"]


class StructuredLog:
    """Thread-safe writer of one-JSON-object-per-line events.

    ``stream`` defaults to ``sys.stderr``; the service points it at
    stdout so the startup line doubles as the readiness signal.  Values
    that are not JSON-serialisable are stringified rather than raised
    on — a log line must never take down the request it describes.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self.lines = 0

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event line: ``{"event": ..., **fields}``."""
        payload = {"event": event}
        payload.update(fields)
        line = json.dumps(payload, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()
            self.lines += 1
        _metrics.add("log.lines")
