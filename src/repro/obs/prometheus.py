"""Prometheus text exposition for the metrics registry.

:func:`render_prometheus` turns a
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` into the Prometheus
text exposition format (version 0.0.4) a standard scraper ingests, and
:func:`lint_exposition` is the strict parser CI runs against the live
service's scrape.

Name mangling is exact and documented:

* every character outside ``[a-zA-Z0-9_]`` becomes ``_`` (the
  contract's dotted names — ``service.request.seconds`` — turn into
  ``service_request_seconds``);
* every name gains the ``ifls_`` namespace prefix;
* counters gain the conventional ``_total`` suffix.

So ``query.count`` exports as ``ifls_query_count_total``.  Histograms
export as **summaries**: ``{quantile="0.5"}`` / ``{quantile="0.95"}``
sample lines estimated from the bounded reservoir (``NaN`` while
empty, matching Prometheus client conventions), plus ``_sum`` and
``_count``.  ``HELP`` text comes from the metric contract
(:data:`repro.obs.contract.METRICS`); families are emitted in sorted
mangled-name order, each as one contiguous ``HELP`` / ``TYPE`` /
samples block.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Union

from . import contract as _contract
from .metrics import Histogram, MetricsRegistry

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "mangle_name",
    "render_prometheus",
    "lint_exposition",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?$"
)
_VALID_TYPES = frozenset(
    ("counter", "gauge", "histogram", "summary", "untyped")
)


def mangle_name(name: str, kind: str = "") -> str:
    """The exported family name for a contract metric name.

    ``kind`` is the instrument kind ("counter" adds the ``_total``
    suffix); see the module docstring for the full rules.
    """
    mangled = "ifls_" + _INVALID_CHARS.sub("_", name)
    if kind == "counter" and not mangled.endswith("_total"):
        mangled += "_total"
    return mangled


def _format_value(value: Union[int, float]) -> str:
    """Render one sample value (NaN/Inf spelled Prometheus-style)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _help_text(name: str) -> str:
    spec = _contract.METRICS.get(name)
    if spec is None:
        return f"{name} (not in the metrics contract)"
    return f"{name} ({spec.unit}): {spec.fires}"


def render_prometheus(
    source: Union[MetricsRegistry, Dict],
) -> str:
    """Render a registry (or its snapshot) as exposition text."""
    snapshot = (
        source.snapshot()
        if isinstance(source, MetricsRegistry)
        else source
    )
    families: List[tuple] = []  # (mangled, type, help, sample lines)
    for name, payload in snapshot.get("counters", {}).items():
        family = mangle_name(name, "counter")
        families.append(
            (
                family, "counter", _help_text(name),
                [f"{family} {_format_value(payload['value'])}"],
            )
        )
    for name, payload in snapshot.get("gauges", {}).items():
        family = mangle_name(name, "gauge")
        families.append(
            (
                family, "gauge", _help_text(name),
                [f"{family} {_format_value(payload['value'])}"],
            )
        )
    for name, payload in snapshot.get("histograms", {}).items():
        family = mangle_name(name, "histogram")
        reservoir = Histogram()
        for sample in payload["reservoir"]:
            reservoir.record(sample)
        quantiles = []
        for q, label in ((0.5, "0.5"), (0.95, "0.95")):
            value = (
                reservoir.percentile(q)
                if reservoir.count
                else float("nan")
            )
            quantiles.append(
                f'{family}{{quantile="{label}"}} '
                f"{_format_value(value)}"
            )
        quantiles.append(
            f"{family}_sum {_format_value(payload['sum'])}"
        )
        quantiles.append(
            f"{family}_count {_format_value(payload['count'])}"
        )
        families.append((family, "summary", _help_text(name), quantiles))
    lines: List[str] = []
    for family, kind, help_text, samples in sorted(families):
        lines.append(f"# HELP {family} {_escape_help(help_text)}")
        lines.append(f"# TYPE {family} {kind}")
        lines.extend(samples)
    return "\n".join(lines) + "\n" if lines else ""


def _family_of(name: str, types: Dict[str, str]) -> str:
    """The family a sample name belongs to, given declared TYPEs.

    Summary/histogram child samples (``_sum`` / ``_count`` /
    ``_bucket``) fold into their base family when the base declared a
    compatible TYPE.
    """
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("summary", "histogram"):
                return base
    return name


def lint_exposition(text: str) -> List[str]:
    """Strictly lint exposition text; returns one string per problem.

    Enforced rules (a superset of what real scrapers tolerate, so CI
    catches sloppiness before a scraper has to):

    * every ``HELP`` / ``TYPE`` line is well-formed, at most one of
      each per family, and both precede the family's samples;
    * every sample line parses, has a valid metric name and a valid
      float value, and follows a ``TYPE`` (and ``HELP``) declaration
      for its family;
    * each family's samples form one contiguous block — no
      interleaving between families, no duplicate family blocks.
    """
    problems: List[str] = []
    helped: Dict[str, int] = {}
    types: Dict[str, str] = {}
    sampled: Dict[str, bool] = {}  # family -> block still open
    current: Optional[str] = None

    def close_current() -> None:
        nonlocal current
        if current is not None:
            sampled[current] = False
            current = None

    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            close_current()
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    problems.append(
                        f"line {number}: malformed {parts[1]} line"
                    )
                    continue
                family = parts[2]
                if not _METRIC_NAME.match(family):
                    problems.append(
                        f"line {number}: invalid metric name "
                        f"{family!r}"
                    )
                    continue
                if family in sampled:
                    problems.append(
                        f"line {number}: {parts[1]} for {family} "
                        f"after its samples"
                    )
                close_current()
                if parts[1] == "HELP":
                    if family in helped:
                        problems.append(
                            f"line {number}: duplicate HELP for "
                            f"{family} (first at line "
                            f"{helped[family]})"
                        )
                    helped[family] = number
                else:
                    if family in types:
                        problems.append(
                            f"line {number}: duplicate TYPE for "
                            f"{family}"
                        )
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _VALID_TYPES:
                        problems.append(
                            f"line {number}: invalid TYPE {kind!r} "
                            f"for {family}"
                        )
                    types[family] = kind
            continue  # other comments are legal and ignored
        match = _SAMPLE.match(line.strip())
        if not match:
            problems.append(
                f"line {number}: unparseable sample line: "
                f"{line.strip()!r}"
            )
            close_current()
            continue
        name = match.group("name")
        value = match.group("value")
        if value not in ("NaN", "+Inf", "-Inf", "Inf"):
            try:
                float(value)
            except ValueError:
                problems.append(
                    f"line {number}: invalid sample value "
                    f"{value!r} for {name}"
                )
        family = _family_of(name, types)
        if family not in types:
            problems.append(
                f"line {number}: sample for {family} with no "
                f"preceding TYPE"
            )
        elif family not in helped:
            problems.append(
                f"line {number}: sample for {family} with no "
                f"preceding HELP"
            )
        if family in sampled and not sampled[family] and (
            family != current
        ):
            problems.append(
                f"line {number}: samples for {family} interleave "
                f"with another family's block"
            )
        if current is not None and family != current:
            close_current()
        sampled[family] = True
        current = family
    return problems
