"""Span-based tracing for IFLS execution.

A :class:`Tracer` records a tree of **spans** — named, nested wall-time
intervals measured with a monotonic clock — so a single query, a warm
session batch, or a sharded parallel run can be read as a timeline:
where did the time go between index descent, facility retrieval,
pruning, and reassembly.  Each span can additionally snapshot a
counter source (anything with a ``snapshot() -> Dict[str, number]``
method, in practice :class:`repro.index.distance.DistanceStats`) on
entry and exit, attaching the **delta** of every counter that moved to
the finished span — the paper's operation counts, localised to one
phase of the algorithm.

The span and metric *names* the library emits are a documented,
stable contract: see :mod:`repro.obs.contract` and
``docs/OBSERVABILITY.md``.

Enablement is process-global: instrumented code calls the module-level
:func:`span` function, which returns a shared no-op context manager
while no tracer is installed.  The disabled cost is one module-global
read per instrumentation point — instrumentation sits at phase
granularity (per query, per traversal, per shard), never inside the
per-dequeue hot loop, so the disabled path stays within noise of the
uninstrumented code (< 2% on the session benchmark).

Usage::

    from repro.obs import Tracer, trace

    tracer = Tracer()
    with trace.use(tracer):
        engine.query(clients, facilities)
    print(format_trace_tree(tracer.sorted_records()))

Worker processes keep their own tracers; their records are merged into
the parent's via :meth:`Tracer.absorb`, which re-indexes the foreign
spans and parents them under the parent's open span.  Span ``start``
offsets are seconds since the *recording process's* tracer epoch —
monotonic clocks are not comparable across processes, so offsets from
different ``pid`` values must not be compared directly.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

__all__ = [
    "SpanRecord",
    "Tracer",
    "NULL_SPAN",
    "span",
    "install",
    "uninstall",
    "active",
    "use",
    "next_request_id",
    "dedup_request_ids",
    "set_flight_sink",
    "flight_sink",
]


@dataclass
class SpanRecord:
    """One finished span.

    ``start`` is seconds since the recording tracer's epoch (monotonic,
    per process — see module docstring); ``duration`` is the span's
    wall time in seconds.  ``counters`` holds the per-span delta of
    every counter that changed while the span was open (only non-zero
    entries are kept).  ``parent`` is the index of the enclosing span,
    ``None`` for roots.
    """

    index: int
    name: str
    parent: Optional[int]
    depth: int
    start: float
    duration: float
    pid: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the JSON-lines exporter schema)."""
        return {
            "index": self.index,
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "attrs": self.attrs,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(payload["index"]),
            name=str(payload["name"]),
            parent=(
                None
                if payload.get("parent") is None
                else int(payload["parent"])
            ),
            depth=int(payload["depth"]),
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            pid=int(payload["pid"]),
            attrs=dict(payload.get("attrs", {})),
            counters=dict(payload.get("counters", {})),
        )


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attrs) -> None:
        """Ignore attributes (tracing is disabled)."""


NULL_SPAN = _NullSpan()


class _Span:
    """An open span; close it by exiting the ``with`` block."""

    __slots__ = (
        "_tracer", "name", "index", "parent", "depth",
        "_start", "_stats", "_before", "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        stats: Optional[Any],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self._stats = stats
        self.attrs = attrs
        self.index = -1
        self.parent: Optional[int] = None
        self.depth = 0
        self._start = 0.0
        self._before: Optional[Dict[str, float]] = None

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.index = tracer._next_index()
        stack = tracer._stack
        self.parent = stack[-1].index if stack else None
        self.depth = stack[-1].depth + 1 if stack else 0
        stack.append(self)
        if self._stats is not None:
            self._before = dict(self._stats.snapshot())
        self._start = tracer._clock()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        tracer = self._tracer
        finished = tracer._clock()
        counters: Dict[str, float] = {}
        if self._before is not None:
            after = self._stats.snapshot()
            before = self._before
            for key, value in after.items():
                delta = value - before.get(key, 0)
                if delta:
                    counters[key] = delta
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        record = SpanRecord(
            index=self.index,
            name=self.name,
            parent=self.parent,
            depth=self.depth,
            start=self._start - tracer.epoch,
            duration=finished - self._start,
            pid=os.getpid(),
            attrs=self.attrs,
            counters=counters,
        )
        tracer.records.append(record)
        sink = _FLIGHT
        if sink is not None:
            sink.record(record)
        return False


class Tracer:
    """Collects span records for one process.

    ``clock`` is injectable for deterministic tests; it must be
    monotonic.  Records accumulate in completion order; use
    :meth:`sorted_records` for start order (what the exporters emit).
    """

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self._clock = clock
        self.epoch = clock()
        self.records: List[SpanRecord] = []
        self._stack: List[_Span] = []
        self._counter = 0

    def _next_index(self) -> int:
        index = self._counter
        self._counter += 1
        return index

    def span(
        self, name: str, stats: Optional[Any] = None, **attrs
    ) -> _Span:
        """Open a span (use as a context manager).

        ``stats`` is an optional counter source with a ``snapshot()``
        method; its per-span delta lands in ``SpanRecord.counters``.
        Keyword arguments become span attributes.
        """
        return _Span(self, name, stats, attrs)

    def sorted_records(self) -> List[SpanRecord]:
        """Finished spans in start (index) order."""
        return sorted(self.records, key=lambda record: record.index)

    def absorb(self, records: Iterable[SpanRecord]) -> None:
        """Merge foreign span records (e.g. from a worker process).

        Records are re-indexed into this tracer's sequence, internal
        parent links are remapped, and foreign *root* spans are
        parented under this tracer's currently open span (if any) with
        depths shifted accordingly.  ``start`` offsets are kept as
        recorded — they are only comparable within one ``pid``.
        """
        base_parent = (
            self._stack[-1].index if self._stack else None
        )
        base_depth = (
            self._stack[-1].depth + 1 if self._stack else 0
        )
        remap: Dict[int, int] = {}
        for record in sorted(records, key=lambda item: item.index):
            new_index = self._next_index()
            remap[record.index] = new_index
            if record.parent is not None and record.parent in remap:
                parent = remap[record.parent]
                depth = record.depth + base_depth
            else:
                parent = base_parent
                depth = base_depth
            self.records.append(
                SpanRecord(
                    index=new_index,
                    name=record.name,
                    parent=parent,
                    depth=depth,
                    start=record.start,
                    duration=record.duration,
                    pid=record.pid,
                    attrs=dict(record.attrs),
                    counters=dict(record.counters),
                )
            )


# ---------------------------------------------------------------------------
# Process-global enablement
# ---------------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None

# The always-on flight recorder, when one is installed.  Finished spans
# are forwarded to it *in addition to* the active tracer's record list;
# when no tracer is installed the module-level :func:`span` still
# captures flat spans into the sink so the recorder sees traffic even
# with tracing off.  Typed as ``Any`` to avoid a circular import with
# :mod:`repro.obs.flight`; the only requirements are ``record(record)``
# and ``span(name, stats=..., **attrs)``.
_FLIGHT: Optional[Any] = None

_REQUEST_ID_LOCK = threading.Lock()
_REQUEST_ID_COUNT = 0


def next_request_id(prefix: str = "q") -> str:
    """Mint a process-unique, monotonic request id (e.g. ``"r17"``).

    One shared sequence backs every prefix, so ids are unique across
    the service (``"r"``) and library (``"q"``) minting points even
    when both run in one process.
    """
    global _REQUEST_ID_COUNT
    with _REQUEST_ID_LOCK:
        _REQUEST_ID_COUNT += 1
        return f"{prefix}{_REQUEST_ID_COUNT}"


def dedup_request_ids(ids: Iterable[str]) -> tuple:
    """Distinct non-empty request ids, first-seen order preserved.

    The span-attribute spelling shared by every layer that groups
    several correlated queries (shards, pool checkouts, coalesced
    flushes).
    """
    seen: List[str] = []
    for request_id in ids:
        if request_id and request_id not in seen:
            seen.append(request_id)
    return tuple(seen)


def set_flight_sink(sink: Optional[Any]) -> Optional[Any]:
    """Install ``sink`` as the process-global flight recorder; returns
    the previous sink (``None`` disables forwarding)."""
    global _FLIGHT
    previous = _FLIGHT
    _FLIGHT = sink
    return previous


def flight_sink() -> Optional[Any]:
    """The installed flight sink, or ``None``."""
    return _FLIGHT


def install(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Make ``tracer`` the process-global tracer; returns the previous
    one (``None`` disables tracing)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was active."""
    return install(None)


def active() -> Optional[Tracer]:
    """The process-global tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def span(name: str, stats: Optional[Any] = None, **attrs):
    """Open a span on the active tracer (no-op when tracing is off).

    This is the function instrumented library code calls; the disabled
    path is one global read plus returning a shared null object.
    """
    tracer = _ACTIVE
    if tracer is None:
        sink = _FLIGHT
        if sink is None:
            return NULL_SPAN
        return sink.span(name, stats=stats, **attrs)
    return tracer.span(name, stats=stats, **attrs)


@contextmanager
def use(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Scope-install a tracer, restoring the previous one on exit."""
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)
