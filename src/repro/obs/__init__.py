"""repro.obs — zero-dependency observability for the IFLS library.

Three cooperating pieces, all stdlib-only:

* :mod:`repro.obs.trace` — span-based tracing (nested wall-time
  intervals with per-span counter deltas);
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  bounded-reservoir histograms with cross-worker merge semantics;
* :mod:`repro.obs.exporters` — JSON-lines traces, human-readable span
  trees, and metrics CSV snapshots;
* :mod:`repro.obs.flight` — an always-on fixed-size ring buffer of the
  most recent finished spans, with a slow-query log;
* :mod:`repro.obs.logging` — structured one-JSON-object-per-line logs;
* :mod:`repro.obs.prometheus` — Prometheus text exposition rendered
  from a metrics snapshot, plus a strict format lint.

The names the library emits are a documented contract
(:mod:`repro.obs.contract`, ``docs/OBSERVABILITY.md``).  When neither
a tracer nor a registry is installed, every instrumentation point is a
single module-global read — the library's performance is unchanged.

Typical use::

    from repro.obs import observe
    from repro.obs.exporters import format_trace_tree

    with observe() as (tracer, registry):
        session.run(batch, workers=4)
    print(format_trace_tree(tracer))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from . import (
    contract,
    exporters,
    explain,
    flight,
    logging,
    metrics,
    profile,
    prometheus,
    trace,
)
from .explain import ExplainPhase, ExplainReport
from .flight import FlightRecorder
from .logging import StructuredLog
from .metrics import MetricsRegistry
from .profile import ProfileCollector
from .prometheus import render_prometheus
from .trace import SpanRecord, Tracer

__all__ = [
    "contract",
    "explain",
    "exporters",
    "flight",
    "logging",
    "metrics",
    "profile",
    "prometheus",
    "trace",
    "ExplainPhase",
    "ExplainReport",
    "FlightRecorder",
    "MetricsRegistry",
    "ProfileCollector",
    "SpanRecord",
    "StructuredLog",
    "Tracer",
    "render_prometheus",
    "observe",
]


@contextmanager
def observe(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Enable tracing *and* metrics for a scope.

    Installs ``tracer`` and ``registry`` (fresh ones by default) as the
    process-global collectors, yields them as a ``(tracer, registry)``
    pair, and restores the previous collectors on exit.
    """
    if tracer is None:
        tracer = Tracer()
    if registry is None:
        registry = MetricsRegistry()
    with trace.use(tracer), metrics.use(registry):
        yield tracer, registry
