"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failure modes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class VenueError(ReproError):
    """The indoor venue definition is structurally invalid."""


class UnknownEntityError(VenueError, KeyError):
    """A partition, door, or client id does not exist in the venue."""

    def __init__(self, kind: str, entity_id: object) -> None:
        super().__init__(f"unknown {kind}: {entity_id!r}")
        self.kind = kind
        self.entity_id = entity_id


class DisconnectedVenueError(VenueError):
    """The venue's door graph is not connected.

    IFLS queries assume every client can reach every facility; a
    disconnected venue would make some indoor distances infinite.
    """


class IndexError_(ReproError):
    """VIP-tree construction or lookup failed."""


class QueryError(ReproError):
    """An IFLS query was issued with invalid inputs."""


class EmptyCandidateSetError(QueryError):
    """The candidate location set ``Fn`` is empty."""


class UnreachableFacilityError(QueryError):
    """A client cannot reach any facility (infinite indoor distance)."""


class ParallelExecutionError(QueryError):
    """A parallel batch shard failed or its worker process died.

    Raised by :mod:`repro.core.parallel` instead of letting a pool
    failure surface as a hang or a bare ``BrokenProcessPool``: the
    message names the shard and worker count and chains the original
    worker exception as ``__cause__``.
    """
