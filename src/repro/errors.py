"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failure modes below.

Every class carries an ``http_status`` attribute so the query service
(:mod:`repro.service`) maps exceptions to HTTP responses in exactly one
place (:func:`http_status_for`): invalid inputs are client errors
(4xx), execution failures are server errors (5xx), and a request that
outlives its deadline is a gateway timeout (504).  Libraries embedding
repro never need the mapping; it only decides wire status codes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""

    #: HTTP status the query service answers with when this error
    #: escapes a request handler.  Input errors override with 4xx.
    http_status = 500


class VenueError(ReproError):
    """The indoor venue definition is structurally invalid."""

    http_status = 400


class UnknownEntityError(VenueError, KeyError):
    """A partition, door, or client id does not exist in the venue."""

    def __init__(self, kind: str, entity_id: object) -> None:
        super().__init__(f"unknown {kind}: {entity_id!r}")
        self.kind = kind
        self.entity_id = entity_id


class DisconnectedVenueError(VenueError):
    """The venue's door graph is not connected.

    IFLS queries assume every client can reach every facility; a
    disconnected venue would make some indoor distances infinite.
    """


class IndexError_(ReproError):
    """VIP-tree construction or lookup failed."""


class QueryError(ReproError):
    """An IFLS query was issued with invalid inputs."""

    http_status = 400


class EmptyCandidateSetError(QueryError):
    """The candidate location set ``Fn`` is empty."""


class UnreachableFacilityError(QueryError):
    """A client cannot reach any facility (infinite indoor distance)."""


class ParallelExecutionError(QueryError):
    """A parallel batch shard failed or its worker process died.

    Raised by :mod:`repro.core.parallel` instead of letting a pool
    failure surface as a hang or a bare ``BrokenProcessPool``: the
    message names the shard and worker count and chains the original
    worker exception as ``__cause__``.

    Subclasses :class:`QueryError` for backwards compatibility, but it
    describes an *execution* failure, not bad inputs, so the service
    answers it as a server error (500), not a client error.
    """

    http_status = 500


class ServiceError(ReproError):
    """The long-lived query service failed outside any one solver.

    Covers lifecycle problems (pool exhausted and closed, server
    shutting down while requests are queued) and anything else the
    service layer cannot attribute to a malformed request.
    """

    http_status = 500


class ProtocolError(ServiceError):
    """A wire request could not be decoded into a :class:`QueryRequest`.

    Malformed JSON, missing required fields, wrong types — everything
    the service rejects before a solver ever runs.
    """

    http_status = 400


class RequestTimeout(ServiceError):
    """A request exceeded its deadline before the solver finished.

    The service abandons *waiting* for the answer (the computation may
    still complete in its worker and warm the session cache); the
    client receives HTTP 504.
    """

    http_status = 504


def http_status_for(exc: BaseException) -> int:
    """The HTTP status the service answers ``exc`` with.

    The single place wire status codes are decided: library errors use
    their class's ``http_status``; anything else is a 500.
    """
    if isinstance(exc, ReproError):
        return exc.http_status
    return 500
