"""HTTP/JSON wire layer of the query service.

Kept separate from the asyncio plumbing so the codec is unit-testable
without sockets: bytes in, :class:`~repro.core.request.QueryRequest`
out, and the *single* place errors become HTTP status codes
(:func:`repro.errors.http_status_for` — the classes themselves carry
their status).

The server speaks minimal HTTP/1.1: one request per connection
(``Connection: close``), bodies sized by ``Content-Length``.  That is
deliberate — the service's unit of work is a query batch, not a
keep-alive byte stream, and the stdlib-only constraint rules out a
framework.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.request import QueryRequest
from ..core.stream import ClientEvent
from ..errors import ProtocolError, http_status_for
from ..indoor.entities import FacilitySets

__all__ = [
    "HttpRequest",
    "PlainTextBody",
    "error_body",
    "json_response",
    "text_response",
    "render_body",
    "parse_query_payload",
    "parse_batch_payload",
    "parse_stream_open_payload",
    "parse_events_payload",
    "render_response",
    "STATUS_REASONS",
]

MAX_BODY_BYTES = 32 * 1024 * 1024

STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (:class:`ProtocolError` on junk)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not JSON: {exc}")


def parse_head(head: bytes) -> HttpRequest:
    """Parse the request line + headers (everything before the body)."""
    try:
        text = head.decode("latin-1")
        lines = text.split("\r\n")
        method, path, _version = lines[0].split(" ", 2)
    except (ValueError, IndexError) as exc:
        raise ProtocolError(f"malformed request line: {exc}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(
        method=method.upper(), path=path, headers=headers
    )


def content_length(request: HttpRequest) -> int:
    """The declared body size; :class:`ProtocolError` when invalid."""
    raw = request.headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {raw!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(
            f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]"
        )
    return length


def parse_query_payload(payload: Any) -> QueryRequest:
    """Decode one ``POST /query`` body into a request."""
    return QueryRequest.from_payload(payload)


def parse_batch_payload(payload: Any) -> List[QueryRequest]:
    """Decode one ``POST /batch`` body into an ordered request list.

    Accepts either a bare JSON array or ``{"queries": [...]}``.
    """
    if isinstance(payload, dict) and "queries" in payload:
        payload = payload["queries"]
    if not isinstance(payload, list):
        raise ProtocolError(
            "batch payload must be a JSON array (or an object with "
            f"a 'queries' array), got {type(payload).__name__}"
        )
    if not payload:
        raise ProtocolError("batch payload is empty")
    return [QueryRequest.from_payload(item) for item in payload]


def parse_stream_open_payload(
    payload: Any,
) -> Tuple[FacilitySets, bool, str]:
    """Decode one ``POST /stream`` body.

    Returns ``(facilities, incremental, label)``; the facility sets use
    the query wire spelling (sorted id arrays under ``existing`` /
    ``candidates``).
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"stream payload must be an object, got "
            f"{type(payload).__name__}"
        )
    try:
        facilities = FacilitySets(
            frozenset(int(p) for p in payload.get("existing", ())),
            frozenset(int(p) for p in payload.get("candidates", ())),
        )
        return (
            facilities,
            bool(payload.get("incremental", True)),
            str(payload.get("label", "")),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"malformed stream payload: {exc}"
        ) from exc


def parse_events_payload(payload: Any) -> List[ClientEvent]:
    """Decode one ``POST /stream/<id>/events`` body.

    Accepts either a bare JSON array or ``{"events": [...]}``; an empty
    array is valid (an empty batch applies no events).
    """
    if isinstance(payload, dict) and "events" in payload:
        payload = payload["events"]
    if not isinstance(payload, list):
        raise ProtocolError(
            "events payload must be a JSON array (or an object with "
            f"an 'events' array), got {type(payload).__name__}"
        )
    return [ClientEvent.from_payload(item) for item in payload]


@dataclass
class PlainTextBody:
    """A non-JSON response body (e.g. Prometheus exposition text).

    Handlers return one of these instead of a JSON-compatible payload
    when the endpoint negotiated a text representation;
    :func:`render_body` dispatches on the type.
    """

    text: str
    content_type: str = "text/plain; charset=utf-8"


def json_response(
    status: int, payload: Any
) -> bytes:
    """Serialise one HTTP response with a JSON body."""
    body = json.dumps(payload).encode("utf-8")
    reason = STATUS_REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("latin-1")
    return head + body


def text_response(status: int, payload: PlainTextBody) -> bytes:
    """Serialise one HTTP response with a plain-text body."""
    body = payload.text.encode("utf-8")
    reason = STATUS_REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {payload.content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("latin-1")
    return head + body


def render_body(status: int, payload: Any) -> bytes:
    """Serialise a handler's return value, whatever its shape."""
    if isinstance(payload, PlainTextBody):
        return text_response(status, payload)
    return json_response(status, payload)


def error_body(exc: BaseException) -> Tuple[int, Dict[str, Any]]:
    """Map any exception to ``(status, json_body)`` — the one place.

    Library errors carry their own ``http_status``; everything else is
    a 500.  The body names the exception class so clients can branch
    without string matching.
    """
    status = http_status_for(exc)
    return status, {
        "error": type(exc).__name__,
        "detail": str(exc),
        "status": status,
    }


def render_response(
    payload: Any, status: int = 200
) -> bytes:
    """Shorthand for the success path."""
    return json_response(status, payload)


def request_id_path(path: str, prefix: str) -> Optional[str]:
    """Extract the trailing id of ``/explain/<id>``-style paths."""
    if not path.startswith(prefix):
        return None
    rest = path[len(prefix):]
    if not rest or "/" in rest:
        return None
    return rest
