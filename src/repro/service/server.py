"""The asyncio HTTP server of the long-lived IFLS query service.

One :class:`IFLSService` owns a venue opened through
:func:`repro.open_venue`, a :class:`~repro.service.pool.SessionPool`
of warm sessions over the engine's shared
:class:`~repro.index.snapshot.IndexSnapshot`, and a
:class:`~repro.service.batcher.Coalescer` that micro-batches
concurrent traffic into ``QuerySession.run(..., workers=N)`` calls.

Endpoints
---------
``POST /query``
    One :class:`~repro.core.request.QueryRequest` payload in, one
    :class:`~repro.core.request.QueryResponse` payload out.  Single
    queries still travel through the coalescer, so simultaneous
    clients share a flush (and a warm session).
``POST /batch``
    An ordered request array in, ``{"responses": [...]}`` out in the
    same order.
``GET /metrics``
    Live export of the observability contract: the service's
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot, the pool's
    merged distance ledger (with invariant check), pool and batcher
    statistics.
``GET /health``
    Liveness + identity (venue, backend, kernel path, uptime).
``GET /explain/<id>``
    A stored :class:`~repro.obs.explain.ExplainReport` for a query
    submitted with ``"explain": true``; the response's ``explain_id``
    names it.
``POST /stream``
    Open a resident :class:`~repro.core.stream.ContinuousQuery` over a
    facility configuration; answers ``{"stream_id": ...}``.  The
    stream keeps its own warm session off the pool's shared snapshot,
    so distance memos survive across event batches.
``POST /stream/<id>/events``
    Apply an ordered :class:`~repro.core.stream.ClientEvent` array to
    a stream; answers the per-event incremental
    :class:`~repro.core.stream.StreamAnswer` payloads plus cumulative
    stream statistics.  Batches on one stream are serialised; events
    applied before a mid-batch error stay applied.
``GET /stream/<id>`` / ``DELETE /stream/<id>``
    The stream's current answer + statistics, and stream teardown.

Errors map to statuses in exactly one place
(:func:`repro.service.protocol.error_body` over
:func:`repro.errors.http_status_for`): malformed payloads → 400,
timeouts → 504, everything unexpected → 500.  Shutdown is graceful by
default: the listener closes first, in-flight batches drain, then the
pool retires its sessions.
"""

from __future__ import annotations

import asyncio
import sys
import time
import urllib.parse
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.request import QueryRequest, QueryResponse
from ..core.stream import STREAM_FORMAT, ContinuousQuery
from ..errors import (
    ProtocolError,
    QueryError,
    RequestTimeout,
    ServiceError,
)
from ..obs import flight as _flight
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.flight import FlightRecorder
from ..obs.logging import StructuredLog
from ..obs.metrics import MetricsRegistry
from ..obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from .batcher import Coalescer
from .pool import SessionPool
from .protocol import (
    HttpRequest,
    PlainTextBody,
    content_length,
    error_body,
    parse_batch_payload,
    parse_events_payload,
    parse_head,
    parse_query_payload,
    parse_stream_open_payload,
    render_body,
    request_id_path,
)

__all__ = ["IFLSService", "ServiceConfig", "run_service"]

#: How long the server waits for a complete request head + body.
READ_TIMEOUT_SECONDS = 10.0


@dataclass
class ServiceConfig:
    """Tunables of one :class:`IFLSService` instance."""

    host: str = "127.0.0.1"
    port: int = 8337
    pool_size: int = 2
    max_cache_entries: Optional[int] = None
    cache_bytes_budget: Optional[int] = None
    flush_window: float = 0.01
    max_batch: int = 64
    workers: int = 1
    request_timeout: Optional[float] = 30.0
    explain_capacity: int = 128
    stream_capacity: int = 32
    flight_capacity: int = 256
    slow_query_seconds: Optional[float] = 1.0
    flight_dump_last: int = 16
    log_stream: Optional[Any] = None


@dataclass
class _StreamState:
    """One resident continuous query plus its serialisation lock."""

    query: ContinuousQuery
    lock: asyncio.Lock
    label: str


class IFLSService:
    """A venue resident in memory, answering IFLS queries over HTTP.

    Build one from an :class:`~repro.api.Engine`
    (``engine.serve(port=0)``) or straight from a venue source::

        service = repro.open_venue("CPH").serve(port=8337)
        asyncio.run(service.run())

    ``config`` wins when given; otherwise keyword overrides patch a
    default :class:`ServiceConfig`.
    """

    def __init__(
        self,
        engine,
        config: Optional[ServiceConfig] = None,
        **overrides: Any,
    ) -> None:
        if config is not None and overrides:
            raise ServiceError(
                "pass either a ServiceConfig or keyword overrides, "
                "not both"
            )
        self.engine = engine
        self.config = config or ServiceConfig(**overrides)
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder(
            capacity=self.config.flight_capacity,
            slow_threshold_seconds=self.config.slow_query_seconds,
        )
        self.log: Optional[StructuredLog] = (
            StructuredLog(self.config.log_stream)
            if self.config.log_stream is not None
            else None
        )
        self.pool = SessionPool(
            engine.snapshot(),
            size=self.config.pool_size,
            max_cache_entries=self.config.max_cache_entries,
            cache_bytes_budget=self.config.cache_bytes_budget,
        )
        # Flushes get their own executor: on the loop's shared default
        # executor, blocked application threads could starve the very
        # flush that would unblock them.
        self._flush_executor = ThreadPoolExecutor(
            max_workers=self.config.pool_size,
            thread_name_prefix="ifls-flush",
        )
        self.coalescer = Coalescer(
            self._run_batch,
            flush_window=self.config.flush_window,
            max_batch=self.config.max_batch,
            executor=self._flush_executor,
        )
        self._explain_store: "OrderedDict[str, Dict[str, Any]]" = (
            OrderedDict()
        )
        self._explain_seq = 0
        self._streams: "OrderedDict[str, _StreamState]" = (
            OrderedDict()
        )
        self._stream_seq = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._previous_metrics: Optional[MetricsRegistry] = None
        self._previous_flight: Optional[FlightRecorder] = None
        self._owns_metrics = False
        self._owns_flight = False
        self._started_monotonic: Optional[float] = None
        self._inflight = 0
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "IFLSService":
        """Bind the listener; install the service metrics registry and
        the always-on flight recorder."""
        if self._server is not None:
            raise ServiceError("service is already started")
        self._previous_metrics = _metrics.install(self.metrics)
        self._owns_metrics = True
        self._previous_flight = _flight.install(self.flight)
        self._owns_flight = True
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
        )
        self._started_monotonic = time.monotonic()
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        """``http://host:port`` of the running listener."""
        return f"http://{self.config.host}:{self.port}"

    async def run(self) -> None:
        """Start (if needed) and serve until cancelled, then drain."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.shutdown()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting connections; by default drain in-flight work.

        Draining closes the listener first, lets every accepted request
        finish (flushing whatever the coalescer holds), then retires
        the pool.  ``drain=False`` abandons queued work (their futures
        fail with :class:`~repro.errors.ServiceError`).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            await self.coalescer.drain()
            while self._inflight:
                await asyncio.sleep(0.005)
        self.pool.close()
        self._streams.clear()
        self._flush_executor.shutdown(wait=drain)
        if self._owns_flight:
            _flight.install(self._previous_flight)
            self._owns_flight = False
            self._previous_flight = None
        if self._owns_metrics:
            _metrics.install(self._previous_metrics)
            self._owns_metrics = False
            self._previous_metrics = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._inflight += 1
        try:
            payload = await self._respond(reader)
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._inflight -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> bytes:
        """Read one request and produce the full response bytes.

        Every request — error responses included — gets a monotonic
        correlation id (``r…``) minted here; the id tags the
        ``service.request`` span, travels into the coalescer and the
        pool through the request payloads, and names the structured
        log line.  A 5xx answer dumps the flight recorder's tail.
        """
        started = time.perf_counter()
        method, path = "?", "?"
        request_id = _trace.next_request_id("r")
        try:
            request = await self._read_request(reader)
            method, path = request.method, request.path
            with _trace.span(
                "service.request",
                method=method,
                path=path,
                request_id=request_id,
            ):
                status, body = await self._dispatch(
                    request, request_id
                )
        except Exception as exc:  # noqa: BLE001 - the edge maps all
            status, body = error_body(exc)
            _metrics.add("service.errors")
            if isinstance(exc, RequestTimeout):
                _metrics.add("service.timeouts")
        _metrics.add("service.requests")
        elapsed = time.perf_counter() - started
        _metrics.record("service.request.seconds", elapsed)
        self._log_request(
            request_id, method, path, status, elapsed, body
        )
        if status >= 500:
            self._dump_flight(request_id, f"http_{status}")
        return render_body(status, body)

    def _log_request(
        self,
        request_id: str,
        method: str,
        path: str,
        status: int,
        elapsed: float,
        body: Any,
    ) -> None:
        """Emit the one structured JSON log line of a finished request."""
        if self.log is None:
            return
        fields: Dict[str, Any] = {
            "request_id": request_id,
            "method": method,
            "path": path,
            "status": status,
            "seconds": round(elapsed, 6),
            "backend": self.engine.backend,
        }
        if isinstance(body, dict):
            if "error" in body:
                fields["error"] = body["error"]
            if "objective" in body:
                fields["objective"] = body["objective"]
                fields["algorithm"] = "efficient"
            if "answer" in body:
                fields["answer"] = body["answer"]
            if "distance_delta" in body:
                fields["distance_delta"] = body["distance_delta"]
            if "elapsed_seconds" in body:
                fields["solver_seconds"] = body["elapsed_seconds"]
            stats = body.get("stats")
            if isinstance(stats, dict):
                fields["tiers"] = {
                    "skips": stats.get("skips", 0),
                    "partial": stats.get("partial_solves", 0),
                    "full": stats.get("full_recomputes", 0),
                }
        self.log.emit("service.request", **fields)

    def _dump_flight(self, request_id: str, trigger: str) -> None:
        """Log the flight recorder's tail after a server-side failure."""
        if self.log is None:
            return
        dump = self.flight.dump(last=self.config.flight_dump_last)
        self.log.emit(
            "flight.dump",
            request_id=request_id,
            trigger=trigger,
            **dump,
        )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> HttpRequest:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"),
                timeout=READ_TIMEOUT_SECONDS,
            )
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                f"connection closed mid-request ({exc})"
            )
        except asyncio.LimitOverrunError:
            raise ProtocolError("request head too large")
        except asyncio.TimeoutError:
            raise ProtocolError("timed out reading the request")
        request = parse_head(head)
        length = content_length(request)
        if length:
            try:
                request.body = await asyncio.wait_for(
                    reader.readexactly(length),
                    timeout=READ_TIMEOUT_SECONDS,
                )
            except (
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ) as exc:
                raise ProtocolError(
                    f"request body truncated ({exc})"
                )
        return request

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: HttpRequest, request_id: str
    ) -> Tuple[int, Any]:
        path, _, query_string = request.path.partition("?")
        params = urllib.parse.parse_qs(query_string)
        if path == "/query":
            if request.method != "POST":
                return self._method_not_allowed(request)
            query = parse_query_payload(request.json())
            self._validate_for_service(query)
            query = replace(query, request_id=request_id)
            response = await self._answer(query)
            return 200, response.to_payload()
        if path == "/batch":
            if request.method != "POST":
                return self._method_not_allowed(request)
            queries = parse_batch_payload(request.json())
            for query in queries:
                self._validate_for_service(query)
            queries = [
                replace(query, request_id=request_id)
                for query in queries
            ]
            responses = await self._answer_many(queries)
            return 200, {
                "responses": [r.to_payload() for r in responses]
            }
        if path == "/metrics":
            if request.method != "GET":
                return self._method_not_allowed(request)
            if self._wants_prometheus(request, params):
                return 200, PlainTextBody(
                    render_prometheus(self.metrics.snapshot()),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                )
            return 200, self.metrics_payload()
        if path == "/health":
            if request.method != "GET":
                return self._method_not_allowed(request)
            return 200, self.health_payload()
        if path == "/debug/flight":
            if request.method != "GET":
                return self._method_not_allowed(request)
            return 200, self.flight.dump(
                last=self._last_param(params)
            )
        if path == "/stream":
            if request.method != "POST":
                return self._method_not_allowed(request)
            return await self._open_stream(request.json())
        if path.startswith("/stream/"):
            rest = path[len("/stream/"):]
            if rest.endswith("/events"):
                stream_id = rest[: -len("/events")]
                if stream_id and "/" not in stream_id:
                    if request.method != "POST":
                        return self._method_not_allowed(request)
                    return await self._apply_stream_events(
                        stream_id, request.json(), request_id
                    )
            elif rest and "/" not in rest:
                if request.method == "GET":
                    return self._stream_payload(rest)
                if request.method == "DELETE":
                    return self._close_stream(rest)
                return self._method_not_allowed(request)
        explain_id = request_id_path(path, "/explain/")
        if explain_id is not None:
            if request.method != "GET":
                return self._method_not_allowed(request)
            report = self._explain_store.get(explain_id)
            if report is None:
                return 404, {
                    "error": "NotFound",
                    "detail": (
                        f"no stored explain report {explain_id!r}"
                    ),
                    "status": 404,
                }
            return 200, {"explain_id": explain_id, "report": report}
        return 404, {
            "error": "NotFound",
            "detail": f"no route for {request.method} {path}",
            "status": 404,
        }

    @staticmethod
    def _method_not_allowed(
        request: HttpRequest,
    ) -> Tuple[int, Any]:
        return 405, {
            "error": "MethodNotAllowed",
            "detail": (
                f"{request.method} is not supported on "
                f"{request.path}"
            ),
            "status": 405,
        }

    @staticmethod
    def _wants_prometheus(
        request: HttpRequest, params: Dict[str, List[str]]
    ) -> bool:
        """Negotiate the ``GET /metrics`` representation.

        An explicit ``?format=`` parameter wins (``prometheus`` →
        text exposition, anything else → JSON); otherwise an
        ``Accept`` header asking for ``text/plain`` or OpenMetrics
        selects the exposition format.
        """
        fmt = params.get("format")
        if fmt:
            return fmt[-1].lower() == "prometheus"
        accept = request.headers.get("accept", "").lower()
        return "text/plain" in accept or "openmetrics" in accept

    @staticmethod
    def _last_param(
        params: Dict[str, List[str]],
    ) -> Optional[int]:
        """Decode the optional ``?last=N`` of ``GET /debug/flight``."""
        raw = params.get("last")
        if not raw:
            return None
        try:
            value = int(raw[-1])
        except ValueError:
            raise ProtocolError(
                f"bad 'last' parameter {raw[-1]!r}: not an integer"
            )
        if value < 0:
            raise ProtocolError(
                f"bad 'last' parameter {value}: must be >= 0"
            )
        return value

    @staticmethod
    def _validate_for_service(request: QueryRequest) -> None:
        """Reject per-request shapes the batched path cannot answer
        *before* they join a flush (a bad request must never fail its
        co-batched strangers)."""
        if request.algorithm != "efficient":
            raise QueryError(
                "the query service answers the 'efficient' algorithm "
                f"only, got {request.algorithm!r}; use the library "
                "API for baseline/bruteforce runs"
            )

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    async def _answer(self, request: QueryRequest) -> QueryResponse:
        """Submit one request to the coalescer under its timeout."""
        timeout = (
            request.timeout_seconds
            if request.timeout_seconds is not None
            else self.config.request_timeout
        )
        submission = self.coalescer.submit(request)
        if timeout is None:
            return await submission
        try:
            return await asyncio.wait_for(submission, timeout)
        except asyncio.TimeoutError:
            raise RequestTimeout(
                f"query did not complete within {timeout}s"
            )

    async def _answer_many(
        self, requests: List[QueryRequest]
    ) -> List[QueryResponse]:
        outcomes = await asyncio.gather(
            *(self._answer(request) for request in requests),
            return_exceptions=True,
        )
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(outcomes)

    def _run_batch(
        self, requests: List[QueryRequest]
    ) -> List[QueryResponse]:
        """One coalesced flush: answer everything on a pooled session.

        Runs in a worker thread (the coalescer's executor call).  The
        borrowed session is exclusively ours until checkin, so its
        ``DistanceStats`` ledger sees single-threaded increments only;
        the pool folds the delta into its merged ledger afterwards.
        """
        responses: List[Optional[QueryResponse]] = [None] * len(
            requests
        )
        plain = [
            i for i, r in enumerate(requests) if not r.explain
        ]
        explained = [
            i for i, r in enumerate(requests) if r.explain
        ]
        request_ids = _trace.dedup_request_ids(
            request.request_id for request in requests
        )
        with self.pool.session(request_ids=request_ids) as session:
            if plain:
                results = session.run(
                    [requests[i] for i in plain],
                    workers=self.config.workers,
                )
                records = session.take_records()
                for j, i in enumerate(plain):
                    record = (
                        records[j] if j < len(records) else None
                    )
                    responses[i] = QueryResponse.from_result(
                        results[j],
                        requests[i],
                        elapsed_seconds=(
                            record.elapsed_seconds if record else 0.0
                        ),
                        distance_delta=(
                            dict(record.distance_delta)
                            if record
                            else {}
                        ),
                        index=i,
                    )
            for i in explained:
                responses[i] = self._run_explained(
                    session, requests[i], i
                )
        return [r for r in responses if r is not None]

    def _run_explained(
        self, session, request: QueryRequest, index: int
    ) -> QueryResponse:
        """Answer one ``"explain": true`` request, storing its report."""
        session.explain = True
        try:
            result = session.query(
                request.clients,
                request.facilities,
                objective=request.objective,
                options=request.options(),
                label=request.label,
            )
        finally:
            session.explain = False
        report = (
            session.explain_reports.pop()
            if session.explain_reports
            else None
        )
        records = session.take_records()
        record = records[-1] if records else None
        explain_id = (
            self._store_explain(report.to_dict())
            if report is not None
            else None
        )
        return QueryResponse.from_result(
            result,
            request,
            elapsed_seconds=(
                record.elapsed_seconds if record else 0.0
            ),
            distance_delta=(
                dict(record.distance_delta) if record else {}
            ),
            index=index,
            explain_id=explain_id,
        )

    # ------------------------------------------------------------------
    # Continuous streams
    # ------------------------------------------------------------------
    async def _open_stream(self, payload: Any) -> Tuple[int, Any]:
        """``POST /stream``: open one resident continuous query.

        Each stream gets its own warm session off the pool's shared
        snapshot (venue + tree shared read-only, private distance
        memos), so cross-event cache hits survive between batches
        without contending with the pooled interactive sessions.
        """
        facilities, incremental, label = parse_stream_open_payload(
            payload
        )
        if len(self._streams) >= self.config.stream_capacity:
            raise QueryError(
                f"stream capacity {self.config.stream_capacity} "
                "exhausted; DELETE an open stream first"
            )
        session = self.pool.snapshot.session(
            max_cache_entries=self.config.max_cache_entries,
            keep_records=False,
        )
        query = ContinuousQuery(
            facilities=facilities,
            incremental=incremental,
            session=session,
        )
        self._stream_seq += 1
        stream_id = f"s{self._stream_seq}"
        self._streams[stream_id] = _StreamState(
            query=query, lock=asyncio.Lock(), label=label
        )
        return 200, {
            "stream_id": stream_id,
            "format": STREAM_FORMAT,
            "incremental": incremental,
            "label": label,
        }

    async def _apply_stream_events(
        self, stream_id: str, payload: Any, request_id: str = ""
    ) -> Tuple[int, Any]:
        """``POST /stream/<id>/events``: apply one ordered batch.

        Batches on the same stream serialise on its lock; the blocking
        solver work runs on the flush executor so the event loop stays
        responsive.  A mid-batch error (e.g. removing an unknown
        client) leaves the already-applied prefix applied — events are
        validated before mutation, so the stream state stays coherent.
        The request's correlation id tags every per-event
        ``stream.event`` span of the batch.
        """
        state = self._streams.get(stream_id)
        if state is None:
            return self._stream_not_found(stream_id)
        events = parse_events_payload(payload)
        loop = asyncio.get_running_loop()
        async with state.lock:
            answers = await loop.run_in_executor(
                self._flush_executor,
                state.query.apply_batch,
                events,
                request_id,
            )
        return 200, {
            "stream_id": stream_id,
            "format": STREAM_FORMAT,
            "answers": [a.to_payload() for a in answers],
            "stats": asdict(state.query.stats),
            "client_count": state.query.client_count,
        }

    def _stream_payload(self, stream_id: str) -> Tuple[int, Any]:
        """``GET /stream/<id>``: the current answer + statistics."""
        state = self._streams.get(stream_id)
        if state is None:
            return self._stream_not_found(stream_id)
        query = state.query
        return 200, {
            "stream_id": stream_id,
            "format": STREAM_FORMAT,
            "incremental": query.incremental,
            "label": state.label,
            "client_count": query.client_count,
            "answer": query.answer().to_payload(),
            "stats": asdict(query.stats),
        }

    def _close_stream(self, stream_id: str) -> Tuple[int, Any]:
        """``DELETE /stream/<id>``: drop the stream and its session."""
        state = self._streams.pop(stream_id, None)
        if state is None:
            return self._stream_not_found(stream_id)
        return 200, {
            "stream_id": stream_id,
            "closed": True,
            "events": state.query.stats.events,
        }

    @staticmethod
    def _stream_not_found(stream_id: str) -> Tuple[int, Any]:
        return 404, {
            "error": "NotFound",
            "detail": f"no open stream {stream_id!r}",
            "status": 404,
        }

    def _store_explain(self, report: Dict[str, Any]) -> str:
        """Keep a report retrievable, bounded by ``explain_capacity``."""
        self._explain_seq += 1
        explain_id = f"q{self._explain_seq}"
        self._explain_store[explain_id] = report
        while len(self._explain_store) > self.config.explain_capacity:
            self._explain_store.popitem(last=False)
        return explain_id

    # ------------------------------------------------------------------
    # Introspection payloads
    # ------------------------------------------------------------------
    def health_payload(self) -> Dict[str, Any]:
        """The ``GET /health`` body: liveness plus gauge snapshots of
        the pool, the resident streams, and the flight recorder."""
        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        pool_stats = self.pool.stats()
        return {
            "status": "draining" if self._draining else "ok",
            "venue": self.engine.venue.name,
            "backend": self.engine.backend,
            "use_kernels": self.engine.use_kernels,
            "uptime_seconds": uptime,
            "queries_answered": self.coalescer.queries_answered,
            "pool": {
                "sessions": pool_stats.created,
                "idle": pool_stats.idle,
                "checked_out": pool_stats.checked_out,
                "cache_bytes": pool_stats.cache_bytes,
            },
            "streams": {
                "open": len(self._streams),
                "capacity": self.config.stream_capacity,
            },
            "flight": {
                "capacity": self.flight.capacity,
                "records": self.flight.resident,
                "dropped": self.flight.dropped,
                "slow_queries": self.flight.slow_total,
            },
        }

    def metrics_payload(self) -> Dict[str, Any]:
        """The ``GET /metrics`` body: the live obs-contract export."""
        ledger = self.pool.ledger()
        return {
            "metrics": self.metrics.snapshot(),
            "ledger": ledger,
            "ledger_violations": self.pool.ledger_violations(),
            "pool": asdict(self.pool.stats()),
            "batcher": {
                "batches_flushed": self.coalescer.batches_flushed,
                "queries_answered": self.coalescer.queries_answered,
                "pending": self.coalescer.pending,
            },
            "streams": {
                "open": len(self._streams),
                "capacity": self.config.stream_capacity,
                "events": sum(
                    s.query.stats.events
                    for s in self._streams.values()
                ),
            },
        }


def run_service(
    engine, config: Optional[ServiceConfig] = None, **overrides: Any
) -> None:
    """Blocking convenience runner with signal-driven graceful drain.

    Serves until ``SIGINT``/``SIGTERM`` (or KeyboardInterrupt where
    signal handlers are unavailable), then drains in-flight batches
    before returning — the CLI entry point of ``ifls serve``.
    """
    service = IFLSService(engine, config=config, **overrides)
    if service.log is None:
        # The CLI runner always logs structurally; the first line is
        # the machine-readable ``service.start`` event tooling parses
        # for the bound address (tools/service_smoke.py).
        service.log = StructuredLog(sys.stdout)

    async def _main() -> None:
        import signal

        await service.start()
        assert service.log is not None
        service.log.emit(
            "service.start",
            address=service.address,
            venue=service.engine.venue.name,
            backend=service.engine.backend,
            pool=service.config.pool_size,
            listening=f"listening on {service.address}",
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signame in ("SIGINT", "SIGTERM"):
            try:
                loop.add_signal_handler(
                    getattr(signal, signame), stop.set
                )
            except (NotImplementedError, OSError):
                pass
        server_task = asyncio.ensure_future(service.run())
        stopper = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            {server_task, stopper},
            return_when=asyncio.FIRST_COMPLETED,
        )
        stopper.cancel()
        server_task.cancel()
        await asyncio.gather(server_task, return_exceptions=True)
        await service.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
