"""Request coalescing: micro-batching concurrent queries into sessions.

Concurrent ``POST /batch`` clients each carry a handful of queries; the
efficient way to answer them is *together*, through one warm
``QuerySession.run(batch, workers=N)`` call, so cache warmth and the
parallel executor amortise across requests that arrived within the same
few milliseconds.  :class:`Coalescer` implements that:

* :meth:`submit` parks each request with an ``asyncio`` future on a
  pending list;
* the first arrival starts the flush clock (``flush_window`` seconds);
  the window lets strangers coalesce, and a full batch
  (``max_batch``) flushes immediately;
* one flush takes the whole pending list, answers it in a worker
  thread on a pooled session, and resolves every future with its
  :class:`~repro.core.request.QueryResponse` (or exception — one
  query's failure never poisons its co-batched strangers' event loop,
  though a shared solver error fails the whole flush).

``drain()`` stops intake and flushes what is pending — the graceful-
shutdown hook: in-flight batches complete, queued requests are
answered, and only then does the server close.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, List, Optional, Tuple

from ..core.request import QueryRequest, QueryResponse
from ..errors import ServiceError
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = ["Coalescer"]

#: A runner answers an ordered request list and returns ordered
#: responses (typically SessionPool-backed; runs in a thread).
BatchRunner = Callable[[List[QueryRequest]], List[QueryResponse]]


class Coalescer:
    """An asyncio request-coalescing queue in front of a batch runner.

    Parameters
    ----------
    runner:
        Synchronous callable answering one request list (executed via
        ``loop.run_in_executor``, so it may block).
    flush_window:
        Seconds the first request of a batch waits for company.
        ``0`` still yields once to the loop, coalescing only what is
        already queued.
    max_batch:
        Flush immediately once this many requests are pending.
    executor:
        The executor flushes run on.  The service passes a dedicated
        one: sharing the loop's *default* executor with application
        threads invites starvation (client threads occupying every
        slot while the flush that would unblock them waits in the
        queue).  ``None`` uses the loop default.
    """

    def __init__(
        self,
        runner: BatchRunner,
        flush_window: float = 0.01,
        max_batch: int = 64,
        executor=None,
    ) -> None:
        if flush_window < 0:
            raise ServiceError(
                f"flush_window must be >= 0, got {flush_window}"
            )
        if max_batch < 1:
            raise ServiceError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        self.runner = runner
        self.flush_window = flush_window
        self.max_batch = max_batch
        self.executor = executor
        self._pending: List[
            Tuple[QueryRequest, "asyncio.Future[QueryResponse]"]
        ] = []
        self._flusher: Optional["asyncio.Task[None]"] = None
        self._draining = False
        self._inflight_flushes = 0
        self._flush_wakeup: Optional["asyncio.Event"] = None
        self.batches_flushed = 0
        self.queries_answered = 0

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    async def submit(
        self, request: QueryRequest
    ) -> QueryResponse:
        """Queue one request; resolves with its response after the
        flush that carries it."""
        if self._draining:
            raise ServiceError(
                "service is draining; no new queries accepted"
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[QueryResponse]" = loop.create_future()
        self._pending.append((request, future))
        if self._flush_wakeup is None:
            self._flush_wakeup = asyncio.Event()
        if len(self._pending) >= self.max_batch:
            self._flush_wakeup.set()
        if self._flusher is None or self._flusher.done():
            self._flusher = loop.create_task(self._flush_soon())
        return await future

    async def submit_many(
        self, requests: List[QueryRequest]
    ) -> List[QueryResponse]:
        """Queue a client's whole batch; order of responses matches."""
        return list(
            await asyncio.gather(
                *(self.submit(request) for request in requests)
            )
        )

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    async def _flush_soon(self) -> None:
        """Flush batches until nothing is pending.

        Loops rather than flushing once: requests that arrive while a
        flush is inside the executor see a live flusher task and rely
        on this loop to pick them up afterwards.
        """
        while self._pending:
            if self.flush_window > 0:
                wakeup = self._flush_wakeup
                try:
                    assert wakeup is not None
                    await asyncio.wait_for(
                        wakeup.wait(), timeout=self.flush_window
                    )
                except asyncio.TimeoutError:
                    pass
                wakeup.clear()
            else:
                await asyncio.sleep(0)
            await self._flush_now()

    async def _flush_now(self) -> None:
        batch = self._pending
        self._pending = []
        if not batch:
            return
        loop = asyncio.get_running_loop()
        requests = [request for request, _future in batch]
        started = time.perf_counter()
        self._inflight_flushes += 1
        span_attrs = {"queries": len(requests)}
        request_ids = _trace.dedup_request_ids(
            request.request_id for request in requests
        )
        if request_ids:
            span_attrs["request_ids"] = list(request_ids)
        try:
            with _trace.span("service.batch.flush", **span_attrs):
                responses = await loop.run_in_executor(
                    self.executor, self.runner, requests
                )
        except Exception as exc:
            for _request, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        finally:
            self._inflight_flushes -= 1
            _metrics.record("service.batch.size", len(requests))
            _metrics.record(
                "service.batch.flush.seconds",
                time.perf_counter() - started,
            )
        self.batches_flushed += 1
        self.queries_answered += len(responses)
        for (_request, future), response in zip(batch, responses):
            if not future.done():
                future.set_result(response)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Refuse new work, then flush and await everything pending."""
        self._draining = True
        if self._flusher is not None and not self._flusher.done():
            if self._flush_wakeup is not None:
                self._flush_wakeup.set()
            await self._flusher
        while self._pending:
            await self._flush_now()
        # Let any in-executor flush complete its future resolution.
        while self._inflight_flushes:
            await asyncio.sleep(0.005)

    @property
    def pending(self) -> int:
        """Requests currently waiting for a flush."""
        return len(self._pending)
