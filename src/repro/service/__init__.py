"""Long-lived IFLS query service.

Loads a venue + VIP-tree once and answers IFLS queries over HTTP/JSON
from persistent warm sessions:

* :mod:`repro.service.pool` — per-venue pools of warm
  :class:`~repro.core.session.QuerySession` objects over one shared
  :class:`~repro.index.snapshot.IndexSnapshot`, with per-session
  distance ledgers merged on checkin and cache-budget eviction under
  memory pressure;
* :mod:`repro.service.batcher` — a request-coalescing queue that
  micro-batches concurrent ``POST /batch`` traffic into
  ``QuerySession.run(..., workers=N)`` behind a configurable flush
  window;
* :mod:`repro.service.protocol` — the HTTP/JSON wire layer over the
  shared :class:`~repro.core.request.QueryRequest` /
  :class:`~repro.core.request.QueryResponse` pair, including the
  single exception→status mapping
  (:func:`repro.errors.http_status_for`);
* :mod:`repro.service.server` — the stdlib-``asyncio`` HTTP server
  (``POST /query``, ``POST /batch``, ``GET /metrics``,
  ``GET /health``, ``GET /explain/<id>``) with request timeouts and
  graceful drain on shutdown.

Start one from the CLI (``ifls serve CPH --port 8337``) or
programmatically via :meth:`repro.api.Engine.serve`.
"""

from .batcher import Coalescer
from .pool import PoolStats, SessionPool
from .server import IFLSService, ServiceConfig

__all__ = [
    "Coalescer",
    "IFLSService",
    "PoolStats",
    "ServiceConfig",
    "SessionPool",
]
