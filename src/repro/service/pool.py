"""Per-venue pools of warm query sessions over one shared snapshot.

A long-lived service cannot afford one global session (a single warm
cache would serialise every request behind one lock) or a fresh session
per request (cold caches forfeit the whole point of staying resident).
:class:`SessionPool` keeps up to ``size`` warm
:class:`~repro.core.session.QuerySession` objects over a single
read-only :class:`~repro.index.snapshot.IndexSnapshot`: the venue,
VIP-tree, and kernel pack are shared; every session owns its *own*
distance engine, memo tables, and — critically — its own
``DistanceStats`` ledger.

Ledger discipline
-----------------
Sharing one mutable ``DistanceStats`` across concurrently checked-out
sessions would race increments and break the ledger identities
(``hits + computations == calls``) the whole observability stack is
audited against.  The pool therefore merges per-session *deltas* into
its own ledger at checkin time: each session carries a
``_pool_mark`` — the snapshot of its counters at its previous checkin
— and only the work since then is folded in.  :meth:`ledger` returns
the merged totals (including retired sessions), and the merge preserves
every invariant because it is plain summation of per-session deltas
(see :func:`repro.core.stats.merge_snapshots`).

Memory pressure
---------------
``cache_bytes_budget`` bounds the pool's combined memo footprint: on
every checkin, idle sessions' distance caches are invalidated
oldest-idle-first until the sum of idle cache bytes fits the budget
(the just-returned session is evicted last, keeping the warmest cache
alive).  ``max_cache_entries`` additionally caps each session's memo
table via the engine's own eviction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.session import QuerySession
from ..core.stats import distance_invariant_violations
from ..errors import ServiceError
from ..index.snapshot import IndexSnapshot
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = ["PoolStats", "SessionPool"]


@dataclass
class PoolStats:
    """A point-in-time view of one pool's state."""

    size: int
    created: int
    idle: int
    checked_out: int
    retired: int
    evictions: int
    cache_bytes: int
    queries_answered: int


class SessionPool:
    """A bounded pool of warm sessions over one shared index snapshot.

    Parameters
    ----------
    snapshot:
        The read-only venue + tree image every session shares.
    size:
        Maximum concurrently live sessions.  :meth:`checkout` blocks
        (up to ``checkout_timeout``) when all are out.
    max_cache_entries:
        Per-session memo budget, forwarded to each session's distance
        engine.
    cache_bytes_budget:
        Combined idle-cache byte budget; exceeding it invalidates idle
        sessions' memos oldest-idle-first.  ``None`` disables pressure
        eviction.
    checkout_timeout:
        Seconds :meth:`checkout` waits for a session before raising
        :class:`~repro.errors.ServiceError`; ``None`` waits forever.
    """

    def __init__(
        self,
        snapshot: IndexSnapshot,
        size: int = 4,
        max_cache_entries: Optional[int] = None,
        cache_bytes_budget: Optional[int] = None,
        checkout_timeout: Optional[float] = 30.0,
    ) -> None:
        if size < 1:
            raise ServiceError(f"pool size must be >= 1, got {size}")
        self.snapshot = snapshot
        self.size = size
        self.max_cache_entries = max_cache_entries
        self.cache_bytes_budget = cache_bytes_budget
        self.checkout_timeout = checkout_timeout
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._idle: List[QuerySession] = []
        self._out: List[QuerySession] = []
        self._created = 0
        self._retired_sessions = 0
        self._evictions = 0
        self._closed = False
        # Merged distance totals of all pool work (retired sessions
        # included); per-session deltas are folded in at checkin.
        self._totals: Dict[str, int] = {}
        self._queries_answered = 0

    # ------------------------------------------------------------------
    # Checkout / checkin
    # ------------------------------------------------------------------
    def checkout(
        self,
        timeout: Optional[float] = None,
        request_ids: Sequence[str] = (),
    ) -> QuerySession:
        """Borrow a warm session (creating one while under ``size``).

        Each borrowed session is exclusively owned until
        :meth:`checkin`; two concurrent borrowers can never observe the
        same session — or the same mutable ``DistanceStats`` — at once.
        ``request_ids`` are the correlation ids of the queries this
        checkout will answer; they tag the ``service.pool.checkout``
        span (which wraps any wait for a free session).
        """
        deadline = timeout if timeout is not None else (
            self.checkout_timeout
        )
        span_attrs = {}
        ids = _trace.dedup_request_ids(request_ids)
        if ids:
            span_attrs["request_ids"] = list(ids)
        with _trace.span("service.pool.checkout", **span_attrs):
            with self._available:
                while True:
                    if self._closed:
                        raise ServiceError(
                            "session pool is closed"
                        )
                    if self._idle:
                        session = self._idle.pop()
                        break
                    if self._created < self.size:
                        session = self._new_session()
                        break
                    if not self._available.wait(timeout=deadline):
                        raise ServiceError(
                            f"no session became available within "
                            f"{deadline}s (pool size {self.size})"
                        )
                self._out.append(session)
                _metrics.set_gauge(
                    "service.pool.sessions", self._created
                )
                return session

    def checkin(self, session: QuerySession) -> None:
        """Return a borrowed session, folding its new work into the
        pool ledger and applying the cache-byte budget."""
        with self._available:
            if session not in self._out:
                raise ServiceError(
                    "checkin of a session this pool did not lend out"
                )
            self._out.remove(session)
            self._merge_locked(session)
            if self._closed:
                self._retire_locked(session)
            else:
                self._idle.append(session)
                self._evict_under_pressure_locked()
            self._available.notify()

    def session(
        self,
        timeout: Optional[float] = None,
        request_ids: Sequence[str] = (),
    ):
        """Context-manager checkout::

            with pool.session() as session:
                session.query(...)

        ``request_ids`` are forwarded to :meth:`checkout` for span
        correlation.
        """
        return _Checkout(self, timeout, request_ids)

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------
    def _merge_locked(self, session: QuerySession) -> None:
        """Fold the session's counters since its last merge into the
        pool totals (delta merge — never double counts)."""
        current = session.distances.stats.snapshot()
        mark: Dict[str, int] = getattr(session, "_pool_mark", {})
        queries_mark: int = getattr(session, "_pool_queries_mark", 0)
        for key, value in current.items():
            delta = value - mark.get(key, 0)
            if delta:
                self._totals[key] = (
                    self._totals.get(key, 0) + delta
                )
        self._queries_answered += (
            session.queries_answered - queries_mark
        )
        session._pool_mark = current
        session._pool_queries_mark = session.queries_answered

    def ledger(self) -> Dict[str, int]:
        """Merged distance totals of everything the pool answered.

        Includes checked-in deltas and retired sessions; work done by a
        currently checked-out session appears after its checkin.  The
        result satisfies the same structural invariants as a single
        engine's ledger (asserted in tests and
        ``tools/check_counters.py``).
        """
        with self._lock:
            return dict(self._totals)

    def ledger_violations(self) -> List[str]:
        """Invariant violations of the merged ledger (empty = clean)."""
        return distance_invariant_violations(self.ledger())

    # ------------------------------------------------------------------
    # Lifecycle / pressure
    # ------------------------------------------------------------------
    def _new_session(self) -> QuerySession:
        session = self.snapshot.session(
            max_cache_entries=self.max_cache_entries,
            keep_records=True,
        )
        session._pool_mark = {}
        session._pool_queries_mark = 0
        self._created += 1
        return session

    def _retire_locked(self, session: QuerySession) -> None:
        session.invalidate()
        self._created -= 1
        self._retired_sessions += 1

    def _evict_under_pressure_locked(self) -> None:
        """Drop idle sessions' memos oldest-idle-first over budget.

        ``self._idle`` is a stack (checkout pops the most recently
        returned, warmest session), so index 0 is the coldest idle
        session — evict from there.
        """
        if self.cache_bytes_budget is None:
            return
        total = sum(
            s.distances.cache_bytes() for s in self._idle
        )
        for session in self._idle:
            if total <= self.cache_bytes_budget:
                break
            held = session.distances.cache_bytes()
            if not held:
                continue
            session.invalidate()
            total -= held
            self._evictions += 1
            _metrics.add("service.pool.evictions")

    def close(self) -> None:
        """Refuse new checkouts and retire idle sessions.

        Checked-out sessions retire at their checkin, so a draining
        server can close the pool first and let in-flight work finish.
        """
        with self._available:
            self._closed = True
            for session in self._idle:
                self._merge_locked(session)
                self._retire_locked(session)
            self._idle.clear()
            self._available.notify_all()

    def stats(self) -> PoolStats:
        """Point-in-time pool statistics."""
        with self._lock:
            return PoolStats(
                size=self.size,
                created=self._created,
                idle=len(self._idle),
                checked_out=len(self._out),
                retired=self._retired_sessions,
                evictions=self._evictions,
                cache_bytes=sum(
                    s.distances.cache_bytes() for s in self._idle
                ),
                queries_answered=self._queries_answered,
            )


class _Checkout:
    """Context manager pairing checkout with guaranteed checkin."""

    def __init__(
        self,
        pool: SessionPool,
        timeout: Optional[float],
        request_ids: Sequence[str] = (),
    ) -> None:
        self._pool = pool
        self._timeout = timeout
        self._request_ids = request_ids
        self._session: Optional[QuerySession] = None

    def __enter__(self) -> QuerySession:
        self._session = self._pool.checkout(
            timeout=self._timeout, request_ids=self._request_ids
        )
        return self._session

    def __exit__(self, *_exc) -> bool:
        if self._session is not None:
            self._pool.checkin(self._session)
        return False
