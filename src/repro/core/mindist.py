"""MinDist extension of the efficient approach (paper Section 7).

The optimisation target changes from the maximum to the *total* (=
average x |C|) distance of the clients to their nearest facility; the
traversal, the global distance ``Gd``, and the Lemma 5.1 client pruning
stay exactly as in the MinMax algorithm.  What changes is how candidate
answers are generated and checked:

* every candidate keeps a running *total distance*, initialised as a
  lower bound and refined as facilities are retrieved;
* for a **settled** client (one whose nearest existing facility is
  within ``Gd``, i.e. a client the MinMax variant would prune) the term
  is exact: ``min(de, d(c, n))`` when ``d(c, n)`` was retrieved and
  ``de`` otherwise (anything unretrieved is farther than ``Gd >= de``);
* for an unsettled client the term is exact once ``d(c, n) <= Gd``
  (then ``d < de``) and otherwise lower-bounded by ``Gd``;
* a candidate whose lower bound exceeds the best exact total is pruned;
  the answer is declared when some candidate's exact total is no larger
  than every other candidate's lower bound.

Bookkeeping is incremental: per candidate we store only adjustments
relative to the shared ``sum(de)`` of settled clients, so one settle
event costs O(retrieved pairs of that client), not O(|Fn|).
"""

from __future__ import annotations

import heapq
import time
import tracemalloc
from typing import Dict, List, Optional, Set, Tuple

from ..errors import UnreachableFacilityError
from ..indoor.entities import PartitionId
from ..obs import profile as _profile
from ..obs import trace as _trace
from .efficient import (
    EfficientOptions,
    FacilityStream,
    _merge_engine_stats,
    make_groups,
)
from .problem import IFLSProblem
from .result import IFLSResult, ResultStatus
from .stats import QueryStats, publish_query_metrics

INFINITY = float("inf")


class _MinDistState:
    """Incremental candidate totals for the MinDist objective."""

    def __init__(self, problem: IFLSProblem) -> None:
        self.candidates: Set[PartitionId] = set(problem.candidates)
        self.alive: Set[PartitionId] = set(problem.candidates)
        self.unsettled = {c.client_id for c in problem.clients}
        self.settled_de: Dict[int, float] = {}
        self.settled_base = 0.0
        # Candidate n: settled-client correction vs settled_base.
        self.adj: Dict[PartitionId, float] = {}
        # Candidate n: exact unsettled terms (d <= Gd) sum and count.
        self.ex_sum: Dict[PartitionId, float] = {}
        self.ex_count: Dict[PartitionId, int] = {}
        # Per client: recorded candidate distances, exact-marked pairs.
        self.recorded: Dict[int, Dict[PartitionId, float]] = {}
        self.exact_pairs: Dict[int, Set[PartitionId]] = {}
        # Heaps driving settling and exactness promotion.
        self.settle_heap: List[Tuple[float, int]] = []
        self.promote_heap: List[Tuple[float, int, PartitionId]] = []
        # Settle events not yet propagated to the traversal groups.
        self.newly_settled: List[int] = []

    # -- event intake ----------------------------------------------------
    def record(
        self, client_id: int, facility: PartitionId, dist: float,
        is_existing: bool,
    ) -> None:
        if is_existing:
            if client_id in self.unsettled:
                heapq.heappush(self.settle_heap, (dist, client_id))
            return
        if client_id in self.settled_de:
            # Cannot happen with pruning on (client removed from groups)
            # but tolerated: fold directly into the adjustment.
            de = self.settled_de[client_id]
            if dist < de and facility in self.alive:
                self.adj[facility] = (
                    self.adj.get(facility, 0.0) + dist - de
                )
            return
        self.recorded.setdefault(client_id, {})[facility] = dist
        heapq.heappush(self.promote_heap, (dist, client_id, facility))

    def advance(self, gd: float) -> None:
        """Settle clients and promote pairs now proven exact (<= Gd)."""
        while self.promote_heap and self.promote_heap[0][0] <= gd:
            dist, client_id, facility = heapq.heappop(self.promote_heap)
            if client_id not in self.unsettled:
                continue  # handled by the settle path
            marks = self.exact_pairs.setdefault(client_id, set())
            if facility in marks or facility not in self.candidates:
                continue
            marks.add(facility)
            self.ex_sum[facility] = self.ex_sum.get(facility, 0.0) + dist
            self.ex_count[facility] = self.ex_count.get(facility, 0) + 1
        while self.settle_heap and self.settle_heap[0][0] <= gd:
            de, client_id = heapq.heappop(self.settle_heap)
            if client_id in self.unsettled:
                self._settle(client_id, de)

    def _settle(self, client_id: int, de: float) -> None:
        self.unsettled.discard(client_id)
        self.settled_de[client_id] = de
        self.settled_base += de
        self.newly_settled.append(client_id)
        marks = self.exact_pairs.pop(client_id, set())
        for facility, dist in self.recorded.pop(client_id, {}).items():
            if facility in marks:
                # Move from the unsettled-exact pool into the settled
                # adjustment (term value min(de, dist) stays exact).
                self.ex_sum[facility] -= dist
                self.ex_count[facility] -= 1
            term = dist if dist < de else de
            self.adj[facility] = (
                self.adj.get(facility, 0.0) + term - de
            )

    # -- bounds ----------------------------------------------------------
    def lower_bound(self, facility: PartitionId, gd: float) -> float:
        unknown = len(self.unsettled) - self.ex_count.get(facility, 0)
        return (
            self.settled_base
            + self.adj.get(facility, 0.0)
            + self.ex_sum.get(facility, 0.0)
            + (unknown * gd if unknown else 0.0)  # avoid 0 * inf = nan
        )

    def exact_total(self, facility: PartitionId) -> Optional[float]:
        if self.ex_count.get(facility, 0) != len(self.unsettled):
            return None
        return (
            self.settled_base
            + self.adj.get(facility, 0.0)
            + self.ex_sum.get(facility, 0.0)
        )

    def check_answer(
        self, gd: float
    ) -> Optional[Tuple[PartitionId, float]]:
        """Prune dominated candidates; return the answer when decided."""
        best_exact = INFINITY
        best_pid: Optional[PartitionId] = None
        for facility in self.alive:
            total = self.exact_total(facility)
            if total is None:
                continue
            if total < best_exact or (
                total == best_exact
                and best_pid is not None
                and facility < best_pid
            ):
                best_exact = total
                best_pid = facility
        if best_pid is None:
            return None
        dominated = [
            facility
            for facility in self.alive
            if facility != best_pid
            and self.lower_bound(facility, gd) > best_exact
        ]
        for facility in dominated:
            self.alive.discard(facility)
        undecided = [
            facility
            for facility in self.alive
            if facility != best_pid
            and self.lower_bound(facility, gd) <= best_exact
            and self.exact_total(facility) is None
        ]
        if undecided:
            return None
        # Every surviving competitor is exact; best_pid already minimal.
        return best_pid, best_exact


def efficient_mindist(
    problem: IFLSProblem,
    options: Optional[EfficientOptions] = None,
) -> IFLSResult:
    """Answer a MinDist IFLS query (total-distance objective)."""
    options = options if options is not None else EfficientOptions()
    stats = QueryStats(
        algorithm="efficient-mindist", clients_total=len(problem.clients)
    )
    started = time.perf_counter()
    before = problem.engine.stats.snapshot()
    if options.measure_memory:
        tracemalloc.start()
    try:
        with _trace.span(
            "query.efficient.mindist",
            stats=problem.engine.stats,
            clients=len(problem.clients),
        ):
            result = _run(problem, options, stats)
    finally:
        if options.measure_memory:
            _, peak = tracemalloc.get_traced_memory()
            stats.peak_memory_bytes = peak
            tracemalloc.stop()
    _merge_engine_stats(problem.engine, before, stats)
    stats.elapsed_seconds = time.perf_counter() - started
    publish_query_metrics(result)
    return result


def _run(
    problem: IFLSProblem, options: EfficientOptions, stats: QueryStats
) -> IFLSResult:
    profiler = _profile.active()
    groups = make_groups(problem, options.group_by_partition)
    state = _MinDistState(problem)
    stream = FacilityStream(
        problem.engine,
        groups,
        problem.existing,
        problem.candidates,
        traversal=options.traversal,
        stats=stats,
        use_kernels=options.use_kernels,
    )
    group_of_client = {}
    for group in groups:
        for client in group.clients:
            group_of_client[client.client_id] = group

    def settle_prune() -> None:
        settled = state.newly_settled
        if not settled:
            return
        if options.prune_clients:
            for client_id in settled:
                group = group_of_client.get(client_id)
                if group is not None:
                    group.prune(client_id)
        settled.clear()

    # Pre-phase: clients inside facility partitions.
    with _trace.span("ea.prephase", stats=problem.engine.stats):
        for client in problem.clients:
            pid = client.partition_id
            if pid in problem.existing or pid in problem.candidates:
                state.record(
                    client.client_id, pid, 0.0, pid in problem.existing
                )
                stats.facilities_retrieved += 1
        state.advance(0.0)
        settle_prune()
        answer = state.check_answer(0.0)
    if profiler is not None:
        profiler.bound_step(
            0.0, len(state.unsettled), len(state.settled_de)
        )

    with _trace.span("ea.stream", stats=problem.engine.stats):
        gd = 0.0
        while answer is None:
            step = stream.advance()
            if step is None:
                break
            gd, records = step
            for client, facility, dist, is_existing in records:
                state.record(
                    client.client_id, facility, dist, is_existing
                )
            state.advance(gd)
            settle_prune()
            answer = state.check_answer(gd)
            if profiler is not None:
                profiler.bound_step(
                    gd, len(state.unsettled), len(state.settled_de)
                )

        if answer is None:
            # Queue exhausted: all retrieved; every term becomes exact.
            state.advance(INFINITY)
            answer = state.check_answer(INFINITY)
            if profiler is not None:
                profiler.bound_step(
                    INFINITY,
                    len(state.unsettled),
                    len(state.settled_de),
                )
    stats.clients_pruned = len(state.settled_de)
    stats.candidate_answers_considered = len(state.alive)
    if answer is None:
        if state.unsettled:
            raise UnreachableFacilityError(
                "some clients cannot reach any facility"
            )
        raise UnreachableFacilityError(
            "MinDist refinement failed to converge"
        )
    answer_pid, total = answer
    if not state.unsettled and total >= state.settled_base:
        return IFLSResult(
            answer=None,
            objective=state.settled_base,
            status=ResultStatus.NO_IMPROVEMENT,
            stats=stats,
        )
    return IFLSResult(answer=answer_pid, objective=total, stats=stats)
