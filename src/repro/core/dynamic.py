"""Dynamic crowds: repeated IFLS answers over a changing client set.

The paper motivates IFLS with "dynamic crowd scenarios (e.g., changing
crowd), where the position a new facility needs to be updated
constantly" (Section 1) and names moving clients as future work
(Section 8).  :class:`DynamicIFLSSession` supports exactly that usage:

* the facility configuration ``Fe`` / ``Fn`` is fixed for the session;
* clients arrive, leave, and move between answers;
* every answer runs the efficient algorithm on the session's *warm*
  distance engine, so the partition-level distances computed for one
  crowd are reused for the next (the venue does not change);
* each client's nearest-existing-facility distance ``de(c)`` is cached
  per location, giving O(1) crowd health metrics
  (:meth:`worst_client_distance`) and exact candidate evaluation
  (:meth:`evaluate`) between answers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import QueryError
from ..indoor.entities import Client, FacilitySets, PartitionId
from ..index.search import FacilitySearch
from .efficient import EfficientOptions, efficient_minmax
from .maxsum import efficient_maxsum
from .mindist import efficient_mindist
from .problem import IFLSProblem
from .queries import MAXSUM, MINDIST, MINMAX, IFLSEngine
from .result import IFLSResult

_SOLVERS = {
    MINMAX: efficient_minmax,
    MINDIST: efficient_mindist,
    MAXSUM: efficient_maxsum,
}


class DynamicIFLSSession:
    """A long-lived IFLS query over a changing crowd."""

    def __init__(
        self,
        engine: IFLSEngine,
        facilities: FacilitySets,
        objective: str = MINMAX,
        options: Optional[EfficientOptions] = None,
    ) -> None:
        if objective not in _SOLVERS:
            raise QueryError(f"unknown objective {objective!r}")
        if not facilities.candidates:
            raise QueryError("dynamic session requires candidates Fn")
        self.engine = engine
        self.facilities = facilities
        self.objective = objective
        self.options = options if options is not None else EfficientOptions()
        self._clients: Dict[int, Client] = {}
        self._de: Dict[int, float] = {}
        self._existing_search = FacilitySearch(
            engine.distances, facilities.existing
        )
        self.answers_computed = 0

    # ------------------------------------------------------------------
    # Crowd mutation
    # ------------------------------------------------------------------
    def add_client(self, client: Client) -> None:
        """Add (or replace) one client."""
        self._clients[client.client_id] = client
        self._de.pop(client.client_id, None)

    def add_clients(self, clients: Iterable[Client]) -> None:
        """Add several clients."""
        for client in clients:
            self.add_client(client)

    def remove_client(self, client_id: int) -> None:
        """Remove a client; unknown ids raise :class:`QueryError`."""
        if client_id not in self._clients:
            raise QueryError(f"unknown client {client_id}")
        del self._clients[client_id]
        self._de.pop(client_id, None)

    def move_client(self, client_id: int, moved: Client) -> None:
        """Move a client (same id, new location/partition)."""
        if client_id not in self._clients:
            raise QueryError(f"unknown client {client_id}")
        if moved.client_id != client_id:
            raise QueryError(
                f"moved client has id {moved.client_id}, "
                f"expected {client_id}"
            )
        self._clients[client_id] = moved
        self._de.pop(client_id, None)

    @property
    def client_count(self) -> int:
        """Number of clients currently in the crowd."""
        return len(self._clients)

    @property
    def clients(self) -> List[Client]:
        """Snapshot of the current crowd."""
        return list(self._clients.values())

    # ------------------------------------------------------------------
    # Cached crowd metrics
    # ------------------------------------------------------------------
    def nearest_existing_distance(self, client_id: int) -> float:
        """``de(c)``: cached distance to the nearest existing facility."""
        if client_id not in self._clients:
            raise QueryError(f"unknown client {client_id}")
        de = self._de.get(client_id)
        if de is None:
            client = self._clients[client_id]
            nearest = self._existing_search.nearest(client)
            de = float("inf") if nearest is None else nearest[1]
            self._de[client_id] = de
        return de

    def worst_client_distance(self) -> float:
        """Current objective without any new facility (max de)."""
        if not self._clients:
            raise QueryError("session has no clients")
        return max(
            self.nearest_existing_distance(cid) for cid in self._clients
        )

    def evaluate(self, candidate: PartitionId) -> float:
        """Exact MinMax objective of placing ``candidate`` for the
        current crowd (uses the cached ``de`` values)."""
        if candidate not in self.facilities.candidates:
            raise QueryError(f"{candidate} is not a candidate location")
        if not self._clients:
            raise QueryError("session has no clients")
        distances = self.engine.distances
        value = 0.0
        for client_id, client in self._clients.items():
            term = min(
                self.nearest_existing_distance(client_id),
                distances.idist(client, candidate),
            )
            if term > value:
                value = term
        return value

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def answer(self) -> IFLSResult:
        """Answer the IFLS query for the current crowd.

        Runs the efficient algorithm on the session's warm distance
        engine — repeated answers over similar crowds reuse the
        memoised partition distances and are substantially cheaper than
        cold queries.
        """
        if not self._clients:
            raise QueryError("session has no clients")
        problem = IFLSProblem(
            self.engine.distances, self.clients, self.facilities
        )
        result = _SOLVERS[self.objective](problem, self.options)
        self.answers_computed += 1
        return result
