"""IFLS query algorithms: efficient approach, baseline, brute force."""

from .baseline import modified_minmax
from .bruteforce import (
    brute_force_maxsum,
    brute_force_mindist,
    brute_force_minmax,
)
from .dynamic import DynamicIFLSSession
from .efficient import (
    BOTTOM_UP,
    TOP_DOWN,
    EfficientOptions,
    FacilityStream,
    efficient_minmax,
)
from .maxsum import efficient_maxsum
from .moving import MovingClientSimulator, WALKING_SPEED
from .mindist import efficient_mindist
from .parallel import (
    IndexSnapshot,
    ParallelBatchOutcome,
    run_batch_parallel,
)
from .problem import IFLSProblem
from .request import QueryRequest, QueryResponse, as_batch_queries
from .queries import (
    BASELINE,
    BRUTE_FORCE,
    EFFICIENT,
    MAXSUM,
    MINDIST,
    MINMAX,
    IFLSEngine,
)
from .result import IFLSResult, ResultStatus
from .session import (
    BatchQuery,
    QuerySession,
    SessionQueryRecord,
    SessionReport,
)
from .stream import (
    ClientEvent,
    ContinuousQuery,
    StreamAnswer,
    StreamStats,
    read_events,
    synthetic_events,
    write_events,
)
from .topk import RankedCandidate, TopKStats, top_k_ifls
from .stats import (
    QueryStats,
    distance_invariant_violations,
    merge_query_stats,
    merge_snapshots,
)

__all__ = [
    "BASELINE",
    "BatchQuery",
    "BOTTOM_UP",
    "BRUTE_FORCE",
    "ClientEvent",
    "ContinuousQuery",
    "StreamAnswer",
    "StreamStats",
    "read_events",
    "synthetic_events",
    "write_events",
    "DynamicIFLSSession",
    "QuerySession",
    "SessionQueryRecord",
    "SessionReport",
    "RankedCandidate",
    "TopKStats",
    "top_k_ifls",
    "EFFICIENT",
    "EfficientOptions",
    "FacilityStream",
    "IFLSEngine",
    "IFLSProblem",
    "IndexSnapshot",
    "ParallelBatchOutcome",
    "QueryRequest",
    "QueryResponse",
    "as_batch_queries",
    "run_batch_parallel",
    "distance_invariant_violations",
    "merge_query_stats",
    "merge_snapshots",
    "MovingClientSimulator",
    "WALKING_SPEED",
    "IFLSResult",
    "MAXSUM",
    "MINDIST",
    "MINMAX",
    "QueryStats",
    "ResultStatus",
    "TOP_DOWN",
    "brute_force_maxsum",
    "brute_force_mindist",
    "brute_force_minmax",
    "efficient_maxsum",
    "efficient_mindist",
    "efficient_minmax",
    "modified_minmax",
]
