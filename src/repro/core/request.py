"""The unified query surface: :class:`QueryRequest` / :class:`QueryResponse`.

Before the service refactor the library grew three overlapping option
surfaces: :class:`~repro.core.efficient.EfficientOptions` (solver
ablations), ``QuerySession`` keyword arguments, and the
``run_batch_parallel`` keyword arguments.  A query that travelled from
the CLI through a session into the pool executor was re-spelled at
every hop.  :class:`QueryRequest` collapses the per-query half of that
drift into one dataclass shared by the library API
(:meth:`repro.api.Engine.query`), the CLI, and the wire protocol of the
query service (:mod:`repro.service`); :class:`QueryResponse` is the
matching answer envelope.

Execution-scope knobs (cache budgets, worker counts, record keeping)
stay on the executors that own them — they describe *where* a query
runs, not *what* it asks — see the migration table in ``docs/API.md``.

Wire format
-----------
``QueryRequest.to_payload()`` / ``from_payload()`` round-trip through
plain JSON-compatible dictionaries.  Clients use the workload schema of
:mod:`repro.indoor.io` (``{"id", "location": [x, y, level],
"partition"}``); facility sets are sorted id lists.  Decoding raises
:class:`~repro.errors.ProtocolError` on malformed payloads so the
service maps them to HTTP 400 without guessing.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ProtocolError, QueryError
from ..indoor.entities import Client, FacilitySets, PartitionId
from ..indoor.geometry import Point
from .efficient import BOTTOM_UP, TOP_DOWN, EfficientOptions
from .result import IFLSResult

_OBJECTIVES = ("minmax", "mindist", "maxsum")
_ALGORITHMS = ("efficient", "baseline", "bruteforce")

#: Payload schema tag; bump on incompatible wire changes.
WIRE_FORMAT = "ifls-query/1"


@dataclass(frozen=True)
class QueryRequest:
    """Everything one IFLS query asks for, in one place.

    The per-query fields of the three legacy surfaces map onto this
    dataclass one to one:

    * ``EfficientOptions.prune_clients / group_by_partition /
      traversal / use_kernels / measure_memory`` are plain fields here;
    * ``BatchQuery.objective / label`` likewise;
    * session/pool keywords (``max_cache_entries``, ``workers``, …)
      deliberately do **not** appear — they configure executors, not
      queries.

    ``timeout_seconds`` is honoured by the query service (HTTP 504 when
    exceeded); library executors ignore it.  ``explain`` asks the
    service to keep the query's EXPLAIN report retrievable under
    ``GET /explain/<id>``.

    ``request_id`` is the correlation id telemetry stitches traces
    with: minted by the service per HTTP request (``r…``) or by
    :meth:`repro.api.Engine.query` for library callers (``q…``) when
    left empty, and echoed on the matching :class:`QueryResponse`.
    """

    clients: Tuple[Client, ...]
    facilities: FacilitySets
    objective: str = "minmax"
    algorithm: str = "efficient"
    label: str = ""
    prune_clients: bool = True
    group_by_partition: bool = True
    traversal: str = BOTTOM_UP
    use_kernels: Optional[bool] = None
    measure_memory: bool = False
    timeout_seconds: Optional[float] = None
    explain: bool = False
    request_id: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "clients", tuple(self.clients))
        if self.objective not in _OBJECTIVES:
            raise QueryError(f"unknown objective {self.objective!r}")
        if self.algorithm not in _ALGORITHMS:
            raise QueryError(f"unknown algorithm {self.algorithm!r}")
        if self.traversal not in (BOTTOM_UP, TOP_DOWN):
            raise QueryError(f"unknown traversal {self.traversal!r}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise QueryError(
                f"timeout_seconds must be positive, got "
                f"{self.timeout_seconds}"
            )

    # ------------------------------------------------------------------
    # Legacy-surface bridges
    # ------------------------------------------------------------------
    def options(self) -> Optional[EfficientOptions]:
        """The solver-level options this request resolves to.

        Returns ``None`` when every ablation field is at its default so
        fully-default requests take the exact cold-path code the legacy
        ``options=None`` call sites take (bit-identical counters).
        """
        if (
            self.prune_clients
            and self.group_by_partition
            and self.traversal == BOTTOM_UP
            and not self.measure_memory
            and self.use_kernels is None
        ):
            return None
        return EfficientOptions(
            prune_clients=self.prune_clients,
            group_by_partition=self.group_by_partition,
            traversal=self.traversal,
            measure_memory=self.measure_memory,
            use_kernels=self.use_kernels,
        )

    @classmethod
    def from_legacy(
        cls,
        clients: Sequence[Client],
        facilities: FacilitySets,
        objective: str = "minmax",
        algorithm: str = "efficient",
        options: Optional[EfficientOptions] = None,
        label: str = "",
    ) -> "QueryRequest":
        """Build a request from the legacy argument spelling.

        The deprecation shims (``Engine.query`` with the old positional
        signature, ``BatchQuery.to_request``) funnel through here; new
        code constructs :class:`QueryRequest` directly.
        """
        kwargs: Dict[str, Any] = {}
        if options is not None:
            kwargs.update(
                prune_clients=options.prune_clients,
                group_by_partition=options.group_by_partition,
                traversal=options.traversal,
                measure_memory=options.measure_memory,
                use_kernels=options.use_kernels,
            )
        return cls(
            clients=tuple(clients),
            facilities=facilities,
            objective=objective,
            algorithm=algorithm,
            label=label,
            **kwargs,
        )

    def to_batch_query(self):
        """The legacy ``BatchQuery`` equivalent (internal executors).

        Sessions answer through the efficient solvers only, so a
        request carrying another algorithm cannot ride a batch — use
        :meth:`repro.api.Engine.query` for baseline/bruteforce runs.
        """
        from .session import BatchQuery

        if self.algorithm != "efficient":
            raise QueryError(
                f"batch execution supports the 'efficient' algorithm "
                f"only, got {self.algorithm!r}"
            )
        return BatchQuery(
            clients=self.clients,
            facilities=self.facilities,
            objective=self.objective,
            options=self.options(),
            label=self.label,
            request_id=self.request_id,
        )

    # ------------------------------------------------------------------
    # Wire codec
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible dictionary (the service wire format)."""
        payload: Dict[str, Any] = {
            "format": WIRE_FORMAT,
            "clients": [
                {
                    "id": c.client_id,
                    "location": [c.location.x, c.location.y,
                                 c.location.level],
                    "partition": c.partition_id,
                }
                for c in self.clients
            ],
            "existing": sorted(self.facilities.existing),
            "candidates": sorted(self.facilities.candidates),
            "objective": self.objective,
        }
        if self.algorithm != "efficient":
            payload["algorithm"] = self.algorithm
        if self.label:
            payload["label"] = self.label
        if not self.prune_clients:
            payload["prune_clients"] = False
        if not self.group_by_partition:
            payload["group_by_partition"] = False
        if self.traversal != BOTTOM_UP:
            payload["traversal"] = self.traversal
        if self.use_kernels is not None:
            payload["use_kernels"] = self.use_kernels
        if self.timeout_seconds is not None:
            payload["timeout_seconds"] = self.timeout_seconds
        if self.explain:
            payload["explain"] = True
        if self.request_id:
            payload["request_id"] = self.request_id
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "QueryRequest":
        """Decode one wire payload; :class:`ProtocolError` on garbage."""
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"query payload must be an object, got "
                f"{type(payload).__name__}"
            )
        try:
            clients = tuple(
                Client(
                    int(entry["id"]),
                    Point(
                        float(entry["location"][0]),
                        float(entry["location"][1]),
                        int(entry["location"][2]),
                    ),
                    int(entry["partition"]),
                )
                for entry in payload.get("clients", ())
            )
            facilities = FacilitySets(
                frozenset(
                    int(p) for p in payload.get("existing", ())
                ),
                frozenset(
                    int(p) for p in payload.get("candidates", ())
                ),
            )
            timeout = payload.get("timeout_seconds")
            return cls(
                clients=clients,
                facilities=facilities,
                objective=str(payload.get("objective", "minmax")),
                algorithm=str(payload.get("algorithm", "efficient")),
                label=str(payload.get("label", "")),
                prune_clients=bool(payload.get("prune_clients", True)),
                group_by_partition=bool(
                    payload.get("group_by_partition", True)
                ),
                traversal=str(payload.get("traversal", BOTTOM_UP)),
                use_kernels=payload.get("use_kernels"),
                timeout_seconds=(
                    float(timeout) if timeout is not None else None
                ),
                explain=bool(payload.get("explain", False)),
                request_id=str(payload.get("request_id", "")),
            )
        except QueryError as exc:
            # Validation failures are still protocol errors on the wire.
            raise ProtocolError(str(exc)) from exc
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ProtocolError(
                f"malformed query payload: {exc}"
            ) from exc


@dataclass
class QueryResponse:
    """The answer envelope matching :class:`QueryRequest`.

    ``distance_delta`` carries the per-query distance-counter deltas
    (the same ledger slice ``SessionQueryRecord`` records), so a client
    summing the deltas of every response it received can telescope them
    against the service's ``/metrics`` ledger.
    """

    answer: Optional[PartitionId]
    objective_value: float
    status: str
    objective: str = "minmax"
    label: str = ""
    elapsed_seconds: float = 0.0
    index: Optional[int] = None
    explain_id: Optional[str] = None
    distance_delta: Dict[str, int] = field(default_factory=dict)
    request_id: str = ""

    @property
    def improved(self) -> bool:
        """True when a candidate strictly improved the objective."""
        return self.answer is not None

    @classmethod
    def from_result(
        cls,
        result: IFLSResult,
        request: Optional[QueryRequest] = None,
        elapsed_seconds: float = 0.0,
        distance_delta: Optional[Dict[str, int]] = None,
        index: Optional[int] = None,
        explain_id: Optional[str] = None,
    ) -> "QueryResponse":
        """Wrap a solver result (with its request's identity fields)."""
        return cls(
            answer=result.answer,
            objective_value=result.objective,
            status=str(result.status),
            objective=request.objective if request else "minmax",
            label=request.label if request else "",
            elapsed_seconds=elapsed_seconds,
            index=index,
            explain_id=explain_id,
            distance_delta=dict(distance_delta or {}),
            request_id=request.request_id if request else "",
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible dictionary (the service wire format)."""
        payload: Dict[str, Any] = {
            "answer": self.answer,
            "objective_value": self.objective_value,
            "status": self.status,
            "objective": self.objective,
        }
        if self.label:
            payload["label"] = self.label
        if self.elapsed_seconds:
            payload["elapsed_seconds"] = self.elapsed_seconds
        if self.index is not None:
            payload["index"] = self.index
        if self.explain_id is not None:
            payload["explain_id"] = self.explain_id
        if self.distance_delta:
            payload["distance_delta"] = dict(self.distance_delta)
        if self.request_id:
            payload["request_id"] = self.request_id
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "QueryResponse":
        """Decode one wire payload; :class:`ProtocolError` on garbage."""
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"response payload must be an object, got "
                f"{type(payload).__name__}"
            )
        try:
            answer = payload["answer"]
            return cls(
                answer=int(answer) if answer is not None else None,
                objective_value=float(payload["objective_value"]),
                status=str(payload["status"]),
                objective=str(payload.get("objective", "minmax")),
                label=str(payload.get("label", "")),
                elapsed_seconds=float(
                    payload.get("elapsed_seconds", 0.0)
                ),
                index=payload.get("index"),
                explain_id=payload.get("explain_id"),
                distance_delta={
                    str(key): int(value)
                    for key, value in payload.get(
                        "distance_delta", {}
                    ).items()
                },
                request_id=str(payload.get("request_id", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed response payload: {exc}"
            ) from exc


def as_batch_queries(requests: Sequence[Any]) -> List[Any]:
    """Normalise a mixed request/legacy batch for the executors.

    Accepts :class:`QueryRequest` and legacy ``BatchQuery`` items in any
    mix; executors keep operating on ``BatchQuery`` internally so the
    hot paths and their counters are untouched.
    """
    from .session import BatchQuery

    out: List[Any] = []
    for item in requests:
        if isinstance(item, QueryRequest):
            out.append(item.to_batch_query())
        elif isinstance(item, BatchQuery):
            out.append(item)
        else:
            raise QueryError(
                "batch items must be QueryRequest or BatchQuery, got "
                f"{type(item).__name__}"
            )
    return out


def warn_legacy_call(old: str, new: str) -> None:
    """Emit the standard deprecation warning for a legacy spelling."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead "
        "(see the migration table in docs/API.md)",
        DeprecationWarning,
        stacklevel=3,
    )
