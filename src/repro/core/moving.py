"""Moving clients — the paper's future work (Section 8).

    "In future, we plan to consider moving clients for IFLS queries."

:class:`MovingClientSimulator` animates clients along shortest indoor
routes (via :class:`~repro.index.path.PathService`) and keeps a
:class:`~repro.core.dynamic.DynamicIFLSSession` in sync, so the IFLS
answer can be re-evaluated at any simulation time.  Movement is
straight-line inside a partition and door-to-door between partitions —
the same model the distance functions assume.

This is an extension beyond the paper's evaluation; it reuses the
paper's machinery unchanged (the session answers with the efficient
algorithm on a warm engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import QueryError
from ..indoor.entities import Client, FacilitySets, PartitionId
from ..indoor.geometry import Point
from ..index.path import PathService, Route
from .dynamic import DynamicIFLSSession
from .queries import MINMAX, IFLSEngine
from .result import IFLSResult

#: Default walking speed, metres per second.
WALKING_SPEED = 1.4


@dataclass
class _Walker:
    """A client in motion along a precomputed route."""

    client: Client
    route: Route
    destination: PartitionId
    speed: float
    leg_index: int = 0
    leg_progress: float = 0.0
    arrived: bool = field(init=False)

    def __post_init__(self) -> None:
        self.arrived = not self.route.legs

    def advance(self, seconds: float) -> Client:
        """Move along the route; returns the updated client."""
        budget = seconds * self.speed
        while budget > 0 and not self.arrived:
            leg = self.route.legs[self.leg_index]
            remaining = leg.distance - self.leg_progress
            if budget < remaining:
                self.leg_progress += budget
                budget = 0.0
            else:
                budget -= remaining
                self.leg_progress = 0.0
                self.leg_index += 1
                if self.leg_index >= len(self.route.legs):
                    self.arrived = True
        self.client = Client(
            self.client.client_id, self._position(), self._partition()
        )
        return self.client

    def _partition(self) -> PartitionId:
        if self.arrived:
            return self.destination
        return self.route.legs[self.leg_index].partition

    def _position(self) -> Point:
        if self.arrived:
            if self.route.legs:
                return self.route.legs[-1].end
            return self.client.location
        leg = self.route.legs[self.leg_index]
        if leg.distance <= 0:
            return leg.end
        fraction = min(self.leg_progress / leg.distance, 1.0)
        return Point(
            leg.start.x + fraction * (leg.end.x - leg.start.x),
            leg.start.y + fraction * (leg.end.y - leg.start.y),
            leg.start.level,
        )


class MovingClientSimulator:
    """IFLS over clients that walk through the venue."""

    def __init__(
        self,
        engine: IFLSEngine,
        facilities: FacilitySets,
        objective: str = MINMAX,
    ) -> None:
        self.engine = engine
        self.session = DynamicIFLSSession(
            engine, facilities, objective=objective
        )
        self.paths = PathService(engine.venue, graph=engine.tree.graph)
        self._walkers: Dict[int, _Walker] = {}
        self.clock = 0.0

    # ------------------------------------------------------------------
    def add_walker(
        self,
        client: Client,
        destination: PartitionId,
        speed: float = WALKING_SPEED,
    ) -> None:
        """Add a client walking from its location to ``destination``."""
        if speed <= 0:
            raise QueryError("speed must be positive")
        route = self.paths.route_to_partition(client, destination)
        self._walkers[client.client_id] = _Walker(
            client=client,
            route=route,
            destination=destination,
            speed=speed,
        )
        self.session.add_client(client)

    def add_stationary(self, client: Client) -> None:
        """Add a client that does not move."""
        self.session.add_client(client)

    def remove(self, client_id: int) -> None:
        """Remove a client (walking or stationary)."""
        self._walkers.pop(client_id, None)
        self.session.remove_client(client_id)

    # ------------------------------------------------------------------
    def step(self, seconds: float) -> int:
        """Advance the simulation; returns how many clients moved."""
        if seconds <= 0:
            raise QueryError("seconds must be positive")
        self.clock += seconds
        moved = 0
        for walker in self._walkers.values():
            if walker.arrived:
                continue
            updated = walker.advance(seconds)
            self.session.move_client(updated.client_id, updated)
            moved += 1
        return moved

    def answer(self) -> IFLSResult:
        """The IFLS answer for the crowd's current positions."""
        return self.session.answer()

    # ------------------------------------------------------------------
    @property
    def walker_count(self) -> int:
        """Clients added as walkers (arrived or not)."""
        return len(self._walkers)

    @property
    def client_count(self) -> int:
        """All clients known to the underlying session."""
        return self.session.client_count

    def en_route(self) -> int:
        """Clients still walking."""
        return sum(1 for w in self._walkers.values() if not w.arrived)

    def position_of(self, client_id: int) -> Optional[Client]:
        """Current Client record (walker or stationary), if known."""
        walker = self._walkers.get(client_id)
        if walker is not None:
            return walker.client
        for client in self.session.clients:
            if client.client_id == client_id:
                return client
        return None
