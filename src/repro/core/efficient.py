"""The efficient IFLS approach (paper Section 5, Algorithms 2 and 3).

The algorithm answers the MinMax IFLS query with a *single* incremental
search over one VIP-tree indexing ``Fe ∪ Fn``:

* clients are grouped by partition and one bottom-up best-first
  traversal per client partition retrieves facilities for all of the
  partition's clients in order of the lower bound ``iMinD(p, I)``;
* the largest dequeued ``iMinD`` is the global distance ``Gd``: every
  facility within ``Gd`` of any client is guaranteed retrieved;
* clients whose nearest *existing* facility is within ``Gd`` are pruned
  (Lemma 5.1) — the new facility can no longer help them;
* once every remaining client has at least one retrieved facility
  (``checkList``), a refinement bound ``dlow`` steps through retrieved
  facility distances (``increaseDist``), pruning clients and checking
  after each step whether some candidate covers every remaining client
  within ``dlow`` (``checkAnswer``).  The first such candidate is
  optimal and ``dlow`` equals the optimal objective.

Equal-distance steps process existing-facility entries before candidate
entries, so a client pruned *at* the optimum never blocks the
no-improvement detection; this makes the result semantics exactly match
the brute-force oracle (see DESIGN.md, "Result semantics").

:class:`FacilityStream` — the traversal itself — is shared with the
MinDist and MaxSum extensions (Section 7).
"""

from __future__ import annotations

import heapq
import itertools
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import QueryError, UnreachableFacilityError
from ..indoor.entities import Client, PartitionId
from ..index.distance import VIPDistanceEngine
from ..obs import profile as _profile
from ..obs import trace as _trace
from .problem import IFLSProblem
from .result import IFLSResult, ResultStatus
from .stats import QueryStats, publish_query_metrics

INFINITY = float("inf")

BOTTOM_UP = "bottom-up"
TOP_DOWN = "top-down"

_KIND_EXISTING = 0
_KIND_CANDIDATE = 1

_ENTITY_NODE = 1
_ENTITY_FACILITY = 0


@dataclass
class EfficientOptions:
    """Tunable behaviour of the efficient approach.

    The defaults are the paper's algorithm; the other settings exist for
    the ablation benchmarks (see DESIGN.md experiments A1–A3):

    ``prune_clients=False``
        keeps resolved clients in the distance loop, paying the indoor
        distance computations that Lemma 5.1 normally avoids (answers
        are unaffected);
    ``group_by_partition=False``
        gives every client its own traversal instead of one per
        partition, modelling the per-client queue traffic the grouping
        optimisation removes;
    ``traversal=TOP_DOWN``
        seeds each traversal at the root instead of the client's leaf.
    ``use_kernels``
        forces the array-kernel facility retrieval on (``True``) or off
        (``False``) for this query; ``None`` follows the distance
        engine's ``use_kernels`` setting.  Answers are bit-identical
        either way — ``False`` is the scalar oracle the kernel tests
        compare against.
    """

    prune_clients: bool = True
    group_by_partition: bool = True
    traversal: str = BOTTOM_UP
    measure_memory: bool = False
    use_kernels: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.traversal not in (BOTTOM_UP, TOP_DOWN):
            raise QueryError(f"unknown traversal {self.traversal!r}")


@dataclass
class _Group:
    """One traversal stream: a client partition and its active clients.

    Pruning a client is O(1): the id goes into ``pruned`` and the
    client list is compacted *lazily* by :meth:`FacilityStream.advance`
    once at least half the list is pruned, so a query that prunes all
    ``|C|`` clients pays O(|C|) total instead of the O(|C|²) a rebuild
    per prune would cost.
    """

    partition_id: PartitionId
    clients: List[Client]
    pruned: Set[int] = field(default_factory=set)
    # Array-laid client state (offsets, active mask), attached lazily
    # by FacilityStream when the kernel path is on; None otherwise.
    # Single-exit-door groups never get arrays — they stay on the
    # dedicated no-arrays lane (single_exit memoises that check).
    arrays: Optional[object] = None
    single_exit: Optional[bool] = None

    def prune(self, client_id: int) -> None:
        """Mark one client resolved (lazy removal)."""
        self.pruned.add(client_id)
        if self.arrays is not None:
            self.arrays.mark_pruned(client_id)

    @property
    def active_count(self) -> int:
        """Clients not yet pruned."""
        return len(self.clients) - len(self.pruned)


class FacilityStream:
    """Incremental all-clients nearest-facility retrieval (Algorithm 3).

    Each :meth:`advance` performs one priority-queue dequeue: it returns
    the new global distance ``Gd`` and the ``(client, facility,
    iDist, is_existing)`` records produced by that dequeue (empty for
    tree-node pops).  ``None`` signals queue exhaustion — at that point
    every facility has been retrieved for every active client.
    """

    def __init__(
        self,
        engine: VIPDistanceEngine,
        groups: List[_Group],
        existing: frozenset,
        candidates: frozenset,
        traversal: str = BOTTOM_UP,
        stats: Optional[QueryStats] = None,
        use_kernels: Optional[bool] = None,
    ) -> None:
        self.engine = engine
        self.tree = engine.tree
        self.groups = groups
        self.existing = existing
        self.facilities = existing | candidates
        self.stats = stats if stats is not None else QueryStats()
        # Kernel facility retrieval: None follows the engine; False
        # forces the scalar loop (the oracle); True demands kernels.
        if use_kernels is None:
            self._use_kernels = engine.use_kernels
        elif use_kernels and not engine.use_kernels:
            raise QueryError(
                "use_kernels=True needs a distance engine constructed "
                "with kernels enabled"
            )
        else:
            self._use_kernels = bool(use_kernels)
        # Fetched once per query: with profiling off this is None and
        # the per-dequeue hook below is a single local test.
        self._profiler = _profile.active()
        self._tie = itertools.count()
        self._queue: List[Tuple[float, int, int, int, int]] = []
        self._visited: List[Set[Tuple[int, int]]] = [
            set() for _ in groups
        ]
        for index, group in enumerate(groups):
            if traversal == BOTTOM_UP:
                seed = self.tree.leaf_of(group.partition_id)
            else:
                seed = self.tree.root
            self._push(index, _ENTITY_NODE, seed.node_id, lambda: 0.0)

    def _push(
        self, group_index: int, entity: int, ident: int, key_fn
    ) -> None:
        """Enqueue once per (group, entity); the bound is computed
        lazily so already-visited entities cost one set lookup."""
        marker = (entity, ident)
        visited = self._visited[group_index]
        if marker in visited:
            return
        key = key_fn()
        if key == INFINITY:
            return
        visited.add(marker)
        heapq.heappush(
            self._queue,
            (key, next(self._tie), group_index, entity, ident),
        )
        self.stats.queue_pushes += 1

    def _retrieve_kernel(
        self, group: _Group, ident: PartitionId
    ) -> List[Tuple[Client, PartitionId, float, bool]]:
        """One facility retrieval as array kernels (Lemma 5.1 hot loop).

        The scalar loop pays, per dequeue, one Python iteration per
        client (pruned-set probe + ``idist`` with its door loops).
        Here the group's client state lives in a
        :class:`~repro.index.kernels.GroupArrays`: the active rows are
        one cached mask scan and the distances one
        :meth:`~repro.index.distance.VIPDistanceEngine.idist_values`
        call over the pack's memoised per-exit-door reductions.
        Record order, values, and the prune decisions driven by the
        returned records are bit-identical to the scalar loop; the
        states' heaps remain the tie-breaking authority.
        """
        engine = self.engine
        arrays = group.arrays
        if arrays is None:
            single = group.single_exit
            if single is None:
                single = engine.single_exit(group.partition_id)
                group.single_exit = single
            if single:
                # Single-exit-door group: no offset matrix to pack —
                # the dedicated lane answers from one iMinD plus the
                # per-client offsets, and the group keeps its plain
                # pruned-set bookkeeping (arrays stays None).
                active, values = engine.idist_single_door(
                    group.partition_id,
                    group.clients,
                    group.pruned,
                    ident,
                )
                is_existing = ident in self.existing
                return [
                    (client, ident, values[index], is_existing)
                    for index, client in enumerate(active)
                ]
            # First retrieval for this group: pack offsets once, with
            # the mask seeded from the prunes that already happened.
            arrays = engine.group_arrays(
                group.clients,
                group.partition_id,
                pruned=group.pruned,
            )
            group.arrays = arrays
        rows, values = engine.idist_values(arrays, ident)
        is_existing = ident in self.existing
        clients = group.clients
        return [
            (clients[row], ident, values[index], is_existing)
            for index, row in enumerate(rows)
        ]

    def advance(
        self,
    ) -> Optional[Tuple[float, List[Tuple[Client, PartitionId, float, bool]]]]:
        """One dequeue step: ``(Gd, records)`` or ``None`` when done."""
        if not self._queue:
            return None
        key, _tie, group_index, entity, ident = heapq.heappop(self._queue)
        self.stats.queue_pops += 1
        self.stats.iterations += 1
        group = self.groups[group_index]
        pruned = group.pruned
        if pruned and 2 * len(pruned) >= len(group.clients):
            # Lazy compaction: amortised O(1) per prune, and it keeps
            # the pruned fraction below one half so skipping pruned ids
            # during facility pops never dominates the useful work.
            self.stats.group_compaction_cost += len(group.clients)
            self.stats.group_compactions += 1
            group.clients = [
                c for c in group.clients if c.client_id not in pruned
            ]
            pruned.clear()
            if group.arrays is not None:
                group.arrays.compact(group.clients)
        if not group.clients:
            # Every client of this partition is resolved: the paper's
            # |C[p]| > 0 guard — no distances, no expansion.
            return key, []
        if entity == _ENTITY_FACILITY:
            if self._use_kernels:
                records = self._retrieve_kernel(group, ident)
            else:
                records = []
                for client in group.clients:
                    if client.client_id in pruned:
                        continue
                    dist = self.engine.idist(client, ident)
                    records.append(
                        (client, ident, dist, ident in self.existing)
                    )
            self.stats.facilities_retrieved += len(records)
            return key, records

        node = self.tree.node(ident)
        if self._profiler is not None:
            self._profiler.node_visit(
                node.depth, len(node.access_doors)
            )
        partition_id = group.partition_id
        if node.parent_id is not None:
            parent = self.tree.node(node.parent_id)
            self._push(
                group_index,
                _ENTITY_NODE,
                parent.node_id,
                lambda: self.engine.imind_node(partition_id, parent),
            )
        if node.is_leaf:
            for pid in node.partitions:
                if pid == partition_id or pid not in self.facilities:
                    continue
                self._push(
                    group_index,
                    _ENTITY_FACILITY,
                    pid,
                    lambda pid=pid: self.engine.imind_partitions(
                        partition_id, pid
                    ),
                )
        else:
            for child_id in node.child_node_ids:
                child = self.tree.node(child_id)
                self._push(
                    group_index,
                    _ENTITY_NODE,
                    child_id,
                    lambda child=child: self.engine.imind_node(
                        partition_id, child
                    ),
                )
        return key, []


class _MinMaxState:
    """Bookkeeping for ``checkList`` / ``checkAnswer`` / ``prune``.

    Maintains, incrementally:

    * the *pending* heap of retrieved ``(distance, kind, client,
      facility)`` entries not yet absorbed into ``dlow`` (the paper's
      ``increaseDist`` source), with existing-facility entries ordered
      before candidate entries at equal distance;
    * per-candidate cover counts (kept clients within ``dlow``) plus a
      lazy max-heap so ``checkAnswer`` is O(log) amortised;
    * the ``isFirst`` flag of ``checkList`` via a second heap of first
      retrieval distances.
    """

    def __init__(self, clients: Iterable[Client]) -> None:
        self.pending: List[Tuple[float, int, int, PartitionId]] = []
        self.first_heap: List[Tuple[float, int]] = []
        self.clients: Dict[int, Client] = {
            c.client_id: c for c in clients
        }
        self.pruned: Set[int] = set()
        self.flagged: Set[int] = set()
        self.kept_count = len(self.clients)
        self.first_uncovered = len(self.clients)
        self.cover_count: Dict[PartitionId, int] = {}
        self.covered_by: Dict[int, List[PartitionId]] = {}
        self.cover_heap: List[Tuple[int, PartitionId]] = []
        self.dlow = 0.0
        self.max_pruned_de = 0.0

    # -- recording -----------------------------------------------------
    def record(
        self,
        client: Client,
        facility: PartitionId,
        dist: float,
        is_existing: bool,
    ) -> None:
        if client.client_id in self.pruned:
            return
        kind = _KIND_EXISTING if is_existing else _KIND_CANDIDATE
        heapq.heappush(
            self.pending, (dist, kind, client.client_id, facility)
        )
        heapq.heappush(self.first_heap, (dist, client.client_id))

    # -- checkList -----------------------------------------------------
    def update_first(self, gd: float) -> bool:
        """Pop first-retrieval entries <= Gd; True when every kept
        client has at least one facility within Gd (``isFirst``)."""
        while self.first_heap and self.first_heap[0][0] <= gd:
            _dist, client_id = heapq.heappop(self.first_heap)
            self._flag(client_id)
        return self.first_uncovered == 0

    def _flag(self, client_id: int) -> None:
        if client_id not in self.flagged:
            self.flagged.add(client_id)
            self.first_uncovered -= 1

    # -- prune / cover -------------------------------------------------
    def absorb(self, dist: float, kind: int, client_id: int,
               facility: PartitionId) -> None:
        """Advance ``dlow`` to ``dist`` and apply one pending entry."""
        self.dlow = dist
        if client_id in self.pruned:
            return
        if kind == _KIND_EXISTING:
            self._prune(client_id, dist)
        else:
            count = self.cover_count.get(facility, 0) + 1
            self.cover_count[facility] = count
            self.covered_by.setdefault(client_id, []).append(facility)
            heapq.heappush(self.cover_heap, (-count, facility))

    def _prune(self, client_id: int, de: float) -> None:
        self.pruned.add(client_id)
        self.kept_count -= 1
        if de > self.max_pruned_de:
            self.max_pruned_de = de
        self._flag(client_id)
        for facility in self.covered_by.pop(client_id, ()):
            count = self.cover_count[facility] - 1
            self.cover_count[facility] = count
            heapq.heappush(self.cover_heap, (-count, facility))

    # -- checkAnswer -----------------------------------------------------
    def full_cover_answer(self) -> Optional[PartitionId]:
        """The smallest-id candidate covering every kept client, if any."""
        if self.kept_count == 0:
            return None
        heap = self.cover_heap
        while heap:
            count, facility = heap[0]
            if self.cover_count.get(facility) != -count:
                heapq.heappop(heap)
                continue
            if -count < self.kept_count:
                return None
            return min(
                pid
                for pid, cnt in self.cover_count.items()
                if cnt == self.kept_count
            )
        return None


def efficient_minmax(
    problem: IFLSProblem,
    options: Optional[EfficientOptions] = None,
) -> IFLSResult:
    """Answer a MinMax IFLS query with the efficient approach."""
    options = options if options is not None else EfficientOptions()
    stats = QueryStats(
        algorithm="efficient-minmax", clients_total=len(problem.clients)
    )
    started = time.perf_counter()
    if options.measure_memory:
        tracemalloc.start()
    try:
        with _trace.span(
            "query.efficient.minmax",
            stats=problem.engine.stats,
            clients=len(problem.clients),
        ):
            result = _run(problem, options, stats)
    finally:
        if options.measure_memory:
            _, peak = tracemalloc.get_traced_memory()
            stats.peak_memory_bytes = peak
            tracemalloc.stop()
    stats.elapsed_seconds = time.perf_counter() - started
    publish_query_metrics(result)
    return result


def make_groups(
    problem: IFLSProblem, group_by_partition: bool
) -> List[_Group]:
    """Traversal streams: one per client partition, or one per client
    when the grouping optimisation is ablated away."""
    if group_by_partition:
        return [
            _Group(pid, list(clients))
            for pid, clients in sorted(problem.clients_by_partition.items())
        ]
    return [
        _Group(client.partition_id, [client]) for client in problem.clients
    ]


def _run(
    problem: IFLSProblem, options: EfficientOptions, stats: QueryStats
) -> IFLSResult:
    engine = problem.engine
    before = engine.stats.snapshot()
    profiler = _profile.active()
    groups = make_groups(problem, options.group_by_partition)
    state = _MinMaxState(problem.clients)
    stream = FacilityStream(
        engine,
        groups,
        problem.existing,
        problem.candidates,
        traversal=options.traversal,
        stats=stats,
        use_kernels=options.use_kernels,
    )
    group_of_client: Dict[int, _Group] = {}
    for group in groups:
        for client in group.clients:
            group_of_client[client.client_id] = group

    def remove_from_group(client_id: int) -> None:
        if not options.prune_clients:
            return
        group = group_of_client.get(client_id)
        if group is not None:
            group.prune(client_id)

    def finish(answer: Optional[PartitionId], objective: float):
        if profiler is not None:
            profiler.bound_step(
                state.dlow, state.kept_count, len(state.pruned)
            )
        stats.clients_pruned = len(state.pruned)
        stats.candidate_answers_considered = len(state.cover_count)
        _merge_engine_stats(engine, before, stats)
        if answer is None:
            return IFLSResult(
                answer=None,
                objective=objective,
                status=ResultStatus.NO_IMPROVEMENT,
                stats=stats,
            )
        return IFLSResult(answer=answer, objective=objective, stats=stats)

    # ------------------------------------------------------------------
    # Algorithm 2 pre-phase: clients located inside a facility partition.
    # ------------------------------------------------------------------
    with _trace.span("ea.prephase", stats=engine.stats):
        for client in problem.clients:
            pid = client.partition_id
            if pid in problem.existing or pid in problem.candidates:
                state.record(client, pid, 0.0, pid in problem.existing)
                stats.facilities_retrieved += 1

        is_first = state.update_first(0.0)
        outcome = _drain(state, 0.0, is_first, remove_from_group)
    if profiler is not None:
        profiler.bound_step(0.0, state.kept_count, len(state.pruned))
    if outcome is not None:
        return finish(*outcome)

    # ------------------------------------------------------------------
    # Algorithm 3 main loop.
    # ------------------------------------------------------------------
    with _trace.span("ea.stream", stats=engine.stats):
        while True:
            step = stream.advance()
            if step is None:
                break
            gd, records = step
            for client, facility, dist, is_existing in records:
                state.record(client, facility, dist, is_existing)
            if not is_first:
                is_first = state.update_first(gd)
            outcome = _drain(state, gd, is_first, remove_from_group)
            if profiler is not None:
                profiler.bound_step(
                    gd, state.kept_count, len(state.pruned)
                )
            if outcome is not None:
                return finish(*outcome)

        # Queue exhausted: everything retrieved; finish refinement.
        outcome = _drain(state, INFINITY, True, remove_from_group)
        if outcome is not None:
            return finish(*outcome)
        if state.kept_count == 0:
            return finish(None, state.max_pruned_de)
    raise UnreachableFacilityError(
        "some clients cannot reach any candidate facility"
    )


def _drain(
    state: _MinMaxState,
    gd: float,
    is_first: bool,
    remove_from_group,
) -> Optional[Tuple[Optional[PartitionId], float]]:
    """Absorb pending entries up to ``Gd``.

    While ``isFirst`` is false no answer can exist below ``Gd`` (some
    client has no facility within ``Gd``), so entries are absorbed
    without answer checks — the paper's Lines 26–28.  Once true, the
    paper's ``increaseDist`` loop applies: one entry at a time with a
    ``checkAnswer`` after each (Lines 30–37).

    Returns ``(answer, objective)`` when the query is decided.
    """
    pending = state.pending
    while pending and pending[0][0] <= gd:
        dist, kind, client_id, facility = heapq.heappop(pending)
        state.absorb(dist, kind, client_id, facility)
        if kind == _KIND_EXISTING:
            remove_from_group(client_id)
        if state.kept_count == 0:
            return None, state.max_pruned_de
        if is_first:
            answer = state.full_cover_answer()
            if answer is not None:
                return answer, state.dlow
    return None


def _merge_engine_stats(engine, before: Dict[str, int], stats: QueryStats):
    after = engine.stats.snapshot()
    for key, value in after.items():
        delta = value - before.get(key, 0)
        setattr(
            stats.distance, key, getattr(stats.distance, key, 0) + delta
        )
