"""Batched IFLS execution with warm cross-query distance caches.

The paper's efficiency argument (Section 5.3.1) rests on reusing
``iMinD`` computations across clients *within* one query.
:class:`QuerySession` extends that reuse *across* queries: it owns a
venue's VIP-tree and one persistent :class:`VIPDistanceEngine`, and
answers a sequence of IFLS queries — mixed objectives, varying client
and facility sets — while the partition-pair, door-pair, and
per-(partition, node) ``iMinD`` memos stay warm.  Distances depend
only on the venue geometry, never on the query, so a warm answer is
bit-identical to a cold one; what changes is how many matrix
computations the batch pays.

Lifecycle::

    session = QuerySession(engine)            # or engine.session()
    result = session.query(clients, facilities)          # warm minmax
    results = session.run(batch)                         # BatchQuery seq
    print(session.report().describe())                   # cache stats

Warm caches are safe to reuse for as long as the venue geometry
(partitions, doors, door connectivity) is unchanged — client crowds and
facility sets may vary freely between queries.  After a venue edit the
tree itself is stale: rebuild the :class:`~repro.core.queries.IFLSEngine`
and start a new session (:meth:`QuerySession.invalidate` merely drops
the memos, for A/B-testing cold behaviour on a live session).

``max_cache_entries`` bounds the combined memo size (oldest entries are
evicted first); ``None`` keeps every distance ever computed.
"""

from __future__ import annotations

import time
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..indoor.entities import Client, FacilitySets, PartitionId
from ..index.distance import VIPDistanceEngine
from ..obs import metrics as _metrics
from ..obs import profile as _profile
from ..obs import trace as _trace
from ..obs.explain import ExplainReport, build_report
from ..obs.metrics import MetricsRegistry
from ..obs.profile import ProfileCollector
from ..obs.trace import Tracer
from .efficient import EfficientOptions, efficient_minmax
from .maxsum import efficient_maxsum
from .mindist import efficient_mindist
from .problem import IFLSProblem
from .queries import MAXSUM, MINDIST, MINMAX, IFLSEngine
from .result import IFLSResult

_SOLVERS = {
    MINMAX: efficient_minmax,
    MINDIST: efficient_mindist,
    MAXSUM: efficient_maxsum,
}


@dataclass(frozen=True)
class BatchQuery:
    """One query of a batch: inputs plus an optional display label.

    ``request_id`` is the telemetry correlation id (empty when the
    caller did not mint one); it rides the batch into the executors so
    shard spans and per-query records stay attributable.
    """

    clients: Tuple[Client, ...]
    facilities: FacilitySets
    objective: str = MINMAX
    options: Optional[EfficientOptions] = None
    label: str = ""
    request_id: str = ""

    def __post_init__(self) -> None:
        if self.objective not in _SOLVERS:
            raise QueryError(f"unknown objective {self.objective!r}")
        # Accept any sequence of clients; store an immutable tuple.
        object.__setattr__(self, "clients", tuple(self.clients))


@dataclass
class SessionQueryRecord:
    """Per-query cache effectiveness: engine-counter deltas."""

    index: int
    label: str
    objective: str
    answer: Optional[PartitionId]
    objective_value: float
    clients: int
    elapsed_seconds: float
    distance_delta: Dict[str, int]
    cache_entries_after: int
    request_id: str = ""

    @property
    def distance_computations(self) -> int:
        """Matrix computations this query actually paid."""
        return self.distance_delta["distance_computations"]

    @property
    def cache_hits(self) -> int:
        """Memo hits this query was served (all three caches)."""
        return (
            self.distance_delta["d2d_cache_hits"]
            + self.distance_delta["imind_cache_hits"]
            + self.distance_delta["imind_node_cache_hits"]
        )

    @property
    def cache_hit_rate(self) -> float:
        """Hits per distance request within this query."""
        calls = self.distance_computations + self.cache_hits
        return self.cache_hits / calls if calls else 0.0


@dataclass
class SessionReport:
    """Aggregated cache statistics of a session."""

    queries: int
    totals: Dict[str, int]
    cache_sizes: Dict[str, int]
    cache_entries: int
    cache_bytes: int
    max_cache_entries: Optional[int]
    records: List[SessionQueryRecord] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        """Total memo hits across the session."""
        return (
            self.totals["d2d_cache_hits"]
            + self.totals["imind_cache_hits"]
            + self.totals["imind_node_cache_hits"]
        )

    @property
    def cache_hit_rate(self) -> float:
        """Session-wide hits per distance request."""
        calls = self.totals["distance_computations"] + self.cache_hits
        return self.cache_hits / calls if calls else 0.0

    def describe(self, per_query: bool = False) -> str:
        """Human-readable cache-statistics report."""
        lines = [
            f"session: {self.queries} queries answered",
            (
                f"caches:  {self.cache_entries} entries "
                f"(~{self.cache_bytes / 1024:.1f} KiB)"
                + (
                    f", budget {self.max_cache_entries}"
                    if self.max_cache_entries is not None
                    else ", unbounded"
                )
            ),
            "         "
            + ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.cache_sizes.items())
            ),
            (
                f"hits:    {self.cache_hits} "
                f"({self.cache_hit_rate:.0%} of "
                f"{self.totals['distance_computations'] + self.cache_hits}"
                f" distance requests), "
                f"{self.totals['cache_evictions']} evictions"
            ),
            (
                f"paid:    {self.totals['distance_computations']} "
                f"distance computations, "
                f"{self.totals['d2d_lookups']} door-pair lookups"
            ),
        ]
        if per_query and self.records:
            lines.append("")
            lines.append(
                f"{'#':>4} {'label':<14} {'objective':<9} {'|C|':>6} "
                f"{'time(s)':>9} {'computed':>9} {'hits':>9} {'rate':>6}"
            )
            for r in self.records:
                lines.append(
                    f"{r.index:>4} {r.label[:14]:<14} "
                    f"{r.objective:<9} {r.clients:>6} "
                    f"{r.elapsed_seconds:>9.4f} "
                    f"{r.distance_computations:>9} {r.cache_hits:>9} "
                    f"{r.cache_hit_rate:>6.0%}"
                )
        return "\n".join(lines)


class QuerySession:
    """A batch-execution layer over one venue's VIP-tree.

    Parameters
    ----------
    engine:
        The prepared :class:`~repro.core.queries.IFLSEngine` whose tree
        the session shares.  The session gets its *own* persistent
        :class:`VIPDistanceEngine`, so its cache statistics are not
        polluted by (and do not pollute) interactive queries on the
        engine.
    max_cache_entries:
        Bounded-memory eviction knob, forwarded to the distance engine;
        ``None`` (default) keeps caches unbounded.
    keep_records:
        Collect a :class:`SessionQueryRecord` per query (per-query
        counter deltas).  Disable for very long-running sessions where
        even one record per query is too much bookkeeping.
    trace:
        Optional :class:`~repro.obs.trace.Tracer`.  When given, it is
        scope-installed as the process-global tracer for the duration
        of every :meth:`query` / :meth:`run` call, so all spans of the
        instrumentation contract (``docs/OBSERVABILITY.md``) land in
        it without touching the globals yourself.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`, installed
        the same way for the ``query.*`` / ``cache.*`` / ``parallel.*``
        metrics.  Leaving both ``None`` keeps whatever collectors are
        (or are not) globally active — the default is fully
        uninstrumented execution.
    explain:
        Profile every query through the EXPLAIN profiler: each
        :meth:`query` (and each query of a sharded :meth:`run`)
        appends an :class:`~repro.obs.explain.ExplainReport` to
        ``explain_reports``, carrying per-phase counter attribution,
        the Lemma 5.1 bound evolution, VIP-tree visit counts, and the
        warm-cache breakdown.  When a ``trace`` tracer is also given,
        the profiled spans are absorbed into it afterwards.
    """

    def __init__(
        self,
        engine: IFLSEngine,
        max_cache_entries: Optional[int] = None,
        keep_records: bool = True,
        trace: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        explain: bool = False,
    ) -> None:
        self.engine = engine
        self.tree = engine.tree
        self.distances = VIPDistanceEngine(
            engine.tree,
            memoize=True,
            max_cache_entries=max_cache_entries,
            use_kernels=engine.use_kernels,
        )
        self.keep_records = keep_records
        self.records: List[SessionQueryRecord] = []
        self.queries_answered = 0
        self.tracer = trace
        self.metrics = metrics
        self.explain = explain
        self.explain_reports: List[ExplainReport] = []

    @contextmanager
    def _observing(self) -> Iterator[None]:
        """Install this session's collectors (if any) for one call."""
        if self.tracer is None and self.metrics is None:
            yield
            return
        with ExitStack() as stack:
            if self.tracer is not None:
                stack.enter_context(_trace.use(self.tracer))
            if self.metrics is not None:
                stack.enter_context(_metrics.use(self.metrics))
            yield

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def query(
        self,
        clients: Sequence[Client],
        facilities: FacilitySets,
        objective: str = MINMAX,
        options: Optional[EfficientOptions] = None,
        label: str = "",
        request_id: str = "",
    ) -> IFLSResult:
        """Answer one query on the session's warm distance engine.

        ``request_id`` (when non-empty) tags the ``session.query``
        span and the query's :class:`SessionQueryRecord`, correlating
        them with whatever minted the id (the service or
        ``Engine.query``).
        """
        solver = _SOLVERS.get(objective)
        if solver is None:
            raise QueryError(f"unknown objective {objective!r}")
        problem = IFLSProblem(self.distances, list(clients), facilities)
        span_attrs = {"objective": objective, "label": label}
        if request_id:
            span_attrs["request_id"] = request_id
        before = self.distances.stats.snapshot()
        started = time.perf_counter()
        with self._observing():
            with _trace.span("session.query", **span_attrs):
                if self.explain:
                    result = self._explained_solve(
                        solver, problem, options, before,
                        objective, label,
                    )
                else:
                    result = solver(problem, options)
            _metrics.set_gauge(
                "cache.entries", self.distances.cache_entries()
            )
        elapsed = time.perf_counter() - started
        self.queries_answered += 1
        if self.keep_records:
            after = self.distances.stats.snapshot()
            delta = {
                key: value - before.get(key, 0)
                for key, value in after.items()
            }
            self.records.append(
                SessionQueryRecord(
                    index=self.queries_answered,
                    label=label,
                    objective=objective,
                    answer=result.answer,
                    objective_value=result.objective,
                    clients=len(problem.clients),
                    elapsed_seconds=elapsed,
                    distance_delta=delta,
                    cache_entries_after=self.distances.cache_entries(),
                    request_id=request_id,
                )
            )
        return result

    def _explained_solve(
        self,
        solver,
        problem: IFLSProblem,
        options: Optional[EfficientOptions],
        before: Dict[str, int],
        objective: str,
        label: str,
    ) -> IFLSResult:
        """Run one solver call under the EXPLAIN profiler.

        A private tracer and profile collector observe the solve; the
        resulting report lands in ``explain_reports`` and the profiled
        spans are absorbed into whatever tracer is currently active
        (the session's, or an ambient one), parented under the open
        ``session.query`` span.
        """
        collector = ProfileCollector()
        tracer = Tracer()
        with _trace.use(tracer), _profile.use(collector):
            with _trace.span(
                "explain.query",
                stats=self.distances.stats,
                objective=objective,
                label=label,
            ):
                result = solver(problem, options)
        ambient = _trace.active()
        if ambient is not None:
            ambient.absorb(tracer.sorted_records())
        after = self.distances.stats.snapshot()
        totals = {
            key: value - before.get(key, 0)
            for key, value in after.items()
        }
        report = build_report(
            tracer.sorted_records(),
            collector,
            totals,
            result,
            label=label,
            objective=objective,
            algorithm="efficient",
            cache_entries=self.distances.cache_entries(),
        )
        report.index = self.queries_answered + 1
        self.explain_reports.append(report)
        return result

    def run(
        self, batch: Iterable[BatchQuery], workers: int = 1
    ) -> List[IFLSResult]:
        """Answer a whole batch; results always follow submission order.

        ``batch`` items are
        :class:`~repro.core.request.QueryRequest` objects — the
        primary spelling every surface shares (see ``docs/API.md``).
        The pre-1.6 :class:`BatchQuery` spelling is deprecated but
        still accepted, and the two may be mixed (both convert on
        entry; the executor hot path is unchanged).

        ``workers=1`` (default) answers serially on this session's own
        warm engine — the original code path, byte for byte.
        ``workers > 1`` shards the batch across a process pool
        (:func:`~repro.core.parallel.run_batch_parallel`): each worker
        runs its own warm session over the shared venue + VIP-tree, and
        the per-worker distance counters and query records are merged
        back into *this* session afterwards, so :meth:`report` keeps
        describing everything the session has answered.  Answers are
        identical for every worker count; only cache-warmth accounting
        differs.  Note the workers' memo tables die with the pool —
        ``report().cache_entries`` keeps reflecting this process's own
        engine only.
        """
        from .request import as_batch_queries

        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        batch = as_batch_queries(list(batch))
        if workers == 1 or len(batch) <= 1:
            return [
                self.query(
                    query.clients,
                    query.facilities,
                    objective=query.objective,
                    options=query.options,
                    label=query.label or f"q{self.queries_answered + 1}",
                    request_id=query.request_id,
                )
                for query in batch
            ]
        from ..index.distance import DistanceStats
        from .parallel import run_batch_parallel

        with self._observing():
            outcome = run_batch_parallel(
                self.engine,
                batch,
                workers,
                max_cache_entries=self.distances.max_cache_entries,
                keep_records=self.keep_records,
                explain=self.explain,
            )
        base = self.queries_answered
        for record in outcome.report.records:
            record.index += base
            self.records.append(record)
        for report in outcome.explain_reports:
            if report.index is not None:
                report.index += base
            self.explain_reports.append(report)
        self.queries_answered += len(batch)
        self.distances.stats.merge(DistanceStats(**outcome.report.totals))
        return outcome.results

    # ------------------------------------------------------------------
    # Cache statistics and lifecycle
    # ------------------------------------------------------------------
    def report(self) -> SessionReport:
        """Current cache statistics (totals plus per-query deltas)."""
        return SessionReport(
            queries=self.queries_answered,
            totals=self.distances.stats.snapshot(),
            cache_sizes=self.distances.cache_sizes(),
            cache_entries=self.distances.cache_entries(),
            cache_bytes=self.distances.cache_bytes(),
            max_cache_entries=self.distances.max_cache_entries,
            records=list(self.records),
        )

    def take_records(self) -> List[SessionQueryRecord]:
        """Return and clear the per-query records collected so far.

        Long-lived executors (the query service's session pools) call
        this after every flush so per-query deltas can travel in the
        responses without the record list growing without bound.
        ``queries_answered`` and the distance ledger keep accumulating;
        only the record list is drained.
        """
        records = self.records
        self.records = []
        return records

    def invalidate(self) -> None:
        """Drop every memoised distance (the next query runs cold).

        Note this does *not* refresh the VIP-tree: after editing the
        venue geometry, rebuild the engine and open a new session.
        """
        self.distances.clear_caches()

    @property
    def cache_entries(self) -> int:
        """Total memoised entries currently held."""
        return self.distances.cache_entries()
