"""High-level query facade.

:class:`IFLSEngine` wraps a venue with its VIP-tree and distance engine
and answers IFLS queries with any algorithm/objective combination.
This is the main entry point of the library::

    from repro import IFLSEngine, FacilitySets

    engine = IFLSEngine(venue)
    result = engine.query(clients, FacilitySets(existing, candidates))
    print(result.answer, result.objective)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.explain import ExplainReport
    from .session import QuerySession

from ..errors import QueryError
from ..indoor.entities import Client, FacilitySets, PartitionId
from ..indoor.venue import IndoorVenue
from ..index.distance import VIPDistanceEngine
from ..index.viptree import VIPTree
from .baseline import modified_minmax
from .bruteforce import (
    brute_force_maxsum,
    brute_force_mindist,
    brute_force_minmax,
)
from .efficient import EfficientOptions, efficient_minmax
from .maxsum import efficient_maxsum
from .mindist import efficient_mindist
from .problem import IFLSProblem
from .result import IFLSResult

MINMAX = "minmax"
MINDIST = "mindist"
MAXSUM = "maxsum"

EFFICIENT = "efficient"
BASELINE = "baseline"
BRUTE_FORCE = "bruteforce"

_OBJECTIVES = (MINMAX, MINDIST, MAXSUM)
_ALGORITHMS = (EFFICIENT, BASELINE, BRUTE_FORCE)


class IFLSEngine:
    """A venue prepared for IFLS queries.

    Builds (or accepts) the VIP-tree once; queries share the tree and
    its memoised distances, mirroring the paper's setup where ``Fe`` is
    indexed offline and query parameters arrive at query time.
    """

    def __init__(
        self,
        venue: IndoorVenue,
        tree: Optional[VIPTree] = None,
        leaf_capacity: int = 8,
        fanout: int = 4,
        use_kernels: Optional[bool] = None,
    ) -> None:
        self.venue = venue
        self.tree = (
            tree
            if tree is not None
            else VIPTree(venue, leaf_capacity=leaf_capacity, fanout=fanout)
        )
        self.distances = VIPDistanceEngine(
            self.tree, use_kernels=use_kernels
        )

    @property
    def use_kernels(self) -> bool:
        """Whether this engine resolved to the array-kernel fast path.

        Set at construction (``use_kernels=None`` follows numpy
        availability and ``IFLS_USE_KERNELS``); cold queries, explains,
        and sessions created from this engine inherit the resolved
        value.
        """
        return self.distances.use_kernels

    def problem(
        self,
        clients: Sequence[Client],
        facilities: FacilitySets,
        distances: Optional[VIPDistanceEngine] = None,
    ) -> IFLSProblem:
        """Validate inputs and bind them to this engine."""
        engine = distances if distances is not None else self.distances
        return IFLSProblem(engine, list(clients), facilities)

    def query(
        self,
        clients: Sequence[Client],
        facilities: FacilitySets,
        objective: str = MINMAX,
        algorithm: str = EFFICIENT,
        options: Optional[EfficientOptions] = None,
        measure_memory: bool = False,
        cold: bool = False,
    ) -> IFLSResult:
        """Answer one IFLS query.

        Parameters
        ----------
        objective:
            ``"minmax"`` (the paper's IFLS query), ``"mindist"``, or
            ``"maxsum"`` (Section 7 extensions).
        algorithm:
            ``"efficient"`` (Algorithms 2-3), ``"baseline"`` (modified
            MinMax, only for the minmax objective), or ``"bruteforce"``.
        options:
            Ablation switches for the efficient approach.
        measure_memory:
            Track peak memory via ``tracemalloc`` (slows the query; used
            by the benchmark harness).
        cold:
            Run on a fresh distance engine instead of this
            :class:`IFLSEngine`'s shared, warm one.  The baseline gets a
            non-memoising engine (the paper's baseline considers each
            client separately); used by the benchmark harness so
            measurements are independent and fair.
        """
        if objective not in _OBJECTIVES:
            raise QueryError(f"unknown objective {objective!r}")
        if algorithm not in _ALGORITHMS:
            raise QueryError(f"unknown algorithm {algorithm!r}")
        distances = None
        if cold:
            distances = VIPDistanceEngine(
                self.tree,
                memoize=algorithm != BASELINE,
                use_kernels=self.use_kernels,
            )
        problem = self.problem(clients, facilities, distances=distances)
        if algorithm == BRUTE_FORCE:
            dispatch = {
                MINMAX: brute_force_minmax,
                MINDIST: brute_force_mindist,
                MAXSUM: brute_force_maxsum,
            }
            if not measure_memory:
                return dispatch[objective](problem)
            import time
            import tracemalloc

            tracemalloc.start()
            started = time.perf_counter()
            try:
                result = dispatch[objective](problem)
            finally:
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
            result.stats.peak_memory_bytes = peak
            result.stats.elapsed_seconds = time.perf_counter() - started
            return result
        if algorithm == BASELINE:
            if objective != MINMAX:
                raise QueryError(
                    "the modified MinMax baseline only supports the "
                    "minmax objective (paper Section 4)"
                )
            return modified_minmax(problem, measure_memory=measure_memory)
        if options is None:
            options = EfficientOptions(measure_memory=measure_memory)
        elif measure_memory and not options.measure_memory:
            options = EfficientOptions(
                prune_clients=options.prune_clients,
                group_by_partition=options.group_by_partition,
                traversal=options.traversal,
                measure_memory=True,
                use_kernels=options.use_kernels,
            )
        dispatch = {
            MINMAX: efficient_minmax,
            MINDIST: efficient_mindist,
            MAXSUM: efficient_maxsum,
        }
        return dispatch[objective](problem, options)

    def explain(
        self,
        clients: Sequence[Client],
        facilities: FacilitySets,
        objective: str = MINMAX,
        algorithm: str = EFFICIENT,
        options: Optional[EfficientOptions] = None,
        label: str = "",
        cold: bool = False,
        bound_limit: int = 512,
    ) -> "ExplainReport":
        """Answer one query under the EXPLAIN profiler.

        Runs the query exactly like :meth:`query` but with a private
        tracer and a :class:`~repro.obs.profile.ProfileCollector`
        installed, and returns a structured
        :class:`~repro.obs.explain.ExplainReport`: per-phase wall time
        with exact counter attribution, the Lemma 5.1 bound evolution,
        per-level VIP-tree visit counts, and the cache breakdown.  The
        result itself is discarded — re-run :meth:`query` for it; the
        report carries the answer/objective/status triple.

        ``algorithm`` accepts ``"efficient"`` and ``"baseline"`` (the
        brute-force oracle has no phase structure worth explaining).
        ``cold=True`` profiles on a fresh distance engine so repeated
        explains are reproducible; the default shares this engine's
        warm caches, like :meth:`query`.  ``bound_limit`` caps the
        recorded bound-evolution samples (the ends always survive).

        If a tracer is globally active (e.g. :func:`repro.obs.observe`)
        the profiled spans are absorbed into it afterwards, so EXPLAIN
        composes with ambient tracing.
        """
        from ..obs import profile as _profile
        from ..obs import trace as _trace
        from ..obs.explain import build_report
        from ..obs.profile import ProfileCollector
        from ..obs.trace import Tracer

        if objective not in _OBJECTIVES:
            raise QueryError(f"unknown objective {objective!r}")
        if algorithm not in (EFFICIENT, BASELINE):
            raise QueryError(
                "explain supports the efficient and baseline "
                f"algorithms, not {algorithm!r}"
            )
        if algorithm == BASELINE and objective != MINMAX:
            raise QueryError(
                "the modified MinMax baseline only supports the "
                "minmax objective (paper Section 4)"
            )
        distances = self.distances
        if cold:
            distances = VIPDistanceEngine(
                self.tree,
                memoize=algorithm != BASELINE,
                use_kernels=self.use_kernels,
            )
        problem = self.problem(clients, facilities, distances=distances)
        collector = ProfileCollector(bound_limit=bound_limit)
        tracer = Tracer()
        outer = _trace.active()
        before = distances.stats.snapshot()
        with _trace.use(tracer), _profile.use(collector):
            with _trace.span(
                "explain.query",
                stats=distances.stats,
                objective=objective,
                algorithm=algorithm,
            ):
                if algorithm == BASELINE:
                    result = modified_minmax(problem)
                else:
                    dispatch = {
                        MINMAX: efficient_minmax,
                        MINDIST: efficient_mindist,
                        MAXSUM: efficient_maxsum,
                    }
                    result = dispatch[objective](problem, options)
        if outer is not None:
            outer.absorb(tracer.sorted_records())
        after = distances.stats.snapshot()
        totals = {
            key: value - before.get(key, 0)
            for key, value in after.items()
        }
        return build_report(
            tracer.sorted_records(),
            collector,
            totals,
            result,
            label=label,
            objective=objective,
            algorithm=algorithm,
        )

    def session(
        self,
        max_cache_entries: Optional[int] = None,
        keep_records: bool = True,
        explain: bool = False,
    ) -> "QuerySession":
        """Open a batch-execution session sharing this engine's tree.

        The session answers query sequences on its own persistent
        distance engine, keeping the ``iMinD`` caches warm across
        queries — see :mod:`repro.core.session`.  ``explain=True``
        additionally profiles every query into
        ``session.explain_reports``.
        """
        from .session import QuerySession

        return QuerySession(
            self,
            max_cache_entries=max_cache_entries,
            keep_records=keep_records,
            explain=explain,
        )

    # Convenience wrappers -------------------------------------------------
    def minmax(
        self,
        clients: Sequence[Client],
        existing: Iterable[PartitionId],
        candidates: Iterable[PartitionId],
        algorithm: str = EFFICIENT,
    ) -> IFLSResult:
        """Shorthand for the paper's IFLS query."""
        return self.query(
            clients,
            FacilitySets(frozenset(existing), frozenset(candidates)),
            objective=MINMAX,
            algorithm=algorithm,
        )
