"""k-IFLS: return the k best candidate locations.

Most non-indoor location-selection work returns either one or k optimal
locations (paper Table 1's ``|Query Answer|`` column); the paper's IFLS
query returns one.  This module extends the library to top-k for all
three objectives with an exact branch-and-bound evaluator:

* each client's nearest-existing distance ``de(c)`` is computed once
  (VIP-tree NN search);
* candidates are evaluated in ascending order of their lower-bound
  distance from the *worst* client, so good candidates are seen early
  and the running k-th best value ``tau`` becomes tight quickly;
* a candidate's evaluation aborts as soon as its partial objective can
  no longer beat ``tau`` (MinMax: the running max only grows; MinDist:
  the running sum only grows; MaxSum: remaining clients bound the
  achievable win count).

The result order is deterministic: objective value first, partition id
second.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import QueryError
from ..index.search import FacilitySearch
from .problem import IFLSProblem
from .queries import MAXSUM, MINDIST, MINMAX

INFINITY = float("inf")


@dataclass(frozen=True)
class RankedCandidate:
    """One entry of a top-k answer."""

    rank: int
    candidate: int
    objective: float


@dataclass
class TopKStats:
    """Work counters for the branch-and-bound evaluator."""

    candidates_evaluated: int = 0
    evaluations_aborted: int = 0
    client_terms_computed: int = 0


def _existing_distances(problem: IFLSProblem) -> List[float]:
    search = FacilitySearch(problem.engine, problem.existing)
    out = []
    for client in problem.clients:
        nearest = search.nearest(client)
        out.append(INFINITY if nearest is None else nearest[1])
    return out


def _ordered_candidates(
    problem: IFLSProblem, de: List[float]
) -> List[int]:
    """Candidates sorted by their bound from the worst client."""
    worst_index = max(range(len(de)), key=lambda i: (de[i], -i))
    worst = problem.clients[worst_index]
    engine = problem.engine
    keyed = [
        (engine.imind_partitions(worst.partition_id, candidate), candidate)
        for candidate in problem.candidates
    ]
    keyed.sort()
    return [candidate for _key, candidate in keyed]


def top_k_ifls(
    problem: IFLSProblem,
    k: int,
    objective: str = MINMAX,
) -> Tuple[List[RankedCandidate], TopKStats]:
    """Exact top-k candidates for the given objective.

    Returns at most ``min(k, |Fn|)`` entries, best first, with the
    evaluator's work counters.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if objective not in (MINMAX, MINDIST, MAXSUM):
        raise QueryError(f"unknown objective {objective!r}")
    de = _existing_distances(problem)
    order = _ordered_candidates(problem, de)
    engine = problem.engine
    clients = problem.clients
    stats = TopKStats()

    # Max-heap (by negated goodness) of the current best k:
    # entries are (sort_key, candidate) where smaller sort_key = better.
    heap: List[Tuple[float, int]] = []  # (-sort_key, candidate): worst on top

    def kth_bound() -> float:
        if len(heap) < min(k, len(order)):
            return INFINITY
        return -heap[0][0]

    values = {}
    for candidate in order:
        stats.candidates_evaluated += 1
        tau = kth_bound()
        value = _evaluate(
            engine, clients, de, candidate, objective, tau, stats
        )
        if value is None:
            stats.evaluations_aborted += 1
            continue
        values[candidate] = value
        sort_key = _sort_key(value, objective)
        if len(heap) < k:
            heapq.heappush(heap, (-sort_key, candidate))
        elif sort_key < -heap[0][0]:
            heapq.heapreplace(heap, (-sort_key, candidate))

    chosen = sorted(
        ((-neg, candidate) for neg, candidate in heap),
        key=lambda item: (item[0], item[1]),
    )
    return (
        [
            RankedCandidate(
                rank=i + 1,
                candidate=candidate,
                objective=values[candidate],
            )
            for i, (_key, candidate) in enumerate(chosen)
        ],
        stats,
    )


def _sort_key(value: float, objective: str) -> float:
    """Smaller key = better candidate."""
    return -value if objective == MAXSUM else value


def _evaluate(
    engine, clients, de, candidate, objective, tau, stats
):
    """Objective of ``candidate``; ``None`` once it cannot beat tau."""
    if objective == MINMAX:
        running = 0.0
        for i, client in enumerate(clients):
            stats.client_terms_computed += 1
            term = min(de[i], engine.idist(client, candidate))
            if term > running:
                running = term
                if running >= tau and tau < INFINITY:
                    return None
        return running
    if objective == MINDIST:
        running = 0.0
        for i, client in enumerate(clients):
            stats.client_terms_computed += 1
            running += min(de[i], engine.idist(client, candidate))
            if running >= tau and tau < INFINITY:
                return None
        return running
    # MAXSUM: abort when even winning all remaining clients loses.
    wins = 0
    remaining = len(clients)
    threshold = None if tau == INFINITY else -tau
    for i, client in enumerate(clients):
        stats.client_terms_computed += 1
        remaining -= 1
        if engine.idist(client, candidate) < de[i]:
            wins += 1
        if threshold is not None and wins + remaining < threshold:
            return None
    return float(wins)
