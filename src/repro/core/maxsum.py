"""MaxSum extension of the efficient approach (paper Section 7).

The objective becomes the number of clients for whom the new facility
would be strictly nearer than every existing facility.  The traversal
and the client settling rule are shared with MinMax/MinDist; candidate
refinement uses *upper bounds on the win count*, as sketched in the
paper ("the upper bound of the total count can be used to refine the
candidate answer set"):

* a **win** of candidate ``n`` on client ``c`` is determined when
  either both ``d(c, n)`` and ``de(c)`` are known, or ``d(c, n) <= Gd``
  while the client is unsettled (then ``d < de``), or the client is
  settled and ``n`` was never retrieved for it (then ``d > Gd >= de`` —
  a loss);
* the status of an unsettled client against an unretrieved candidate is
  open, so candidate ``n``'s upper bound is
  ``wins(n) + #unsettled clients without a determined win on n``;
* the answer is declared once some fully-determined candidate's count
  reaches every other candidate's upper bound.
"""

from __future__ import annotations

import heapq
import time
import tracemalloc
from typing import Dict, List, Optional, Set, Tuple

from ..indoor.entities import PartitionId
from ..obs import profile as _profile
from ..obs import trace as _trace
from .efficient import (
    EfficientOptions,
    FacilityStream,
    _merge_engine_stats,
    make_groups,
)
from .problem import IFLSProblem
from .result import IFLSResult, ResultStatus
from .stats import QueryStats, publish_query_metrics


class _MaxSumState:
    """Incremental win counts and upper bounds for MaxSum.

    Retrieval events are absorbed in global distance order with
    existing-facility events breaking ties first (one heap), so the
    invariant "client unsettled while absorbing a candidate event at
    distance d implies de > d" holds — a tie ``d == de`` settles the
    client first and correctly does *not* count as a strict win.
    """

    _EXISTING = 0
    _CANDIDATE = 1

    def __init__(self, problem: IFLSProblem) -> None:
        self.candidates: Set[PartitionId] = set(problem.candidates)
        self.unsettled = {c.client_id for c in problem.clients}
        self.settled_de: Dict[int, float] = {}
        self.wins: Dict[PartitionId, int] = {}
        # Wins credited while the client was unsettled; the complement
        # (unsettled clients without a win on n) is the open-status set.
        self.unsettled_wins: Dict[PartitionId, int] = {}
        self.win_pairs: Dict[int, Set[PartitionId]] = {}
        self.recorded: Dict[int, Dict[PartitionId, float]] = {}
        self.events: List[Tuple[float, int, int, PartitionId]] = []
        # Settle events not yet propagated to the traversal groups.
        self.newly_settled: List[int] = []

    def record(
        self, client_id: int, facility: PartitionId, dist: float,
        is_existing: bool,
    ) -> None:
        if client_id in self.settled_de:
            # Only possible with pruning ablated: judge immediately.
            if not is_existing and dist < self.settled_de[client_id]:
                self.wins[facility] = self.wins.get(facility, 0) + 1
            return
        kind = self._EXISTING if is_existing else self._CANDIDATE
        if not is_existing:
            self.recorded.setdefault(client_id, {})[facility] = dist
        heapq.heappush(self.events, (dist, kind, client_id, facility))

    def advance(self, gd: float) -> None:
        while self.events and self.events[0][0] <= gd:
            dist, kind, client_id, facility = heapq.heappop(self.events)
            if client_id not in self.unsettled:
                continue
            if kind == self._EXISTING:
                self._settle(client_id, dist)
                continue
            marks = self.win_pairs.setdefault(client_id, set())
            if facility in marks:
                continue
            # Unsettled here means de > dist: a determined strict win.
            marks.add(facility)
            self.wins[facility] = self.wins.get(facility, 0) + 1
            self.unsettled_wins[facility] = (
                self.unsettled_wins.get(facility, 0) + 1
            )

    def _settle(self, client_id: int, de: float) -> None:
        self.unsettled.discard(client_id)
        self.settled_de[client_id] = de
        self.newly_settled.append(client_id)
        marks = self.win_pairs.pop(client_id, set())
        for facility in marks:
            self.unsettled_wins[facility] -= 1
        for facility, dist in self.recorded.pop(client_id, {}).items():
            if facility in marks:
                continue  # already credited while unsettled
            if dist < de:
                self.wins[facility] = self.wins.get(facility, 0) + 1

    def upper_bound(self, facility: PartitionId) -> int:
        open_statuses = len(self.unsettled) - self.unsettled_wins.get(
            facility, 0
        )
        return self.wins.get(facility, 0) + open_statuses

    def exact_count(self, facility: PartitionId) -> Optional[int]:
        if self.unsettled_wins.get(facility, 0) != len(self.unsettled):
            return None
        return self.wins.get(facility, 0)

    def check_answer(self) -> Optional[Tuple[PartitionId, int]]:
        best_count = -1
        best_pid: Optional[PartitionId] = None
        for facility in self.candidates:
            count = self.exact_count(facility)
            if count is None:
                continue
            if count > best_count or (
                count == best_count
                and best_pid is not None
                and facility < best_pid
            ):
                best_count = count
                best_pid = facility
        if best_pid is None:
            return None
        for facility in self.candidates:
            if facility == best_pid:
                continue
            bound = self.upper_bound(facility)
            if bound > best_count:
                return None
            if bound == best_count and self.exact_count(facility) is None:
                # A competitor could still tie with a smaller id.
                if facility < best_pid:
                    return None
        return best_pid, best_count


def efficient_maxsum(
    problem: IFLSProblem,
    options: Optional[EfficientOptions] = None,
) -> IFLSResult:
    """Answer a MaxSum IFLS query (win-count objective)."""
    options = options if options is not None else EfficientOptions()
    stats = QueryStats(
        algorithm="efficient-maxsum", clients_total=len(problem.clients)
    )
    started = time.perf_counter()
    before = problem.engine.stats.snapshot()
    if options.measure_memory:
        tracemalloc.start()
    try:
        with _trace.span(
            "query.efficient.maxsum",
            stats=problem.engine.stats,
            clients=len(problem.clients),
        ):
            result = _run(problem, options, stats)
    finally:
        if options.measure_memory:
            _, peak = tracemalloc.get_traced_memory()
            stats.peak_memory_bytes = peak
            tracemalloc.stop()
    _merge_engine_stats(problem.engine, before, stats)
    stats.elapsed_seconds = time.perf_counter() - started
    publish_query_metrics(result)
    return result


def _run(
    problem: IFLSProblem, options: EfficientOptions, stats: QueryStats
) -> IFLSResult:
    profiler = _profile.active()
    groups = make_groups(problem, options.group_by_partition)
    state = _MaxSumState(problem)
    stream = FacilityStream(
        problem.engine,
        groups,
        problem.existing,
        problem.candidates,
        traversal=options.traversal,
        stats=stats,
        use_kernels=options.use_kernels,
    )

    group_of_client = {}
    for group in groups:
        for client in group.clients:
            group_of_client[client.client_id] = group

    def settle_prune() -> None:
        settled = state.newly_settled
        if not settled:
            return
        if options.prune_clients:
            for client_id in settled:
                group = group_of_client.get(client_id)
                if group is not None:
                    group.prune(client_id)
        settled.clear()

    with _trace.span("ea.prephase", stats=problem.engine.stats):
        for client in problem.clients:
            pid = client.partition_id
            if pid in problem.existing or pid in problem.candidates:
                state.record(
                    client.client_id, pid, 0.0, pid in problem.existing
                )
                stats.facilities_retrieved += 1
        state.advance(0.0)
        settle_prune()
        answer = state.check_answer()
    if profiler is not None:
        profiler.bound_step(
            0.0, len(state.unsettled), len(state.settled_de)
        )

    with _trace.span("ea.stream", stats=problem.engine.stats):
        while answer is None:
            step = stream.advance()
            if step is None:
                break
            gd, records = step
            for client, facility, dist, is_existing in records:
                state.record(
                    client.client_id, facility, dist, is_existing
                )
            state.advance(gd)
            settle_prune()
            answer = state.check_answer()
            if profiler is not None:
                profiler.bound_step(
                    gd, len(state.unsettled), len(state.settled_de)
                )

        if answer is None:
            # Queue exhausted: every surviving pair is now decidable.
            state.advance(float("inf"))
            # Remaining unsettled clients have de = inf beyond
            # retrieval: any recorded candidate strictly wins them.
            for client_id in list(state.unsettled):
                state._settle(client_id, float("inf"))
            answer = state.check_answer()
            if profiler is not None:
                profiler.bound_step(
                    float("inf"),
                    len(state.unsettled),
                    len(state.settled_de),
                )
    stats.clients_pruned = len(state.settled_de)
    stats.candidate_answers_considered = len(state.candidates)
    if answer is None:
        # All counts are exact now; pick the max directly.
        best = max(
            state.candidates,
            key=lambda pid: (state.wins.get(pid, 0), -pid),
        )
        answer = (best, state.wins.get(best, 0))
    answer_pid, count = answer
    if count <= 0:
        return IFLSResult(
            answer=None,
            objective=0.0,
            status=ResultStatus.NO_IMPROVEMENT,
            stats=stats,
        )
    return IFLSResult(
        answer=answer_pid, objective=float(count), stats=stats
    )
