"""Exhaustive reference implementations of the IFLS objectives.

These evaluate every client/facility distance explicitly and are the
correctness oracle for the baseline, the efficient approach, and the
MinDist / MaxSum extensions.  Complexity is O(|C| * (|Fe| + |Fn|))
indoor distance computations — use only at test scale.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..errors import UnreachableFacilityError
from ..indoor.entities import PartitionId
from .problem import IFLSProblem
from .result import IFLSResult, ResultStatus
from .stats import QueryStats

INFINITY = float("inf")


def _existing_distances(problem: IFLSProblem) -> List[float]:
    """de(c) = distance from each client to its nearest existing facility."""
    engine = problem.engine
    out: List[float] = []
    for client in problem.clients:
        best = INFINITY
        for facility in problem.existing:
            d = engine.idist(client, facility)
            if d < best:
                best = d
        out.append(best)
    return out


def _candidate_distances(
    problem: IFLSProblem,
) -> Dict[PartitionId, List[float]]:
    """d(c, n) for every candidate n and client c (client order)."""
    engine = problem.engine
    out: Dict[PartitionId, List[float]] = {}
    for candidate in sorted(problem.candidates):
        out[candidate] = [
            engine.idist(client, candidate) for client in problem.clients
        ]
    return out


def _check_reachable(
    de: List[float], cand: Dict[PartitionId, List[float]]
) -> None:
    for i, base in enumerate(de):
        if math.isinf(base) and all(
            math.isinf(dists[i]) for dists in cand.values()
        ):
            raise UnreachableFacilityError(
                f"client #{i} cannot reach any facility"
            )


def brute_force_minmax(problem: IFLSProblem) -> IFLSResult:
    """Exact MinMax optimum by full enumeration.

    Returns ``NO_IMPROVEMENT`` when no candidate strictly improves the
    objective achieved by the existing facilities alone.
    """
    stats = QueryStats(
        algorithm="bruteforce-minmax", clients_total=len(problem.clients)
    )
    de = _existing_distances(problem)
    cand = _candidate_distances(problem)
    _check_reachable(de, cand)
    base = max(de)
    best_value = INFINITY
    best_candidate: PartitionId = -1
    for candidate in sorted(cand):
        dists = cand[candidate]
        value = max(
            min(existing, new) for existing, new in zip(de, dists)
        )
        if value < best_value:
            best_value = value
            best_candidate = candidate
    stats.candidate_answers_considered = len(cand)
    if best_value >= base:
        return IFLSResult(
            answer=None,
            objective=base,
            status=ResultStatus.NO_IMPROVEMENT,
            stats=stats,
        )
    return IFLSResult(
        answer=best_candidate, objective=best_value, stats=stats
    )


def brute_force_mindist(problem: IFLSProblem) -> IFLSResult:
    """Exact MinDist (minimise the *total* = average x |C| distance).

    The objective reported is the total distance, matching the paper's
    Section 7 formulation ("total distance of the clients"); dividing by
    |C| gives the average and does not change the argmin.
    """
    stats = QueryStats(
        algorithm="bruteforce-mindist", clients_total=len(problem.clients)
    )
    de = _existing_distances(problem)
    cand = _candidate_distances(problem)
    _check_reachable(de, cand)
    base = sum(de)
    best_value = INFINITY
    best_candidate: PartitionId = -1
    for candidate in sorted(cand):
        dists = cand[candidate]
        value = sum(
            min(existing, new) for existing, new in zip(de, dists)
        )
        if value < best_value:
            best_value = value
            best_candidate = candidate
    stats.candidate_answers_considered = len(cand)
    if best_value >= base:
        return IFLSResult(
            answer=None,
            objective=base,
            status=ResultStatus.NO_IMPROVEMENT,
            stats=stats,
        )
    return IFLSResult(
        answer=best_candidate, objective=best_value, stats=stats
    )


def brute_force_maxsum(problem: IFLSProblem) -> IFLSResult:
    """Exact MaxSum: maximise #clients strictly closer to the new facility.

    ``objective`` is the number of clients won by the optimal candidate;
    ``NO_IMPROVEMENT`` (answer ``None``, objective 0) when no candidate
    wins a single client.
    """
    stats = QueryStats(
        algorithm="bruteforce-maxsum", clients_total=len(problem.clients)
    )
    de = _existing_distances(problem)
    cand = _candidate_distances(problem)
    best_value = -1
    best_candidate: PartitionId = -1
    for candidate in sorted(cand):
        dists = cand[candidate]
        value = sum(
            1 for existing, new in zip(de, dists) if new < existing
        )
        if value > best_value:
            best_value = value
            best_candidate = candidate
    stats.candidate_answers_considered = len(cand)
    if best_value <= 0:
        return IFLSResult(
            answer=None,
            objective=0.0,
            status=ResultStatus.NO_IMPROVEMENT,
            stats=stats,
        )
    return IFLSResult(
        answer=best_candidate, objective=float(best_value), stats=stats
    )
