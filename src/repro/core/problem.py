"""Problem definition shared by every IFLS algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import QueryError
from ..indoor.entities import Client, FacilitySets, PartitionId
from ..index.distance import VIPDistanceEngine


@dataclass
class IFLSProblem:
    """One IFLS query instance: clients, facilities, and the distance engine.

    ``clients_by_partition`` is derived once — both the paper's grouping
    optimisation (Section 5) and the workload statistics rely on it.
    """

    engine: VIPDistanceEngine
    clients: Sequence[Client]
    facilities: FacilitySets
    clients_by_partition: Dict[PartitionId, List[Client]] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.clients:
            raise QueryError("IFLS query requires at least one client")
        if not self.facilities.candidates:
            raise QueryError(
                "IFLS query requires a non-empty candidate set Fn"
            )
        venue_partitions = set(self.engine.venue.partition_ids())
        bad = self.facilities.all_facilities - venue_partitions
        if bad:
            raise QueryError(
                f"facility partitions not in venue: {sorted(bad)[:5]!r}"
            )
        for client in self.clients:
            if client.partition_id not in venue_partitions:
                raise QueryError(
                    f"client {client.client_id} in unknown partition "
                    f"{client.partition_id}"
                )
            self.clients_by_partition.setdefault(
                client.partition_id, []
            ).append(client)

    @property
    def existing(self) -> frozenset:
        """The existing-facility set Fe."""
        return self.facilities.existing

    @property
    def candidates(self) -> frozenset:
        """The candidate-location set Fn."""
        return self.facilities.candidates
