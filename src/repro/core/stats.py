"""Per-query execution statistics.

Both IFLS algorithms fill a :class:`QueryStats` so that the pruning and
grouping effects the paper argues about (Section 5, Section 6.2) are
directly observable: how many clients were pruned, how many facilities
were retrieved from the index, how many indoor distance computations
were needed, and how big the priority queue traffic was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..index.distance import DistanceStats


@dataclass
class QueryStats:
    """Counters collected while answering one IFLS query."""

    algorithm: str = ""
    clients_total: int = 0
    clients_pruned: int = 0
    facilities_retrieved: int = 0
    candidate_answers_considered: int = 0
    queue_pushes: int = 0
    queue_pops: int = 0
    iterations: int = 0
    group_compactions: int = 0
    group_compaction_cost: int = 0
    elapsed_seconds: float = 0.0
    peak_memory_bytes: int = 0
    distance: DistanceStats = field(default_factory=DistanceStats)

    @property
    def clients_remaining(self) -> int:
        """Clients never pruned during the query."""
        return self.clients_total - self.clients_pruned

    def snapshot(self) -> Dict[str, float]:
        """Flat dictionary for reporting (bench harness rows)."""
        out: Dict[str, float] = {
            "algorithm": self.algorithm,
            "clients_total": self.clients_total,
            "clients_pruned": self.clients_pruned,
            "facilities_retrieved": self.facilities_retrieved,
            "candidate_answers_considered": (
                self.candidate_answers_considered
            ),
            "queue_pushes": self.queue_pushes,
            "queue_pops": self.queue_pops,
            "iterations": self.iterations,
            "group_compactions": self.group_compactions,
            "group_compaction_cost": self.group_compaction_cost,
            "elapsed_seconds": self.elapsed_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
        }
        out.update(self.distance.snapshot())
        return out
