"""Per-query execution statistics and deterministic counter merging.

Both IFLS algorithms fill a :class:`QueryStats` so that the pruning and
grouping effects the paper argues about (Section 5, Section 6.2) are
directly observable: how many clients were pruned, how many facilities
were retrieved from the index, how many indoor distance computations
were needed, and how big the priority queue traffic was.

The module also owns the merging rules the parallel batch executor
(:mod:`repro.core.parallel`) relies on: every counter is a plain sum,
``elapsed_seconds`` adds up (total CPU work, not wall clock), and
``peak_memory_bytes`` takes the maximum (workers run concurrently, but
per-process peaks do not add).  Summing preserves every structural
invariant ``tools/check_counters.py`` enforces — sums of non-negative
counters stay non-negative, and linear identities such as
``hits + computations == calls`` and ``queue_pops <= queue_pushes``
survive addition term by term.  :func:`distance_invariant_violations`
re-checks the linear identities on any snapshot (pre- or post-merge) so
drift is caught at the merge point, not three layers later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

from ..index.distance import DistanceStats
from ..obs import metrics as _metrics


@dataclass
class QueryStats:
    """Counters collected while answering one IFLS query."""

    algorithm: str = ""
    clients_total: int = 0
    clients_pruned: int = 0
    facilities_retrieved: int = 0
    candidate_answers_considered: int = 0
    queue_pushes: int = 0
    queue_pops: int = 0
    iterations: int = 0
    group_compactions: int = 0
    group_compaction_cost: int = 0
    elapsed_seconds: float = 0.0
    peak_memory_bytes: int = 0
    distance: DistanceStats = field(default_factory=DistanceStats)

    @property
    def clients_remaining(self) -> int:
        """Clients never pruned during the query."""
        return self.clients_total - self.clients_pruned

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one.

        Counters sum; ``elapsed_seconds`` sums (aggregate CPU work);
        ``peak_memory_bytes`` takes the maximum, since two queries that
        never ran in the same process do not share a heap.  The
        ``algorithm`` label is kept when it agrees and becomes
        ``"mixed"`` when the merged runs used different algorithms.
        """
        if self.algorithm != other.algorithm:
            self.algorithm = "mixed" if self.algorithm else other.algorithm
        self.clients_total += other.clients_total
        self.clients_pruned += other.clients_pruned
        self.facilities_retrieved += other.facilities_retrieved
        self.candidate_answers_considered += (
            other.candidate_answers_considered
        )
        self.queue_pushes += other.queue_pushes
        self.queue_pops += other.queue_pops
        self.iterations += other.iterations
        self.group_compactions += other.group_compactions
        self.group_compaction_cost += other.group_compaction_cost
        self.elapsed_seconds += other.elapsed_seconds
        self.peak_memory_bytes = max(
            self.peak_memory_bytes, other.peak_memory_bytes
        )
        self.distance.merge(other.distance)

    def snapshot(self) -> Dict[str, float]:
        """Flat dictionary for reporting (bench harness rows)."""
        out: Dict[str, float] = {
            "algorithm": self.algorithm,
            "clients_total": self.clients_total,
            "clients_pruned": self.clients_pruned,
            "facilities_retrieved": self.facilities_retrieved,
            "candidate_answers_considered": (
                self.candidate_answers_considered
            ),
            "queue_pushes": self.queue_pushes,
            "queue_pops": self.queue_pops,
            "iterations": self.iterations,
            "group_compactions": self.group_compactions,
            "group_compaction_cost": self.group_compaction_cost,
            "elapsed_seconds": self.elapsed_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
        }
        out.update(self.distance.snapshot())
        return out


def merge_query_stats(stats: Iterable[QueryStats]) -> QueryStats:
    """Fold many per-query counter sets into one aggregate.

    The aggregate satisfies the same invariants as its inputs (see the
    module docstring); merging is associative and order-insensitive, so
    the result does not depend on how a batch was sharded.
    """
    merged = QueryStats()
    for entry in stats:
        merged.merge(entry)
    return merged


def merge_snapshots(
    snapshots: Iterable[Mapping[str, object]],
) -> Dict[str, int]:
    """Sum counter snapshots key-wise (numeric values only).

    Used to combine per-worker :class:`DistanceStats` totals into one
    session-level view.  Non-numeric entries (e.g. the ``algorithm``
    label of a :class:`QueryStats` snapshot) are skipped; keys missing
    from some snapshots count as zero, so workers created at different
    library versions fail loudly in tests rather than silently here.
    """
    totals: Dict[str, int] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            totals[key] = totals.get(key, 0) + value
    return totals


def publish_query_metrics(result) -> None:
    """Report one answered query to the active metrics registry.

    Called by every solver wrapper after the query is decided; a no-op
    while metrics are disabled.  Feeds the ``query.*`` names of the
    instrumentation contract (``docs/OBSERVABILITY.md``): the outcome
    counters, the latency histogram, and the per-query client/pruning/
    distance-work distributions.
    """
    if _metrics.active() is None:
        return
    stats = result.stats
    _metrics.add("query.count")
    if result.answer is None:
        _metrics.add("query.no_improvement")
    else:
        _metrics.add("query.improved")
    _metrics.record("query.seconds", stats.elapsed_seconds)
    _metrics.record("query.clients", stats.clients_total)
    _metrics.record("query.pruned_clients", stats.clients_pruned)
    _metrics.record(
        "query.distance_computations",
        stats.distance.distance_computations,
    )


def distance_invariant_violations(
    totals: Mapping[str, int],
) -> List[str]:
    """Structural violations in a :class:`DistanceStats` snapshot.

    Returns one message per broken invariant (empty list = clean):
    non-negative counters, ``cache hits <= lookups/calls``, and the
    ledger identity ``hits + computations == calls``.  Merged totals
    must pass exactly like single-engine totals; the parallel executor
    checks this after every merge.
    """
    out: List[str] = []
    for key, value in totals.items():
        if isinstance(value, (int, float)) and value < 0:
            out.append(f"counter {key} is negative ({value})")
    d2d_hits = totals.get("d2d_cache_hits", 0)
    d2d_lookups = totals.get("d2d_lookups", 0)
    if d2d_hits > d2d_lookups:
        out.append(
            f"d2d_cache_hits {d2d_hits} > d2d_lookups {d2d_lookups}"
        )
    calls = totals.get("imind_calls", 0) + totals.get(
        "imind_node_calls", 0
    )
    resolved = (
        totals.get("imind_cache_hits", 0)
        + totals.get("imind_node_cache_hits", 0)
        + totals.get("distance_computations", 0)
    )
    if calls != resolved:
        out.append(
            f"hits + computations != calls ({resolved} != {calls})"
        )
    shortcuts = totals.get("single_door_shortcuts", 0)
    idist_calls = totals.get("idist_calls", 0)
    if shortcuts > idist_calls:
        out.append(
            f"single_door_shortcuts {shortcuts} > "
            f"idist_calls {idist_calls}"
        )
    return out
