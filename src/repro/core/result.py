"""IFLS query results.

All algorithms (brute force, baseline, efficient, and the MinDist /
MaxSum extensions) return an :class:`IFLSResult`.  Because ties are
possible, algorithms are compared on ``objective`` in tests, not on the
identity of ``answer``; each implementation breaks ties
deterministically (smallest objective, then smallest partition id).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..indoor.entities import PartitionId
from .stats import QueryStats


class ResultStatus(enum.Enum):
    """Outcome classes of an IFLS query."""

    OPTIMAL = "optimal"
    #: No candidate can improve any remaining client's distance to its
    #: nearest existing facility — the paper's "no answer exists" case.
    NO_IMPROVEMENT = "no-improvement"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class IFLSResult:
    """Answer of an IFLS query.

    Attributes
    ----------
    answer:
        The optimal candidate partition, or ``None`` when no candidate
        improves the objective (status ``NO_IMPROVEMENT``).
    objective:
        The achieved objective value.  For MinMax this is
        ``max_c iDist(c, NN(c, Fe ∪ {answer}))`` — also filled in the
        NO_IMPROVEMENT case, where it equals the objective without any
        new facility.
    status:
        Outcome class.
    stats:
        Execution counters for the run that produced this result.
    """

    answer: Optional[PartitionId]
    objective: float
    status: ResultStatus = ResultStatus.OPTIMAL
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def improved(self) -> bool:
        """True when a candidate strictly improves the objective."""
        return self.status is ResultStatus.OPTIMAL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IFLSResult(answer={self.answer}, "
            f"objective={self.objective:.4f}, status={self.status})"
        )
