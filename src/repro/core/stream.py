"""Continuous IFLS: incremental answers over a client event stream.

The paper's dynamic-crowd story (:mod:`repro.core.dynamic`,
:mod:`repro.core.moving`) recomputes every answer from scratch.  This
module keeps the answer *current* while clients arrive, leave, and move
as an event stream, re-evaluating only the partition groups whose
Lemma 5.1 bound the event invalidates:

* every client's nearest-existing-facility distance ``de(c)`` is cached
  (computed once per location on the warm distance engine);
* clients are grouped by partition with a cached per-group
  ``max de(c)`` and a dirty flag — the same grouping the efficient
  solver's ``FacilityStream`` traverses, maintained across events;
* after an event, groups whose ``max de(c)`` does not exceed the
  current objective are **settled**: by Lemma 5.1 none of their clients
  can constrain the answer, so the solver only re-runs over the
  remaining groups (and a cheap per-event check often skips the solver
  entirely);
* a post-hoc verification (``objective >= max settled de``) makes the
  reduced answer *provably* equal to the from-scratch one — when it
  fails, the crowd is recomputed in full, never answered approximately.

The from-scratch oracle stays one flag away
(``ContinuousQuery(..., incremental=False)``) and the test suite
verifies bit-identical answers after every event of randomized
sequences.  See ``docs/STREAMING.md`` for the event model, the
invalidation rule, and a runnable cookbook.

Instrumentation (``docs/OBSERVABILITY.md``): each event runs under a
``stream.event`` span and moves the ``stream.events``,
``stream.groups.reevaluated``, ``stream.groups.skipped``, and
``stream.full_recomputes`` counters.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
)

from ..errors import ProtocolError, QueryError
from ..indoor.entities import Client, FacilitySets, PartitionId
from ..indoor.geometry import Point
from ..index.search import FacilitySearch
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .efficient import EfficientOptions, efficient_minmax
from .problem import IFLSProblem
from .queries import MINMAX, IFLSEngine
from .result import IFLSResult
from .session import QuerySession

__all__ = [
    "ADD",
    "MOVE",
    "REMOVE",
    "STREAM_FORMAT",
    "ClientEvent",
    "ContinuousQuery",
    "StreamAnswer",
    "StreamStats",
    "read_events",
    "synthetic_events",
    "write_events",
]

#: Event payload schema tag; bump on incompatible wire changes.
STREAM_FORMAT = "ifls-stream/1"

ADD = "add"
REMOVE = "remove"
MOVE = "move"

_KINDS = (ADD, REMOVE, MOVE)

#: How one event was answered.
MODE_SKIP = "skip"
MODE_PARTIAL = "partial"
MODE_FULL = "full"
MODE_EMPTY = "empty"

#: Status string of an answer over an empty crowd.
STATUS_EMPTY = "empty"


@dataclass(frozen=True)
class ClientEvent:
    """One step of a client stream: a client arrives, leaves, or moves.

    ``client`` carries the full client record for :data:`ADD` and
    :data:`MOVE` events (its ``client_id`` must equal ``client_id``);
    :data:`REMOVE` events carry the id only.
    """

    kind: str
    client_id: int
    client: Optional[Client] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise QueryError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{_KINDS}"
            )
        if self.kind == REMOVE:
            if self.client is not None:
                raise QueryError("remove events carry no client record")
        else:
            if self.client is None:
                raise QueryError(
                    f"{self.kind} events require a client record"
                )
            if self.client.client_id != self.client_id:
                raise QueryError(
                    f"{self.kind} event for client {self.client_id} "
                    f"carries a record with id {self.client.client_id}"
                )

    # -- constructors ---------------------------------------------------
    @classmethod
    def add(cls, client: Client) -> "ClientEvent":
        """A client arrives (or replaces one with the same id)."""
        return cls(ADD, client.client_id, client)

    @classmethod
    def remove(cls, client_id: int) -> "ClientEvent":
        """A client leaves."""
        return cls(REMOVE, client_id)

    @classmethod
    def move(cls, client: Client) -> "ClientEvent":
        """An existing client moves to a new location/partition."""
        return cls(MOVE, client.client_id, client)

    # -- wire codec -----------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible dictionary (one event-file/wire record)."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "id": self.client_id,
        }
        if self.client is not None:
            payload["location"] = [
                self.client.location.x,
                self.client.location.y,
                self.client.location.level,
            ]
            payload["partition"] = self.client.partition_id
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "ClientEvent":
        """Decode one wire record; :class:`ProtocolError` on garbage."""
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"event payload must be an object, got "
                f"{type(payload).__name__}"
            )
        try:
            kind = str(payload["kind"])
            client_id = int(payload["id"])
            client = None
            if kind != REMOVE:
                location = payload["location"]
                client = Client(
                    client_id,
                    Point(
                        float(location[0]),
                        float(location[1]),
                        int(location[2]),
                    ),
                    int(payload["partition"]),
                )
            return cls(kind, client_id, client)
        except QueryError as exc:
            raise ProtocolError(str(exc)) from exc
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ProtocolError(
                f"malformed event payload: {exc}"
            ) from exc


def write_events(
    path: "os.PathLike[str]", events: Iterable[ClientEvent]
) -> int:
    """Write an event file (JSON lines); returns the event count."""
    count = 0
    with open(os.fspath(path), "w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_payload()))
            handle.write("\n")
            count += 1
    return count


def read_events(path: "os.PathLike[str]") -> List[ClientEvent]:
    """Read an event file written by :func:`write_events`."""
    events: List[ClientEvent] = []
    with open(os.fspath(path)) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as exc:
                raise ProtocolError(
                    f"{path}:{number}: not JSON: {exc}"
                ) from exc
            events.append(ClientEvent.from_payload(payload))
    return events


@dataclass
class StreamStats:
    """Cumulative accounting of one continuous query.

    Mirrors the ``stream.*`` contract counters, kept locally so callers
    (and the perf-gate suite) read exact values without installing a
    metrics registry.
    """

    events: int = 0
    skips: int = 0
    partial_solves: int = 0
    full_recomputes: int = 0
    groups_reevaluated: int = 0
    groups_skipped: int = 0

    @property
    def reevaluation_ratio(self) -> float:
        """Groups re-evaluated per event (the bench suite's headline)."""
        if not self.events:
            return 0.0
        return self.groups_reevaluated / self.events


@dataclass
class StreamAnswer:
    """The IFLS answer as of one applied event.

    ``mode`` records how the event was answered: ``"skip"`` (the cached
    answer was proven unchanged without running the solver),
    ``"partial"`` (solver ran over the non-settled groups only),
    ``"full"`` (from-scratch recompute), or ``"empty"`` (no clients —
    there is nothing to answer).
    """

    answer: Optional[PartitionId]
    objective: float
    status: str
    event_index: int = 0
    mode: str = MODE_FULL
    groups_reevaluated: int = 0
    groups_skipped: int = 0

    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible dictionary (the service wire format)."""
        return {
            "answer": self.answer,
            "objective": self.objective,
            "status": self.status,
            "event_index": self.event_index,
            "mode": self.mode,
            "groups_reevaluated": self.groups_reevaluated,
            "groups_skipped": self.groups_skipped,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "StreamAnswer":
        """Decode one wire payload; :class:`ProtocolError` on garbage."""
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"stream answer payload must be an object, got "
                f"{type(payload).__name__}"
            )
        try:
            answer = payload["answer"]
            return cls(
                answer=int(answer) if answer is not None else None,
                objective=float(payload["objective"]),
                status=str(payload["status"]),
                event_index=int(payload.get("event_index", 0)),
                mode=str(payload.get("mode", MODE_FULL)),
                groups_reevaluated=int(
                    payload.get("groups_reevaluated", 0)
                ),
                groups_skipped=int(payload.get("groups_skipped", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed stream answer payload: {exc}"
            ) from exc


class ContinuousQuery:
    """A MinMax IFLS answer maintained incrementally over events.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.queries.IFLSEngine` whose warm distance
        engine answers the stream.  May be ``None`` when ``session`` is
        given (the session's engine is used).
    facilities:
        Fixed facility configuration ``Fe`` / ``Fn`` for the stream's
        lifetime (``Fn`` must be non-empty, as everywhere else).
    options:
        Solver ablations forwarded to every (partial or full) solve.
    incremental:
        ``True`` (default) answers through the three-tier incremental
        path; ``False`` is the from-scratch oracle — every event
        recomputes over the whole crowd.  Both modes return the same
        answers bit-for-bit; the oracle exists to prove it.
    session:
        Optional :class:`~repro.core.session.QuerySession`: solves then
        run through :meth:`QuerySession.query` (warm cross-query memo
        caches, session spans/records) instead of calling the solver
        directly on the engine's distance engine.

    The objective is MinMax only: the settled-group rule relies on
    Lemma 5.1 (``de(c)`` bounds a client's best possible term), which
    does not transfer to the additive MinDist/MaxSum extensions.
    """

    def __init__(
        self,
        engine: Optional[IFLSEngine] = None,
        facilities: Optional[FacilitySets] = None,
        *,
        objective: str = MINMAX,
        options: Optional[EfficientOptions] = None,
        incremental: bool = True,
        session: Optional[QuerySession] = None,
    ) -> None:
        if objective != MINMAX:
            raise QueryError(
                f"continuous queries answer the {MINMAX!r} objective "
                f"only (Lemma 5.1 invalidation), got {objective!r}"
            )
        if session is None and engine is None:
            raise QueryError(
                "ContinuousQuery needs an engine or a session"
            )
        if facilities is None or not facilities.candidates:
            raise QueryError(
                "continuous queries require candidates Fn"
            )
        self.engine = engine if engine is not None else session.engine
        self.facilities = facilities
        self.objective = objective
        self.options = options
        self.incremental = incremental
        self.session = session
        self._distances = (
            session.distances if session is not None
            else self.engine.distances
        )
        self._existing_search = FacilitySearch(
            self._distances, facilities.existing
        )
        self._clients: Dict[int, Client] = {}
        self._de: Dict[int, float] = {}
        self._members: Dict[PartitionId, Set[int]] = {}
        self._group_max: Dict[PartitionId, float] = {}
        self._dirty: Set[PartitionId] = set()
        self._result: Optional[IFLSResult] = None
        self._last: StreamAnswer = StreamAnswer(
            answer=None,
            objective=0.0,
            status=STATUS_EMPTY,
            event_index=0,
            mode=MODE_EMPTY,
        )
        self.stats = StreamStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def client_count(self) -> int:
        """Number of clients currently in the crowd."""
        return len(self._clients)

    @property
    def clients(self) -> List[Client]:
        """Snapshot of the current crowd (id order)."""
        return [
            self._clients[cid] for cid in sorted(self._clients)
        ]

    @property
    def group_count(self) -> int:
        """Number of occupied partition groups."""
        return len(self._members)

    def answer(self) -> StreamAnswer:
        """The current answer (as of the last applied event)."""
        return self._last

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(
        self, event: ClientEvent, request_id: str = ""
    ) -> StreamAnswer:
        """Apply one event and return the updated answer.

        Unknown ids on remove/move raise :class:`QueryError` *before*
        any state changes, so a rejected event leaves the stream (and
        its counters) untouched.  ``request_id`` (when non-empty) tags
        the ``stream.event`` span, correlating the event with the HTTP
        request that delivered it.
        """
        self._validate(event)
        span_attrs = {
            "kind": event.kind,
            "incremental": self.incremental,
        }
        if request_id:
            span_attrs["request_id"] = request_id
        with _trace.span("stream.event", **span_attrs):
            _metrics.add("stream.events")
            self.stats.events += 1
            answer = self._apply(event)
        self._last = answer
        return answer

    def apply_batch(
        self, events: Sequence[ClientEvent], request_id: str = ""
    ) -> List[StreamAnswer]:
        """Apply events in order; one answer per event.

        An empty batch is a no-op returning ``[]``.  ``request_id``
        tags every event's span (see :meth:`apply`).
        """
        return [
            self.apply(event, request_id=request_id)
            for event in events
        ]

    def _validate(self, event: ClientEvent) -> None:
        if event.kind in (REMOVE, MOVE):
            if event.client_id not in self._clients:
                raise QueryError(f"unknown client {event.client_id}")

    def _apply(self, event: ClientEvent) -> StreamAnswer:
        skip = False
        if self.incremental and self._result is not None:
            skip = self._can_skip(event)
        self._mutate(event)
        groups = len(self._members)
        if skip:
            self.stats.skips += 1
            self.stats.groups_skipped += groups
            _metrics.add("stream.groups.skipped", groups)
            return self._answered(MODE_SKIP, 0, groups)
        if not self._clients:
            self._result = None
            return self._answered(MODE_EMPTY, 0, 0)
        if self.incremental and self._result is not None:
            partial = self._solve_partial()
            if partial is not None:
                return partial
        return self._solve_full()

    # ------------------------------------------------------------------
    # State maintenance
    # ------------------------------------------------------------------
    def _compute_de(self, client: Client) -> float:
        """``de(c)`` for an arbitrary record, bypassing the cache."""
        nearest = self._existing_search.nearest(client)
        return float("inf") if nearest is None else nearest[1]

    def _de_of(self, client: Client) -> float:
        """``de(c)``, cached per client id for its current location."""
        de = self._de.get(client.client_id)
        if de is None:
            de = self._compute_de(client)
            self._de[client.client_id] = de
        return de

    def _insert(self, client: Client) -> None:
        cid = client.client_id
        self._clients[cid] = client
        self._de.pop(cid, None)
        de = self._de_of(client)
        members = self._members.setdefault(client.partition_id, set())
        members.add(cid)
        if client.partition_id not in self._dirty:
            current = self._group_max.get(
                client.partition_id, float("-inf")
            )
            if de > current:
                self._group_max[client.partition_id] = de

    def _discard(self, cid: int) -> None:
        client = self._clients.pop(cid)
        de = self._de.pop(cid, None)
        partition = client.partition_id
        members = self._members[partition]
        members.discard(cid)
        if not members:
            del self._members[partition]
            self._group_max.pop(partition, None)
            self._dirty.discard(partition)
            return
        # Losing a (potential) group maximum invalidates the cache; it
        # is recomputed lazily the next time the group is classified.
        if de is None or de >= self._group_max.get(
            partition, float("inf")
        ):
            self._dirty.add(partition)

    def _group_max_de(self, partition: PartitionId) -> float:
        if partition in self._dirty:
            self._group_max[partition] = max(
                self._de_of(self._clients[cid])
                for cid in self._members[partition]
            )
            self._dirty.discard(partition)
        return self._group_max[partition]

    def _mutate(self, event: ClientEvent) -> None:
        if event.kind == REMOVE:
            self._discard(event.client_id)
            return
        assert event.client is not None
        if event.client_id in self._clients:
            self._discard(event.client_id)
        self._insert(event.client)

    # ------------------------------------------------------------------
    # Tier 1: the per-event skip check
    # ------------------------------------------------------------------
    def _can_skip(self, event: ClientEvent) -> bool:
        """Is the cached result provably unchanged by this event?

        * **add** of ``c``: every candidate's objective is a max over
          client terms, so adding a client whose best possible term
          ``min(de(c), idist(c, a*))`` does not exceed the cached
          objective changes no candidate's value that matters — the
          argmin (and its tie-break) survives.
        * **remove** of ``c``: when ``de(c)`` is *strictly* below the
          cached objective, ``c``'s term at every candidate is too, so
          ``c`` was never the max anywhere; dropping it changes no
          candidate's value (and the no-improvement worst distance is
          achieved by another client).
        * **move** / replacing **add**: a removal of the old record
          composed with an addition of the new one; the event skips
          only when both halves do.
        """
        assert self._result is not None
        if event.kind == ADD and event.client_id not in self._clients:
            return self._add_keeps(event.client)
        if event.kind == REMOVE:
            return self._remove_keeps(self._clients[event.client_id])
        # move, or an add replacing a live client
        return self._remove_keeps(
            self._clients[event.client_id]
        ) and self._add_keeps(event.client)

    def _add_keeps(self, client: Client) -> bool:
        # The cache is keyed by id and may still hold the *old* record
        # of a move/replace, so the new record's de is computed fresh
        # (the distance engine's memo absorbs the repeat at insert).
        assert self._result is not None and client is not None
        de = self._compute_de(client)
        bound = self._result.objective
        if self._result.answer is None:
            return de <= bound
        if de <= bound:
            return True
        return (
            self._distances.idist(client, self._result.answer)
            <= bound
        )

    def _remove_keeps(self, client: Client) -> bool:
        assert self._result is not None
        return self._de_of(client) < self._result.objective

    # ------------------------------------------------------------------
    # Tiers 2 and 3: reduced and full solves
    # ------------------------------------------------------------------
    def _solve_partial(self) -> Optional[StreamAnswer]:
        """Solve over non-settled groups; ``None`` when inconclusive.

        A group is **settled** when its ``max de(c)`` does not exceed
        the cached objective: by Lemma 5.1 none of its clients can
        constrain the answer *provided* the optimum has not dropped
        below their distances.  The reduced result proves that
        retroactively — it is exact iff its objective is at least the
        largest excluded ``de(c)``; otherwise the caller falls back to
        the full recompute.
        """
        assert self._result is not None
        bound = self._result.objective
        included: List[PartitionId] = []
        excluded_max = float("-inf")
        excluded = 0
        for partition in self._members:
            group_max = self._group_max_de(partition)
            if group_max <= bound:
                excluded += 1
                if group_max > excluded_max:
                    excluded_max = group_max
            else:
                included.append(partition)
        if not included or not excluded:
            # Nothing to reduce: all groups settled (the cached bound
            # no longer screens anything useful) or none are — either
            # way the honest account is a full recompute.
            return None
        kept = [
            self._clients[cid]
            for partition in included
            for cid in self._members[partition]
        ]
        result = self._solve(kept)
        if result.objective < excluded_max:
            # An excluded client's de exceeds the reduced optimum: the
            # exclusion was not conservative, so the answer is not
            # trustworthy.  Recompute from scratch.
            return None
        self._result = result
        self.stats.partial_solves += 1
        self.stats.groups_reevaluated += len(included)
        self.stats.groups_skipped += excluded
        _metrics.add("stream.groups.reevaluated", len(included))
        _metrics.add("stream.groups.skipped", excluded)
        return self._answered(MODE_PARTIAL, len(included), excluded)

    def _solve_full(self) -> StreamAnswer:
        groups = len(self._members)
        self._result = self._solve(list(self._clients.values()))
        self.stats.full_recomputes += 1
        self.stats.groups_reevaluated += groups
        _metrics.add("stream.full_recomputes")
        _metrics.add("stream.groups.reevaluated", groups)
        return self._answered(MODE_FULL, groups, 0)

    def _solve(self, clients: Sequence[Client]) -> IFLSResult:
        ordered = sorted(clients, key=lambda c: c.client_id)
        if self.session is not None:
            return self.session.query(
                ordered,
                self.facilities,
                objective=self.objective,
                options=self.options,
                label=f"stream#{self.stats.events}",
            )
        problem = IFLSProblem(
            self._distances, ordered, self.facilities
        )
        return efficient_minmax(problem, self.options)

    def _answered(
        self, mode: str, reevaluated: int, skipped: int
    ) -> StreamAnswer:
        if self._result is None:
            return StreamAnswer(
                answer=None,
                objective=0.0,
                status=STATUS_EMPTY,
                event_index=self.stats.events,
                mode=MODE_EMPTY,
            )
        return StreamAnswer(
            answer=self._result.answer,
            objective=self._result.objective,
            status=str(self._result.status),
            event_index=self.stats.events,
            mode=mode,
            groups_reevaluated=reevaluated,
            groups_skipped=skipped,
        )

    # ------------------------------------------------------------------
    # Oracle hooks (used by the bit-identity tests)
    # ------------------------------------------------------------------
    def recompute(self) -> StreamAnswer:
        """Force a from-scratch recompute of the current crowd.

        Does not count as an event; refreshes the cached result (and
        :meth:`answer`).  Mostly useful to re-anchor an oracle-mode
        instance, or in tests.
        """
        if not self._clients:
            self._result = None
            self._last = self._answered(MODE_EMPTY, 0, 0)
        else:
            groups = len(self._members)
            self._result = self._solve(list(self._clients.values()))
            self._last = self._answered(MODE_FULL, groups, 0)
        return self._last

    def result(self) -> Optional[IFLSResult]:
        """The cached solver result (``None`` over an empty crowd)."""
        return self._result


def synthetic_events(
    venue,
    *,
    initial: int,
    events: int,
    seed: int = 0,
    arrive: float = 0.2,
    depart: float = 0.1,
) -> List[ClientEvent]:
    """A deterministic synthetic event stream for ``venue``.

    The stream opens with ``initial`` add events (the base crowd), then
    ``events`` mixed events: with probability ``arrive`` a new client
    arrives, with probability ``depart`` a random client leaves, and
    otherwise a random client moves to a fresh uniform location — an
    arrivals-and-wandering crowd.  Ids are unique across the stream's
    lifetime; remove/move events always name live clients, so the
    stream replays cleanly from any empty :class:`ContinuousQuery`.
    """
    import random

    from ..datasets.workloads import uniform_clients

    if arrive < 0 or depart < 0 or arrive + depart > 1:
        raise QueryError(
            f"arrive/depart fractions must be non-negative and sum to "
            f"at most 1, got {arrive}/{depart}"
        )
    rng = random.Random(seed)

    def fresh(count: int) -> List[Client]:
        return uniform_clients(venue, count, rng)

    out: List[ClientEvent] = []
    live: List[int] = []
    next_id = 1

    def arrive_one() -> None:
        nonlocal next_id
        template = fresh(1)[0]
        client = Client(
            next_id, template.location, template.partition_id
        )
        out.append(ClientEvent.add(client))
        live.append(next_id)
        next_id += 1

    for _ in range(initial):
        arrive_one()
    for _ in range(events):
        roll = rng.random()
        if roll < arrive or not live:
            arrive_one()
        elif roll < arrive + depart and len(live) > 1:
            index = rng.randrange(len(live))
            cid = live.pop(index)
            out.append(ClientEvent.remove(cid))
        else:
            cid = live[rng.randrange(len(live))]
            template = fresh(1)[0]
            out.append(
                ClientEvent.move(
                    Client(
                        cid,
                        template.location,
                        template.partition_id,
                    )
                )
            )
    return out
