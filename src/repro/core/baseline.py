"""Modified MinMax baseline (paper Algorithm 1, Section 4).

This adapts the road-network MinMax algorithm of Chen et al. (SIGMOD'14)
to indoor space exactly as the paper does:

1. compute the nearest *existing* facility of every client with the
   VIP-tree top-down NN search and sort clients by that distance,
   descending (list ``Ls``);
2. build the initial candidate answer set ``CA`` from the worst client:
   candidates strictly closer to it than its nearest existing facility;
3. refine ``CA`` client by client with the two pruning rules (3a: the
   candidate must be closer than the current client's existing NN; 3b:
   no previously considered client may be farther from the candidate
   than the current client's existing NN distance);
4. stop when ``CA`` shrinks to <= 1 or clients are exhausted, and pick
   the candidate minimising the maximum distance from the considered
   clients (falling back to the pre-emptying ``CA`` when it emptied).

The implementation keeps ``maxd(n)`` — the maximum distance of
candidate ``n`` from the clients considered so far — which makes rule
3b a single comparison per candidate.

The exact objective of the returned candidate is evaluated post hoc
over the not-yet-considered clients so results are comparable with the
brute-force oracle; queries whose optimum does not improve on the
existing facilities are normalised to ``NO_IMPROVEMENT``.
"""

from __future__ import annotations

import math
import time
import tracemalloc
from typing import Dict, List, Optional, Tuple

from ..errors import UnreachableFacilityError
from ..indoor.entities import Client, PartitionId
from ..index.search import FacilitySearch
from ..obs import trace as _trace
from .problem import IFLSProblem
from .result import IFLSResult, ResultStatus
from .stats import QueryStats, publish_query_metrics

INFINITY = float("inf")


def modified_minmax(
    problem: IFLSProblem, measure_memory: bool = False
) -> IFLSResult:
    """Answer a MinMax IFLS query with the modified MinMax baseline."""
    stats = QueryStats(
        algorithm="baseline-minmax", clients_total=len(problem.clients)
    )
    started = time.perf_counter()
    if measure_memory:
        tracemalloc.start()
    try:
        with _trace.span(
            "query.baseline.minmax",
            stats=problem.engine.stats,
            clients=len(problem.clients),
        ):
            result = _run(problem, stats)
    finally:
        if measure_memory:
            _, peak = tracemalloc.get_traced_memory()
            stats.peak_memory_bytes = peak
            tracemalloc.stop()
    stats.elapsed_seconds = time.perf_counter() - started
    publish_query_metrics(result)
    return result


def _run(problem: IFLSProblem, stats: QueryStats) -> IFLSResult:
    engine = problem.engine
    before = engine.stats.snapshot()

    # Step 1: nearest existing facility for every client, sorted desc.
    with _trace.span("baseline.nearest_existing", stats=engine.stats):
        sorted_clients = _nearest_existing(problem, stats)
    first_dist = sorted_clients[0][0]
    if math.isinf(first_dist) and not problem.existing:
        # No existing facilities at all: every client's distance is inf,
        # so the optimum is the pure candidate 1-center.  The refinement
        # below handles it with thresholds of inf.
        pass
    elif math.isinf(first_dist):
        raise UnreachableFacilityError(
            "a client cannot reach any existing facility"
        )

    with _trace.span("baseline.refine", stats=engine.stats):
        # Step 2: initial candidate answer set from the worst client.
        candidate_search = FacilitySearch(engine, problem.candidates)
        worst_client = sorted_clients[0][1]
        maxd: Dict[PartitionId, float] = dict(
            (pid, dist)
            for pid, dist in candidate_search.within(
                worst_client, first_dist, strict=True
            )
        )
        stats.facilities_retrieved += len(maxd)
        considered = 1

        if not maxd:
            # No candidate improves the worst client: no improvement.
            _merge_engine_stats(engine, before, stats)
            return IFLSResult(
                answer=None,
                objective=_exact_objective(
                    problem, sorted_clients, None, 0
                ),
                status=ResultStatus.NO_IMPROVEMENT,
                stats=stats,
            )

        # Step 3: refinement, one client at a time, descending order.
        previous: Dict[PartitionId, float] = dict(maxd)
        while considered < len(sorted_clients) and len(maxd) > 1:
            previous = dict(maxd)
            threshold, client = sorted_clients[considered]
            considered += 1
            stats.iterations += 1
            refined: Dict[PartitionId, float] = {}
            for candidate, worst in maxd.items():
                d = engine.idist(client, candidate)
                if d >= threshold:  # pruning 3a
                    continue
                new_worst = worst if worst >= d else d
                if new_worst > threshold:  # pruning 3b
                    continue
                refined[candidate] = new_worst
            maxd = refined
            if not maxd:
                considered -= 1  # emptying client is not "considered"
                break

    # Step 5: Find_Ans.
    with _trace.span("baseline.finalize", stats=engine.stats):
        pool = maxd if maxd else previous
        stats.candidate_answers_considered = len(pool)
        answer = min(pool, key=lambda pid: (pool[pid], pid))
        objective = _exact_objective(
            problem, sorted_clients, answer, considered,
            known=pool[answer],
        )
        _merge_engine_stats(engine, before, stats)
        no_new = _exact_objective(problem, sorted_clients, None, 0)
    if objective >= no_new:
        return IFLSResult(
            answer=None,
            objective=no_new,
            status=ResultStatus.NO_IMPROVEMENT,
            stats=stats,
        )
    return IFLSResult(answer=answer, objective=objective, stats=stats)


def _nearest_existing(
    problem: IFLSProblem, stats: QueryStats
) -> List[Tuple[float, Client]]:
    """The sorted list ``Ls``: (distance to nearest existing, client)."""
    engine = problem.engine
    search = FacilitySearch(engine, problem.existing)
    entries: List[Tuple[float, Client]] = []
    for client in problem.clients:
        nearest = search.nearest(client)
        dist = INFINITY if nearest is None else nearest[1]
        entries.append((dist, client))
        stats.facilities_retrieved += 1
    entries.sort(key=lambda item: (-item[0], item[1].client_id))
    return entries


def _exact_objective(
    problem: IFLSProblem,
    sorted_clients: List[Tuple[float, Client]],
    answer: Optional[PartitionId],
    considered: int,
    known: float = -INFINITY,
) -> float:
    """Exact MinMax objective of placing ``answer`` (or nothing).

    ``known`` is the maximum distance of ``answer`` from the first
    ``considered`` clients (already computed during refinement); the
    remaining clients contribute ``min(de, iDist(c, answer))``.
    """
    engine = problem.engine
    value = known
    for de, client in sorted_clients[considered:]:
        if answer is None:
            term = de
        else:
            term = min(de, engine.idist(client, answer))
        if term > value:
            value = term
    if answer is None and considered:
        # Unreached branch in practice (answer None => considered == 0),
        # kept for safety.
        value = max(value, sorted_clients[0][0])
    return value


def _merge_engine_stats(engine, before: Dict[str, int], stats: QueryStats):
    after = engine.stats.snapshot()
    for key, value in after.items():
        delta = value - before.get(key, 0)
        setattr(
            stats.distance, key, getattr(stats.distance, key, 0) + delta
        )
