"""Sharded process-pool execution of IFLS query batches.

:class:`~repro.core.session.QuerySession` (PR 1) made batches cheap by
keeping distance memos warm across queries, but it is single-core.
Facility-location workloads shard cleanly — queries against one venue
are independent, and distances depend only on the immutable venue
geometry — so this module fans a :class:`BatchQuery` list out over ``N``
worker processes, each running its *own* warm session over a shared
venue + VIP-tree snapshot, and deterministically reassembles the
answers in submission order.

Index sharing
-------------
Building a VIP-tree is the expensive part, so workers never rebuild it:

* under the ``fork`` start method (Linux/macOS default here) the parent
  parks the prepared :class:`IFLSEngine` in a module global right
  before the pool forks; children inherit the whole index through
  copy-on-write for free;
* under ``spawn`` (Windows, or ``start_method="spawn"``) the engine is
  condensed into an :class:`IndexSnapshot` — venue plus tree, pickled
  once in the parent with the highest protocol — and shipped to each
  worker's initializer, which restores an engine without re-running
  tree construction.

Determinism
-----------
Results come back tagged with their submission index and are reordered
before returning, so ``outcome.results[i]`` always answers ``batch[i]``
regardless of worker count or scheduling.  Warm caches never change
answers (a warm distance equals a cold one), so every worker count
yields bit-identical ``(answer, objective, status)`` triples; only the
execution counters differ, because cache warmth is distributed
differently across workers.  Per-worker counters are merged by plain
summation (:func:`~repro.core.stats.merge_snapshots`), which preserves
the ledger invariants ``hits + computations == calls`` and
``pops <= pushes``; the merge is re-checked on every run.

Failure handling
----------------
A shard that raises — bad inputs, a crashed worker, a broken pool —
surfaces immediately as
:class:`~repro.errors.ParallelExecutionError` naming the shard, with
the original exception chained; nothing hangs waiting for a dead
process, because :class:`concurrent.futures.ProcessPoolExecutor`
converts worker death into ``BrokenProcessPool``.

Entry points: :func:`run_batch_parallel` (standalone) and
``QuerySession.run(batch, workers=N)`` (session-integrated; merges the
pool's counters into the session's running totals).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ParallelExecutionError
from ..index.snapshot import IndexSnapshot
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.explain import ExplainReport
from ..obs.metrics import MetricsRegistry
from ..obs.trace import SpanRecord, Tracer
from .queries import IFLSEngine
from .request import as_batch_queries
from .result import IFLSResult
from .session import (
    BatchQuery,
    QuerySession,
    SessionQueryRecord,
    SessionReport,
)
from .stats import (
    QueryStats,
    distance_invariant_violations,
    merge_query_stats,
    merge_snapshots,
)

FORK = "fork"
SPAWN = "spawn"


def default_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``."""
    if FORK in multiprocessing.get_all_start_methods():
        return FORK
    return SPAWN


@dataclass
class ShardOutcome:
    """What one worker sends back for its shard of the batch.

    ``totals`` and ``records`` are *deltas of this shard only* — a pool
    worker may execute several shards on one warm session, so shard
    accounting must not re-report earlier work.  The cache footprint
    (``cache_sizes``/``cache_entries``/``cache_bytes``) is the worker's
    whole memo table, tagged with ``worker_pid`` so the merge counts
    each process once (its largest observation) instead of once per
    shard.

    When the parent had observability enabled, ``trace_records`` holds
    the worker's finished spans (absorbed into the parent tracer on
    reassembly, tagged with the worker pid) and ``metrics_snapshot``
    the worker registry's image (folded into the parent registry with
    the documented merge semantics).  ``explain_reports`` carries one
    :class:`~repro.obs.explain.ExplainReport` per shard query when the
    batch ran in explain mode, already rewritten to 1-based submission
    indices like ``records``.
    """

    indices: List[int]
    results: List[IFLSResult]
    totals: Dict[str, int]
    cache_sizes: Dict[str, int]
    cache_entries: int
    cache_bytes: int
    worker_pid: int
    records: List[SessionQueryRecord] = field(default_factory=list)
    trace_records: List[SpanRecord] = field(default_factory=list)
    metrics_snapshot: Optional[Dict] = None
    explain_reports: List[ExplainReport] = field(default_factory=list)


@dataclass
class ParallelBatchOutcome:
    """Reassembled results plus the merged session-level statistics.

    ``results[i]`` answers ``batch[i]``.  ``report`` aggregates every
    worker's distance counters and cache footprint (sizes/bytes sum the
    per-worker memos, i.e. the pool's combined footprint, which is
    larger than one shared cache would be).  ``query_stats`` merges the
    per-result :class:`QueryStats` for queue/pruning invariants.
    ``explain_reports`` holds one per-query
    :class:`~repro.obs.explain.ExplainReport` in submission order when
    the batch ran with ``explain=True`` (empty otherwise).
    """

    results: List[IFLSResult]
    report: SessionReport
    query_stats: QueryStats
    workers: int
    start_method: str
    elapsed_seconds: float
    explain_reports: List[ExplainReport] = field(default_factory=list)

    @property
    def answers(self) -> List[Tuple[Optional[int], float]]:
        """The deterministic payload: (answer, objective) per query."""
        return [(r.answer, r.objective) for r in self.results]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
# One warm session per worker process, created by the pool initializer
# and reused for every shard the worker executes.
_WORKER_SESSION: Optional[QuerySession] = None
# Fork-shared engine: set in the parent immediately before the pool
# forks, inherited copy-on-write by the children, cleared afterwards.
_FORK_ENGINE: Optional[IFLSEngine] = None


def _init_fork_worker(
    max_cache_entries: Optional[int], keep_records: bool
) -> None:
    """Worker initializer under ``fork``: wrap the inherited engine."""
    global _WORKER_SESSION
    # The fork inherited the parent's process-global collectors; spans
    # recorded into those copies would be lost.  Workers collect into
    # per-shard collectors instead (see _run_shard).  The same goes for
    # an inherited flight-recorder sink: records appended to the forked
    # copy of the parent's ring would never be seen again.
    _trace.uninstall()
    _trace.set_flight_sink(None)
    _metrics.uninstall()
    if _FORK_ENGINE is None:  # pragma: no cover - defensive
        raise ParallelExecutionError(
            "fork worker started without an inherited engine"
        )
    _WORKER_SESSION = QuerySession(
        _FORK_ENGINE,
        max_cache_entries=max_cache_entries,
        keep_records=keep_records,
    )


def _init_spawn_worker(
    payload: bytes, max_cache_entries: Optional[int], keep_records: bool
) -> None:
    """Worker initializer under ``spawn``: restore the snapshot."""
    global _WORKER_SESSION
    engine = IndexSnapshot.from_bytes(payload).restore()
    _WORKER_SESSION = QuerySession(
        engine,
        max_cache_entries=max_cache_entries,
        keep_records=keep_records,
    )


def _run_shard(
    shard: Sequence[Tuple[int, BatchQuery]],
    submitted_at: Optional[float] = None,
    observe_trace: bool = False,
    observe_metrics: bool = False,
    observe_explain: bool = False,
) -> ShardOutcome:
    """Answer one shard on this worker's warm session.

    ``shard`` carries ``(submission_index, query)`` pairs; record
    indices are rewritten to the 1-based submission position so the
    merged report reads like one serial session.  When the parent had
    collectors active it sets the ``observe_*`` flags: the shard then
    runs under a fresh per-shard tracer/registry whose records travel
    back in the :class:`ShardOutcome`.  ``observe_explain`` flips the
    worker session into explain mode for this shard, shipping the
    per-query :class:`~repro.obs.explain.ExplainReport` list home with
    rewritten submission indices.  ``submitted_at`` is the parent's
    ``time.time()`` at submission — queue wait is measured on the wall
    clock because monotonic clocks do not compare across processes
    (documented approximate).
    """
    session = _WORKER_SESSION
    if session is None:  # pragma: no cover - defensive
        raise ParallelExecutionError("worker session was not initialised")
    tracer = Tracer() if observe_trace else None
    registry = MetricsRegistry() if observe_metrics else None
    before = session.distances.stats.snapshot()
    records_start = len(session.records)
    explain_was = session.explain
    explain_start = len(session.explain_reports)
    session.explain = observe_explain
    results: List[IFLSResult] = []
    indices: List[int] = []
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(_trace.use(tracer))
        if registry is not None:
            stack.enter_context(_metrics.use(registry))
        if submitted_at is not None:
            _metrics.record(
                "parallel.shard.queue_wait_seconds",
                max(0.0, time.time() - submitted_at),
            )
        _metrics.add("parallel.shards")
        shard_attrs = {"queries": len(shard)}
        request_ids = _trace.dedup_request_ids(
            query.request_id for _, query in shard
        )
        if request_ids:
            # A list, so the attribute survives a JSON round-trip
            # (tuples decode as lists).
            shard_attrs["request_ids"] = list(request_ids)
        shard_started = time.perf_counter()
        with _trace.span("parallel.shard", **shard_attrs):
            for index, query in shard:
                results.append(
                    session.query(
                        query.clients,
                        query.facilities,
                        objective=query.objective,
                        options=query.options,
                        label=query.label or f"q{index + 1}",
                        request_id=query.request_id,
                    )
                )
                indices.append(index)
        _metrics.record(
            "parallel.shard.seconds",
            time.perf_counter() - shard_started,
        )
    session.explain = explain_was
    after = session.distances.stats.snapshot()
    totals = {
        key: value - before.get(key, 0) for key, value in after.items()
    }
    records = list(session.records[records_start:])
    for record, index in zip(records, indices):
        record.index = index + 1
    explain_reports = list(session.explain_reports[explain_start:])
    for report, index in zip(explain_reports, indices):
        report.index = index + 1
    return ShardOutcome(
        indices=indices,
        results=results,
        totals=totals,
        cache_sizes=session.distances.cache_sizes(),
        cache_entries=session.distances.cache_entries(),
        cache_bytes=session.distances.cache_bytes(),
        worker_pid=os.getpid(),
        records=records,
        trace_records=(
            tracer.sorted_records() if tracer is not None else []
        ),
        metrics_snapshot=(
            registry.snapshot() if registry is not None else None
        ),
        explain_reports=explain_reports,
    )


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
def shard_batch(
    batch: Sequence[BatchQuery], workers: int
) -> List[List[Tuple[int, BatchQuery]]]:
    """Deal the batch round-robin into ``workers`` indexed shards.

    Striding (worker ``w`` gets queries ``w, w + workers, …``) balances
    load when query cost drifts along the batch; the indices carried
    with each query make reassembly order-independent.  Empty shards
    are dropped, so ``workers > len(batch)`` never idles a process.
    """
    if workers < 1:
        raise ParallelExecutionError(f"workers must be >= 1, got {workers}")
    shards = [
        [
            (index, batch[index])
            for index in range(start, len(batch), workers)
        ]
        for start in range(workers)
    ]
    return [shard for shard in shards if shard]


def _merged_report(
    outcomes: Sequence[ShardOutcome],
    queries: int,
    max_cache_entries: Optional[int],
) -> SessionReport:
    """One session-level view of every worker's counters and caches."""
    totals = merge_snapshots(outcome.totals for outcome in outcomes)
    violations = distance_invariant_violations(totals)
    if violations:
        raise ParallelExecutionError(
            "merged worker statistics broke counter invariants: "
            + "; ".join(violations)
        )
    records = sorted(
        (record for outcome in outcomes for record in outcome.records),
        key=lambda record: record.index,
    )
    # A worker that executed several shards reports its (growing) memo
    # tables once per shard; keep only the largest observation per
    # process so the pool footprint is a sum over workers, not shards.
    last_per_worker: Dict[int, ShardOutcome] = {}
    for outcome in outcomes:
        seen = last_per_worker.get(outcome.worker_pid)
        if seen is None or outcome.cache_entries >= seen.cache_entries:
            last_per_worker[outcome.worker_pid] = outcome
    per_worker = list(last_per_worker.values())
    return SessionReport(
        queries=queries,
        totals=totals,
        cache_sizes=merge_snapshots(o.cache_sizes for o in per_worker),
        cache_entries=sum(o.cache_entries for o in per_worker),
        cache_bytes=sum(o.cache_bytes for o in per_worker),
        max_cache_entries=max_cache_entries,
        records=records,
    )


def _empty_outcome(start_method: str) -> ParallelBatchOutcome:
    return ParallelBatchOutcome(
        results=[],
        report=SessionReport(
            queries=0,
            totals={},
            cache_sizes={},
            cache_entries=0,
            cache_bytes=0,
            max_cache_entries=None,
        ),
        query_stats=QueryStats(),
        workers=0,
        start_method=start_method,
        elapsed_seconds=0.0,
    )


def _run_serial(
    engine: IFLSEngine,
    batch: Sequence[BatchQuery],
    max_cache_entries: Optional[int],
    keep_records: bool,
    explain: bool = False,
) -> ParallelBatchOutcome:
    """The ``workers=1`` path: one in-process warm session.

    This *is* the serial :class:`QuerySession` code path — no pool, no
    pickling — so its output is byte-identical to
    ``engine.session().run(batch)``.
    """
    session = QuerySession(
        engine,
        max_cache_entries=max_cache_entries,
        keep_records=keep_records,
        explain=explain,
    )
    started = time.perf_counter()
    results = session.run(batch)
    elapsed = time.perf_counter() - started
    return ParallelBatchOutcome(
        results=results,
        report=session.report(),
        query_stats=merge_query_stats(r.stats for r in results),
        workers=1,
        start_method="serial",
        elapsed_seconds=elapsed,
        explain_reports=list(session.explain_reports),
    )


def run_batch_parallel(
    engine: IFLSEngine,
    batch: Sequence[BatchQuery],
    workers: int,
    max_cache_entries: Optional[int] = None,
    keep_records: bool = True,
    start_method: Optional[str] = None,
    explain: bool = False,
) -> ParallelBatchOutcome:
    """Answer ``batch`` on ``workers`` processes sharing one index.

    Parameters
    ----------
    engine:
        The prepared engine whose venue + VIP-tree the workers share
        (forked or snapshotted — never rebuilt).
    workers:
        Requested pool size; capped at ``len(batch)`` so no process
        starts idle.  ``1`` runs serially in-process and is
        byte-identical to ``engine.session().run(batch)``.
    max_cache_entries / keep_records:
        Forwarded to each worker's :class:`QuerySession` (the cache
        budget applies *per worker*).
    start_method:
        ``"fork"``, ``"spawn"``, or ``None`` for the platform default
        (fork where available).
    explain:
        Profile every query in the workers and collect the per-query
        :class:`~repro.obs.explain.ExplainReport` list (submission
        order) into ``outcome.explain_reports``.

    Raises
    ------
    ParallelExecutionError
        When a shard raises, a worker process dies, or the merged
        counters break an invariant.
    """
    global _FORK_ENGINE
    batch = as_batch_queries(batch)
    method = start_method or default_start_method()
    if method not in (FORK, SPAWN):
        raise ParallelExecutionError(
            f"unknown start method {method!r}; use {FORK!r} or {SPAWN!r}"
        )
    if not batch:
        return _empty_outcome(method)
    workers = min(workers, len(batch))
    if workers < 1:
        raise ParallelExecutionError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return _run_serial(
            engine, batch, max_cache_entries, keep_records, explain
        )

    observe_trace = _trace.active() is not None
    observe_metrics = _metrics.active() is not None
    with _trace.span(
        "parallel.run", queries=len(batch), start_method=method
    ) as run_span:
        with _trace.span("parallel.prepare"):
            shards = shard_batch(batch, workers)
            if method == FORK:
                context = multiprocessing.get_context(FORK)
                initializer = _init_fork_worker
                initargs: tuple = (max_cache_entries, keep_records)
                _FORK_ENGINE = engine
            else:
                context = multiprocessing.get_context(SPAWN)
                initializer = _init_spawn_worker
                initargs = (
                    IndexSnapshot.from_engine(engine).to_bytes(),
                    max_cache_entries,
                    keep_records,
                )
        started = time.perf_counter()
        outcomes: List[ShardOutcome] = []
        try:
            with ProcessPoolExecutor(
                max_workers=len(shards),
                mp_context=context,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                futures = [
                    (
                        number,
                        pool.submit(
                            _run_shard,
                            shard,
                            time.time(),
                            observe_trace,
                            observe_metrics,
                            explain,
                        ),
                    )
                    for number, shard in enumerate(shards)
                ]
                for number, future in futures:
                    try:
                        outcomes.append(future.result())
                    except ParallelExecutionError:
                        raise
                    except Exception as exc:
                        raise ParallelExecutionError(
                            f"shard {number + 1}/{len(shards)} "
                            f"({len(shards[number])} queries, "
                            f"start method {method!r}) failed: {exc}"
                        ) from exc
        finally:
            if method == FORK:
                _FORK_ENGINE = None
        elapsed = time.perf_counter() - started

        # Fold the workers' observability payloads into the parent's
        # collectors: spans nest under the open parallel.run span
        # (tagged with the worker pid), metric snapshots merge with the
        # documented counter/gauge/histogram semantics.
        tracer = _trace.active()
        registry = _metrics.active()
        for outcome in outcomes:
            if tracer is not None and outcome.trace_records:
                tracer.absorb(outcome.trace_records)
            if registry is not None and outcome.metrics_snapshot:
                registry.merge_snapshot(outcome.metrics_snapshot)

        merge_started = time.perf_counter()
        with _trace.span("parallel.merge"):
            by_index: Dict[int, IFLSResult] = {}
            for outcome in outcomes:
                for index, result in zip(
                    outcome.indices, outcome.results
                ):
                    by_index[index] = result
            missing = [
                i for i in range(len(batch)) if i not in by_index
            ]
            if missing:  # pragma: no cover - defensive
                raise ParallelExecutionError(
                    f"workers returned no result for queries {missing}"
                )
            results = [by_index[i] for i in range(len(batch))]
            report = _merged_report(
                outcomes, len(batch), max_cache_entries
            )
            query_stats = merge_query_stats(r.stats for r in results)
            explain_reports = sorted(
                (
                    explained
                    for outcome in outcomes
                    for explained in outcome.explain_reports
                ),
                key=lambda explained: explained.index or 0,
            )
        _metrics.record(
            "parallel.merge.seconds",
            time.perf_counter() - merge_started,
        )
        run_span.set(workers=len(shards))
    _metrics.add("parallel.batches")
    _metrics.set_gauge("parallel.workers", len(shards))
    return ParallelBatchOutcome(
        results=results,
        report=report,
        query_stats=query_stats,
        workers=len(shards),
        start_method=method,
        elapsed_seconds=elapsed,
        explain_reports=explain_reports,
    )
