"""Command-line interface.

Installed as ``ifls`` (see pyproject) and runnable as
``python -m repro``.  Subcommands:

* ``ifls venues`` — list the built-in venues with their statistics;
* ``ifls info VENUE`` — venue + VIP-tree details;
* ``ifls query VENUE`` — run one synthetic IFLS query and print the
  answer, objective, and execution statistics (``--batch N
  --workers W`` answers a warm batch, sharded over ``W`` processes);
* ``ifls explain VENUE`` — run one query under the EXPLAIN profiler
  and print per-phase timings with exact counter attribution, the
  Lemma 5.1 bound evolution, and the VIP-tree visit profile;
* ``ifls serve VENUE`` — keep the venue resident and answer IFLS
  queries over HTTP/JSON (``POST /query``, ``POST /batch``,
  ``POST /stream``, ``GET /metrics``, ``GET /health``,
  ``GET /explain/<id>``);
* ``ifls flight`` — fetch a running service's flight-recorder dump
  (``GET /debug/flight``) and print the recent span records;
* ``ifls stream VENUE`` — replay a client event stream (a JSONL file
  or a synthesized arrive/depart/move mix) while maintaining the
  MinMax answer incrementally; ``--oracle`` recomputes from scratch
  on every event instead;
* ``ifls perfgate`` — compare a bench suite against its committed
  ``BENCH_<suite>.json`` baseline (``--record`` refreshes it);
* ``ifls report`` — regenerate EXPERIMENTS.md from the recorded bench
  JSON and perf-gate baselines (``--check`` diffs instead of writing);
* ``ifls bench`` — regenerate the paper's tables and figures.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .bench.runner import ALL_EXPERIMENTS, run_all, run_experiment
from .bench.experiments import SCALES, current_scale, default_fe, default_fn
from .core.queries import IFLSEngine
from .datasets.venues import EXPECTED_STATS, VENUE_NAMES, venue_by_name
from .datasets.workloads import workload


def _cmd_venues(_args: argparse.Namespace) -> int:
    print(f"{'venue':<6}{'partitions':>12}{'doors':>8}")
    for name in VENUE_NAMES:
        partitions, doors = EXPECTED_STATS[name]
        print(f"{name:<6}{partitions:>12}{doors:>8}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .indoor.analysis import analyse_venue

    venue = venue_by_name(args.venue)
    started = time.perf_counter()
    engine = IFLSEngine(venue)
    built = time.perf_counter() - started
    tree = engine.tree
    print(venue)
    print(analyse_venue(venue).describe())
    print(f"VIP-tree: {tree.node_count} nodes, {tree.leaf_count} leaves, "
          f"height {tree.height}")
    print(f"access doors: {tree.access_door_count()}")
    print(f"distance-matrix entries: {tree.matrix_entry_count()}")
    print(f"index build time: {built:.2f}s")
    return 0


def _query_engine(args: argparse.Namespace, venue) -> IFLSEngine:
    """Engine honouring ``--no-kernels`` (else the process default)."""
    use_kernels = False if getattr(args, "no_kernels", False) else None
    return IFLSEngine(venue, use_kernels=use_kernels)


def _cmd_query(args: argparse.Namespace) -> int:
    if args.trace is None and args.metrics is None:
        return _cmd_query_inner(args)
    from .obs import observe
    from .obs.exporters import write_metrics_csv, write_trace_jsonl

    with observe() as (tracer, registry):
        code = _cmd_query_inner(args)
    if args.trace is not None:
        spans = write_trace_jsonl(tracer, Path(args.trace))
        print(f"trace:      {spans} spans -> {args.trace}")
    if args.metrics is not None:
        rows = write_metrics_csv(registry, Path(args.metrics))
        print(f"metrics:    {rows} instruments -> {args.metrics}")
    return code


def _cmd_query_inner(args: argparse.Namespace) -> int:
    venue = venue_by_name(args.venue)
    fe = args.existing if args.existing else default_fe(args.venue.upper())
    fn = args.candidates if args.candidates else default_fn(
        args.venue.upper()
    )
    if args.batch > 1 or args.session_stats or args.workers > 1:
        return _run_query_batch(args, venue, fe, fn)
    clients, facilities = workload(
        venue,
        args.clients,
        fe,
        fn,
        seed=args.seed,
        distribution=args.distribution,
        sigma=args.sigma,
    )
    engine = _query_engine(args, venue)
    started = time.perf_counter()
    result = engine.query(
        clients,
        facilities,
        objective=args.objective,
        algorithm=args.algorithm,
        cold=True,
    )
    elapsed = time.perf_counter() - started
    print(f"venue:      {venue.name} ({venue.partition_count} partitions)")
    print(f"workload:   |C|={len(clients)} |Fe|={fe} |Fn|={fn} "
          f"seed={args.seed} dist={args.distribution}")
    print(f"algorithm:  {args.algorithm} / {args.objective} "
          f"(kernels {'on' if engine.use_kernels else 'off'})")
    print(f"answer:     partition {result.answer} ({result.status})")
    print(f"objective:  {result.objective:.4f}")
    print(f"time:       {elapsed:.3f}s")
    stats = result.stats
    print(f"stats:      pruned={stats.clients_pruned}/"
          f"{stats.clients_total} retrieved={stats.facilities_retrieved} "
          f"queue pops={stats.queue_pops}")
    print(f"distances:  idist={stats.distance.idist_calls} "
          f"d2d={stats.distance.d2d_lookups}")
    return 0


def _run_query_batch(args: argparse.Namespace, venue, fe: int, fn: int) -> int:
    """Answer ``--batch`` queries through one warm :class:`QuerySession`.

    Each query draws a fresh workload (seed, seed+1, …), so the batch
    models a stream of independent requests against one venue; the
    session report shows what the warm caches saved.
    """
    from .core.session import BatchQuery

    if args.algorithm != "efficient":
        print("batch mode uses the efficient algorithm "
              f"(--algorithm {args.algorithm} ignored)")
    if args.workers < 1:
        print(f"--workers must be >= 1 (got {args.workers})")
        return 2
    engine = _query_engine(args, venue)
    session = engine.session(max_cache_entries=args.cache_budget)
    batch = []
    for i in range(args.batch):
        clients, facilities = workload(
            venue,
            args.clients,
            fe,
            fn,
            seed=args.seed + i,
            distribution=args.distribution,
            sigma=args.sigma,
        )
        batch.append(
            BatchQuery(
                clients,
                facilities,
                objective=args.objective,
                label=f"seed={args.seed + i}",
            )
        )
    started = time.perf_counter()
    results = session.run(batch, workers=args.workers)
    elapsed = time.perf_counter() - started
    print(f"venue:      {venue.name} ({venue.partition_count} partitions)")
    print(f"batch:      {args.batch} x |C|={args.clients} |Fe|={fe} "
          f"|Fn|={fn} seeds {args.seed}..{args.seed + args.batch - 1}")
    mode = (
        "efficient, warm session"
        if args.workers == 1
        else f"efficient, {args.workers} workers"
    )
    print(f"objective:  {args.objective} ({mode})")
    print(f"time:       {elapsed:.3f}s total, "
          f"{elapsed / args.batch:.4f}s/query")
    improved = sum(1 for r in results if r.answer is not None)
    print(f"answers:    {improved}/{len(results)} queries improved "
          f"the crowd")
    print()
    print(session.report().describe(per_query=args.session_stats))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Profile one query and print/export its EXPLAIN report."""
    from .obs.explain import write_explain_csv, write_explain_json

    venue = venue_by_name(args.venue)
    fe = args.existing if args.existing else default_fe(args.venue.upper())
    fn = args.candidates if args.candidates else default_fn(
        args.venue.upper()
    )
    clients, facilities = workload(
        venue,
        args.clients,
        fe,
        fn,
        seed=args.seed,
        distribution=args.distribution,
        sigma=args.sigma,
    )
    engine = _query_engine(args, venue)
    report = engine.explain(
        clients,
        facilities,
        objective=args.objective,
        algorithm=args.algorithm,
        label=f"{venue.name} seed={args.seed}",
        cold=True,
        bound_limit=args.bound_samples,
    )
    print(report.describe(timings=not args.no_timings))
    if args.json is not None:
        write_explain_json(report, Path(args.json))
        print(f"\njson:       report -> {args.json}")
    if args.csv is not None:
        rows = write_explain_csv(report, Path(args.csv))
        print(f"csv:        {rows} phase rows -> {args.csv}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    """Replay a client event stream with incremental IFLS answers."""
    import random as _random

    from .core.stream import (
        ContinuousQuery,
        read_events,
        synthetic_events,
        write_events,
    )
    from .datasets.workloads import random_facility_sets

    venue = venue_by_name(args.venue)
    fe = args.existing if args.existing else default_fe(args.venue.upper())
    fn = args.candidates if args.candidates else default_fn(
        args.venue.upper()
    )
    facilities = random_facility_sets(
        venue, fe, fn, _random.Random(args.seed)
    )
    if args.events is not None:
        events = read_events(Path(args.events))
        source = args.events
    else:
        events = synthetic_events(
            venue,
            initial=args.initial,
            events=args.count,
            seed=args.seed,
        )
        source = (
            f"synthetic initial={args.initial} mixed={args.count} "
            f"seed={args.seed}"
        )
    if args.save_events is not None:
        written = write_events(Path(args.save_events), events)
        print(f"saved:      {written} events -> {args.save_events}")
    engine = _query_engine(args, venue)
    stream = ContinuousQuery(
        engine, facilities, incremental=not args.oracle
    )
    started = time.perf_counter()
    stream.apply_batch(events)
    elapsed = time.perf_counter() - started
    stats = stream.stats
    final = stream.answer()
    rate = len(events) / elapsed if elapsed > 0 else float("inf")
    print(f"venue:      {venue.name} ({venue.partition_count} partitions)")
    print(f"facilities: |Fe|={fe} |Fn|={fn} seed={args.seed}")
    print(f"events:     {len(events)} from {source}")
    print(f"mode:       {'oracle (full recompute per event)' if args.oracle else 'incremental'} "
          f"(kernels {'on' if engine.use_kernels else 'off'})")
    print(f"time:       {elapsed:.3f}s total, {rate:.0f} events/s")
    print(f"answers:    skipped={stats.skips} "
          f"partial={stats.partial_solves} "
          f"full={stats.full_recomputes}")
    print(f"groups:     reevaluated={stats.groups_reevaluated} "
          f"skipped={stats.groups_skipped} "
          f"ratio={stats.reevaluation_ratio:.3f}/event")
    if final.status == "empty":
        print("final:      crowd is empty")
    elif final.answer is None:
        print(f"final:      no improvement (objective "
              f"{final.objective:.4f})")
    else:
        print(f"final:      partition {final.answer} "
              f"(objective {final.objective:.4f}, "
              f"|C|={stream.client_count})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived HTTP query service on one venue."""
    from .api import open_venue
    from .service.server import ServiceConfig, run_service

    use_kernels = False if args.no_kernels else None
    engine = open_venue(
        args.venue, backend=args.backend, use_kernels=use_kernels
    )
    slow = args.slow_query_seconds
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        pool_size=args.pool_size,
        max_cache_entries=args.cache_budget,
        cache_bytes_budget=args.cache_bytes_budget,
        flush_window=args.flush_window,
        max_batch=args.max_batch,
        workers=args.workers,
        request_timeout=args.request_timeout,
        flight_capacity=args.flight_capacity,
        slow_query_seconds=slow if slow > 0 else None,
    )
    run_service(engine, config=config)
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    """Fetch and render a running service's flight-recorder dump."""
    import json as _json
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/debug/flight"
    if args.last is not None:
        url += f"?last={args.last}"
    try:
        with urllib.request.urlopen(
            url, timeout=args.timeout
        ) as response:
            dump = _json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"flight: cannot fetch {url}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(dump, indent=2, sort_keys=True))
        return 0
    print(f"flight recorder @ {args.url}")
    print(f"  capacity={dump['capacity']} appended={dump['appended']} "
          f"dropped={dump['dropped']} "
          f"slow_threshold={dump['slow_threshold_seconds']}")
    print(f"  {len(dump['records'])} resident records "
          f"(oldest first):")
    for record in dump["records"]:
        attrs = record.get("attrs", {})
        extras = []
        if "request_id" in attrs:
            extras.append(f"rid={attrs['request_id']}")
        if "request_ids" in attrs:
            extras.append(
                "rids=" + ",".join(attrs["request_ids"])
            )
        if "error" in attrs:
            extras.append(f"error={attrs['error']}")
        suffix = f" ({' '.join(extras)})" if extras else ""
        print(f"    {record['name']:<24} "
              f"{record['duration'] * 1000.0:9.3f} ms{suffix}")
    slow = dump.get("slow", [])
    if slow:
        print(f"  {len(slow)} slow records:")
        for record in slow:
            print(f"    {record['name']:<24} "
                  f"{record['duration'] * 1000.0:9.3f} ms")
    return 0


def _cmd_perfgate(args: argparse.Namespace) -> int:
    """Record or enforce the perf-regression baselines."""
    from .bench import regress

    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else regress.default_baseline_path(args.suite)
    )
    if args.record:
        runs = args.runs if args.runs is not None else 5
        baseline = regress.record_baseline(
            args.suite, runs=runs, path=baseline_path
        )
        print(
            f"recorded {len(baseline.metrics)} metrics "
            f"(median of {runs}) to {baseline_path}"
        )
        return 0
    if not baseline_path.is_file():
        print(
            f"perf gate: no baseline at {baseline_path}; record one "
            "with --record",
            file=sys.stderr,
        )
        return 1
    runs = args.runs if args.runs is not None else 3
    report = regress.gate(
        args.suite,
        baseline_path,
        runs=runs,
        wall_tolerance=args.wall_tolerance,
        strict_wall=args.strict_wall,
    )
    text = report.describe()
    print(text)
    if args.out is not None:
        out = Path(args.out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"report:     -> {args.out}")
    return 0 if report.passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Regenerate (or drift-check) the generated EXPERIMENTS.md."""
    from .bench import report as _report

    provider = _report.DataProvider(
        results_dir=Path(args.results),
        baseline_dir=Path(args.baselines),
    )
    out = Path(args.out)
    if args.check:
        ok, diff = _report.check(provider, out)
        if ok:
            print(f"report:     {out} matches the recorded data")
            return 0
        sys.stdout.write(diff)
        print(
            f"\nreport:     {out} drifted from the recorded data; "
            "regenerate with `ifls report`",
            file=sys.stderr,
        )
        return 1
    text = _report.generate(provider, out)
    sections = len(_report.SECTIONS)
    print(
        f"report:     {sections} sections, {len(text.splitlines())} "
        f"lines -> {out}"
    )
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from .indoor.render import FloorPlanRenderer

    venue = venue_by_name(args.venue)
    renderer = FloorPlanRenderer(
        venue, width=args.width, height=args.height
    )
    levels = (
        [args.level] if args.level is not None else list(venue.levels)
    )
    for level in levels:
        print(renderer.render_level(level, labels=args.labels))
        print()
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    from .core.topk import top_k_ifls

    venue = venue_by_name(args.venue)
    fe = args.existing if args.existing else default_fe(args.venue.upper())
    fn = args.candidates if args.candidates else default_fn(
        args.venue.upper()
    )
    clients, facilities = workload(
        venue, args.clients, fe, fn, seed=args.seed
    )
    engine = IFLSEngine(venue)
    ranked, stats = top_k_ifls(
        engine.problem(clients, facilities), args.k,
        objective=args.objective,
    )
    print(f"top-{args.k} candidates ({args.objective}, |C|={args.clients},"
          f" |Fe|={fe}, |Fn|={fn}):")
    for entry in ranked:
        print(f"  #{entry.rank}: partition {entry.candidate:>6} "
              f"objective {entry.objective:.4f}")
    print(f"evaluated {stats.candidates_evaluated} candidates, "
          f"{stats.evaluations_aborted} aborted early, "
          f"{stats.client_terms_computed} client terms")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    """Answer a query, then walk the worst-off client to the answer."""
    from .index.path import PathService

    venue = venue_by_name(args.venue)
    fe = args.existing if args.existing else default_fe(args.venue.upper())
    fn = args.candidates if args.candidates else default_fn(
        args.venue.upper()
    )
    clients, facilities = workload(
        venue, args.clients, fe, fn, seed=args.seed
    )
    engine = IFLSEngine(venue)
    result = engine.query(clients, facilities)
    if result.answer is None:
        print("no candidate improves the crowd; nothing to route to")
        return 0
    # The client realising the objective, and its nearest facility
    # among the existing ones plus the answer.
    placed = sorted(facilities.existing | {result.answer})

    def nearest(client):
        return min(
            ((engine.distances.idist(client, f), f) for f in placed)
        )

    worst = max(clients, key=lambda c: nearest(c)[0])
    distance, destination = nearest(worst)
    paths = PathService(venue, graph=engine.tree.graph)
    route = paths.route_to_partition(worst, destination)
    print(f"answer: partition {result.answer} "
          f"(objective {result.objective:.2f})")
    print(f"worst-off client c{worst.client_id} -> nearest facility "
          f"{destination} ({distance:.2f} m):")
    print(paths.describe(route))
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    """Compare the distance-index backends on one venue."""
    import random as _random

    from .index.doortable import DoorTableIndex
    from .index.iptree import IPTreeDistanceIndex
    from .index.viptree import VIPTree

    venue = venue_by_name(args.venue)
    doors = sorted(venue.door_ids())
    rng = _random.Random(1)
    pairs = [tuple(rng.sample(doors, 2)) for _ in range(args.pairs)]

    started = time.perf_counter()
    tree = VIPTree(venue)
    vip_build = time.perf_counter() - started
    started = time.perf_counter()
    ip = IPTreeDistanceIndex(tree)
    ip_build = time.perf_counter() - started
    started = time.perf_counter()
    table = DoorTableIndex(venue, graph=tree.graph)
    table_build = time.perf_counter() - started

    print(f"{venue.name}: {venue.door_count} doors, "
          f"{args.pairs} random query pairs\n")
    print(f"{'backend':<10}{'build(s)':>10}{'entries':>12}"
          f"{'query total(s)':>16}")
    for name, index, build in (
        ("viptree", tree, vip_build),
        ("iptree", ip, ip_build),
        ("doortable", table, table_build),
    ):
        started = time.perf_counter()
        total = sum(index.door_to_door(a, b) for a, b in pairs)
        elapsed = time.perf_counter() - started
        assert total >= 0
        print(f"{name:<10}{build:>10.3f}{index.matrix_entry_count():>12}"
              f"{elapsed:>16.4f}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .bench.validate import validate_reproduction

    report = validate_reproduction(client_count=args.clients)
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale
    scale = current_scale()
    out_dir = Path(args.out) if args.out else None
    if args.experiment == "all":
        run_all(scale=scale, out_dir=out_dir)
    else:
        run_experiment(args.experiment, scale=scale, out_dir=out_dir)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``ifls`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="ifls",
        description=(
            "Indoor Facility Location Selection queries (EDBT 2023 "
            "reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("venues", help="list built-in venues").set_defaults(
        fn=_cmd_venues
    )

    info = sub.add_parser("info", help="venue and index details")
    info.add_argument("venue", choices=[v for v in VENUE_NAMES]
                      + [v.lower() for v in VENUE_NAMES])
    info.set_defaults(fn=_cmd_info)

    query = sub.add_parser("query", help="run one IFLS query")
    query.add_argument("venue", choices=[v for v in VENUE_NAMES]
                       + [v.lower() for v in VENUE_NAMES])
    query.add_argument("--clients", type=int, default=1000)
    query.add_argument("--existing", type=int, default=0,
                       help="|Fe| (default: venue's Table-2 default)")
    query.add_argument("--candidates", type=int, default=0,
                       help="|Fn| (default: venue's Table-2 default)")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--distribution", choices=("uniform", "normal"),
                       default="uniform")
    query.add_argument("--sigma", type=float, default=0.5)
    query.add_argument("--algorithm",
                       choices=("efficient", "baseline", "bruteforce"),
                       default="efficient")
    query.add_argument("--objective",
                       choices=("minmax", "mindist", "maxsum"),
                       default="minmax")
    query.add_argument("--batch", type=int, default=1,
                       help="answer N fresh-workload queries through "
                            "one warm QuerySession")
    query.add_argument("--workers", type=int, default=1,
                       help="shard the batch across N worker processes "
                            "(1 = serial warm session)")
    query.add_argument("--session-stats", action="store_true",
                       help="print per-query cache-effectiveness rows")
    query.add_argument("--cache-budget", type=int, default=None,
                       help="max memoised distance entries "
                            "(oldest evicted first; default unbounded)")
    query.add_argument("--trace", metavar="PATH", default=None,
                       help="write a JSON-lines span trace of the run "
                            "(see docs/OBSERVABILITY.md)")
    query.add_argument("--metrics", metavar="PATH", default=None,
                       help="write a metrics CSV snapshot of the run "
                            "(see docs/OBSERVABILITY.md)")
    query.add_argument("--no-kernels", action="store_true",
                       help="force the scalar distance path (the "
                            "dense-array kernel oracle; default "
                            "follows numpy availability and "
                            "IFLS_USE_KERNELS)")
    query.set_defaults(fn=_cmd_query)

    explain = sub.add_parser(
        "explain", help="profile one query with the EXPLAIN profiler"
    )
    explain.add_argument("venue", choices=[v for v in VENUE_NAMES]
                         + [v.lower() for v in VENUE_NAMES])
    explain.add_argument("--clients", type=int, default=500)
    explain.add_argument("--existing", type=int, default=0,
                         help="|Fe| (default: venue's Table-2 default)")
    explain.add_argument("--candidates", type=int, default=0,
                         help="|Fn| (default: venue's Table-2 default)")
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument("--distribution",
                         choices=("uniform", "normal"),
                         default="uniform")
    explain.add_argument("--sigma", type=float, default=0.5)
    explain.add_argument("--algorithm",
                         choices=("efficient", "baseline"),
                         default="efficient")
    explain.add_argument("--objective",
                         choices=("minmax", "mindist", "maxsum"),
                         default="minmax")
    explain.add_argument("--bound-samples", type=int, default=512,
                         help="max Lemma 5.1 bound-evolution samples "
                              "kept (ends always survive)")
    explain.add_argument("--no-timings", action="store_true",
                         help="omit wall times (byte-stable output)")
    explain.add_argument("--json", metavar="PATH", default=None,
                         help="also write the report as JSON")
    explain.add_argument("--csv", metavar="PATH", default=None,
                         help="also write per-phase attribution CSV")
    explain.add_argument("--no-kernels", action="store_true",
                         help="force the scalar distance path (the "
                              "dense-array kernel oracle; default "
                              "follows numpy availability and "
                              "IFLS_USE_KERNELS)")
    explain.set_defaults(fn=_cmd_explain)

    serve = sub.add_parser(
        "serve",
        help="answer IFLS queries over HTTP from a resident venue",
    )
    serve.add_argument("venue",
                       help="built-in venue name or a venue JSON path")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8337,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--backend",
                       choices=("viptree", "iptree", "doortable"),
                       default="viptree",
                       help="distance-index backend (IFLS queries "
                            "require viptree)")
    serve.add_argument("--pool-size", type=int, default=2,
                       help="warm sessions kept over the shared "
                            "index snapshot")
    serve.add_argument("--flush-window", type=float, default=0.01,
                       help="seconds a flush waits to coalesce "
                            "concurrent requests")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="flush as soon as this many requests "
                            "are pending")
    serve.add_argument("--workers", type=int, default=1,
                       help="process-pool shards per coalesced batch "
                            "(1 = serial warm session)")
    serve.add_argument("--cache-budget", type=int, default=None,
                       help="max memoised distance entries per "
                            "session (default unbounded)")
    serve.add_argument("--cache-bytes-budget", type=int, default=None,
                       help="combined idle-session cache bytes before "
                            "oldest-idle eviction (default off)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request seconds before HTTP 504 "
                            "(overridable per query)")
    serve.add_argument("--slow-query-seconds", type=float, default=1.0,
                       help="flight-recorder slow-query threshold "
                            "(<= 0 disables the slow log)")
    serve.add_argument("--flight-capacity", type=int, default=256,
                       help="flight-recorder ring size (completed "
                            "span records kept)")
    serve.add_argument("--no-kernels", action="store_true",
                       help="force the scalar distance path")
    serve.set_defaults(fn=_cmd_serve)

    flight = sub.add_parser(
        "flight",
        help="dump a running service's flight recorder",
    )
    flight.add_argument("--url", default="http://127.0.0.1:8337",
                        help="base URL of the running service")
    flight.add_argument("--last", type=int, default=None,
                        help="only the most recent N records")
    flight.add_argument("--timeout", type=float, default=10.0,
                        help="HTTP timeout in seconds")
    flight.add_argument("--json", action="store_true",
                        help="print the raw JSON dump")
    flight.set_defaults(fn=_cmd_flight)

    stream = sub.add_parser(
        "stream",
        help="replay a client event stream with incremental answers",
    )
    stream.add_argument("venue", choices=[v for v in VENUE_NAMES]
                        + [v.lower() for v in VENUE_NAMES])
    stream.add_argument("--events", metavar="PATH", default=None,
                        help="JSONL ClientEvent file to replay "
                             "(default: synthesize a workload)")
    stream.add_argument("--initial", type=int, default=100,
                        help="synthetic arrivals before the mixed "
                             "phase (ignored with --events)")
    stream.add_argument("--count", type=int, default=300,
                        help="synthetic mixed arrive/depart/move "
                             "events (ignored with --events)")
    stream.add_argument("--seed", type=int, default=0,
                        help="seed for facilities and the synthetic "
                             "event mix")
    stream.add_argument("--existing", type=int, default=0,
                        help="|Fe| (default: venue's Table-2 default)")
    stream.add_argument("--candidates", type=int, default=0,
                        help="|Fn| (default: venue's Table-2 default)")
    stream.add_argument("--oracle", action="store_true",
                        help="recompute from scratch on every event "
                             "(the verification oracle) instead of "
                             "incrementally")
    stream.add_argument("--save-events", metavar="PATH", default=None,
                        help="also write the replayed events as JSONL")
    stream.add_argument("--no-kernels", action="store_true",
                        help="force the scalar distance path")
    stream.set_defaults(fn=_cmd_stream)

    perfgate = sub.add_parser(
        "perfgate",
        help="compare a bench suite against its committed baseline",
    )
    perfgate.add_argument("--suite", default="small",
                          help="metric suite (default: small)")
    perfgate.add_argument("--baseline", metavar="PATH", default=None,
                          help="baseline file (default: "
                               "BENCH_<suite>.json in the cwd)")
    perfgate.add_argument("--record", action="store_true",
                          help="re-measure and overwrite the baseline "
                               "instead of gating")
    perfgate.add_argument("--runs", type=int, default=None,
                          help="median-of-N suite executions (default: "
                               "5 recording, 3 gating)")
    perfgate.add_argument("--wall-tolerance", type=float, default=0.5,
                          help="relative band for wall-clock metrics")
    perfgate.add_argument("--strict-wall", action="store_true",
                          help="enforce wall metrics despite a machine-"
                               "fingerprint mismatch")
    perfgate.add_argument("--out", metavar="PATH", default=None,
                          help="also write the comparison report here")
    perfgate.set_defaults(fn=_cmd_perfgate)

    report = sub.add_parser(
        "report",
        help="regenerate EXPERIMENTS.md from recorded bench data",
    )
    report.add_argument("--results", metavar="DIR",
                        default="benchmarks/recorded",
                        help="recorded experiment JSON directory")
    report.add_argument("--baselines", metavar="DIR", default=".",
                        help="directory with BENCH_<suite>.json files")
    report.add_argument("--out", metavar="PATH", default="EXPERIMENTS.md",
                        help="report path to write or check")
    report.add_argument("--check", action="store_true",
                        help="diff the committed report against a fresh "
                             "composition instead of writing (exit 1 on "
                             "drift)")
    report.set_defaults(fn=_cmd_report)

    render = sub.add_parser("render", help="ASCII floor plan")
    render.add_argument("venue", choices=[v for v in VENUE_NAMES]
                        + [v.lower() for v in VENUE_NAMES])
    render.add_argument("--level", type=int, default=None)
    render.add_argument("--width", type=int, default=100)
    render.add_argument("--height", type=int, default=24)
    render.add_argument("--labels", action="store_true")
    render.set_defaults(fn=_cmd_render)

    topk = sub.add_parser("topk", help="k best candidate locations")
    topk.add_argument("venue", choices=[v for v in VENUE_NAMES]
                      + [v.lower() for v in VENUE_NAMES])
    topk.add_argument("-k", type=int, default=5)
    topk.add_argument("--clients", type=int, default=500)
    topk.add_argument("--existing", type=int, default=0)
    topk.add_argument("--candidates", type=int, default=0)
    topk.add_argument("--seed", type=int, default=0)
    topk.add_argument("--objective",
                      choices=("minmax", "mindist", "maxsum"),
                      default="minmax")
    topk.set_defaults(fn=_cmd_topk)

    route = sub.add_parser(
        "route", help="walk the worst client to the query answer"
    )
    route.add_argument("venue", choices=[v for v in VENUE_NAMES]
                       + [v.lower() for v in VENUE_NAMES])
    route.add_argument("--clients", type=int, default=300)
    route.add_argument("--existing", type=int, default=0)
    route.add_argument("--candidates", type=int, default=0)
    route.add_argument("--seed", type=int, default=0)
    route.set_defaults(fn=_cmd_route)

    backends = sub.add_parser(
        "backends", help="compare distance-index backends"
    )
    backends.add_argument("venue", choices=[v for v in VENUE_NAMES]
                          + [v.lower() for v in VENUE_NAMES])
    backends.add_argument("--pairs", type=int, default=200)
    backends.set_defaults(fn=_cmd_backends)

    validate = sub.add_parser(
        "validate", help="end-to-end agreement checks on all venues"
    )
    validate.add_argument("--clients", type=int, default=120)
    validate.set_defaults(fn=_cmd_validate)

    bench = sub.add_parser(
        "bench", help="regenerate the paper's tables/figures"
    )
    bench.add_argument("--experiment", default="all",
                       choices=("all",) + ALL_EXPERIMENTS)
    bench.add_argument("--scale", choices=sorted(SCALES), default=None,
                       help="overrides REPRO_SCALE")
    bench.add_argument("--out", default=None,
                       help="directory for CSV output")
    bench.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other CLIs.
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os._exit(0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
