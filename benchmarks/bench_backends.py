"""Index-backend comparison: why the paper picks the VIP-tree.

Reproduces the trade-off discussion of paper §2.3/§4 by benchmarking
door-to-door distance resolution on four backends built from the same
venue:

* **dijkstra** — no index, on-demand single-source search (the
  accessibility-graph approach of Lu et al.);
* **doortable** — all-pairs hash table (Yang et al.): fastest queries,
  quadratic memory and build;
* **iptree** — hierarchical matrices (IP-tree): small memory, query
  cost grows with tree depth;
* **viptree** — IP-tree plus vivid matrices: near-O(1) queries at
  moderate memory.

Entry counts are attached as ``extra_info`` so memory and speed can be
read side by side from the benchmark JSON.
"""

from __future__ import annotations

import random

import pytest

from repro import DistanceService, VIPTree
from repro.datasets import venue_by_name
from repro.index.doortable import DoorTableIndex
from repro.index.iptree import IPTreeDistanceIndex

_STATE = {}


def _backends(venue_name: str):
    if venue_name not in _STATE:
        venue = venue_by_name(venue_name)
        tree = VIPTree(venue)
        _STATE[venue_name] = {
            "venue": venue,
            "viptree": tree,
            "doortable": DoorTableIndex(venue, graph=tree.graph),
            "iptree": IPTreeDistanceIndex(tree),
            "dijkstra": DistanceService(venue, graph=tree.graph),
        }
    return _STATE[venue_name]


def _pairs(venue, count=150, seed=9):
    doors = sorted(venue.door_ids())
    rng = random.Random(seed)
    return [tuple(rng.sample(doors, 2)) for _ in range(count)]


@pytest.mark.parametrize("backend",
                         ["dijkstra", "doortable", "iptree", "viptree"])
@pytest.mark.parametrize("venue_name", ["MC", "MZB"])
def test_door_to_door_throughput(benchmark, venue_name, backend):
    state = _backends(venue_name)
    index = state[backend]
    pairs = _pairs(state["venue"])

    if backend == "dijkstra":
        def run():
            # Fresh service: no memoised rows, the honest no-index cost.
            service = DistanceService(
                state["venue"], graph=state["viptree"].graph
            )
            return sum(service.door_to_door(a, b) for a, b in pairs[:10])
    else:
        def run():
            return sum(index.door_to_door(a, b) for a, b in pairs)

    benchmark(run)
    benchmark.extra_info["venue"] = venue_name
    benchmark.extra_info["pairs"] = 10 if backend == "dijkstra" else len(pairs)
    if hasattr(index, "matrix_entry_count"):
        benchmark.extra_info["matrix_entries"] = index.matrix_entry_count()


@pytest.mark.parametrize(
    "builder",
    ["viptree", "doortable", "iptree"],
)
def test_index_build_cost(benchmark, builder):
    venue = venue_by_name("MC")
    base_tree = VIPTree(venue)

    if builder == "viptree":
        target = lambda: VIPTree(venue)  # noqa: E731
    elif builder == "doortable":
        target = lambda: DoorTableIndex(  # noqa: E731
            venue, graph=base_tree.graph
        )
    else:
        target = lambda: IPTreeDistanceIndex(base_tree)  # noqa: E731

    result = benchmark(target)
    benchmark.extra_info["matrix_entries"] = result.matrix_entry_count()
