"""Figure 7: query processing time vs |C|, |Fe|, |Fn| (synthetic).

One pytest-benchmark case per (venue, parameter point, algorithm) at
benchmark scale.  Full series:
``python -m repro bench --experiment fig7``.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import FE_RANGES, FN_RANGES
from repro.datasets import VENUE_NAMES

from conftest import synthetic_workload

CLIENT_POINTS = (100, 500, 1000)


@pytest.mark.parametrize("venue", VENUE_NAMES)
@pytest.mark.parametrize("clients", CLIENT_POINTS)
@pytest.mark.parametrize("algorithm", ["efficient", "baseline"])
def test_fig7a_client_size(benchmark, venue, clients, algorithm):
    engine, client_list, facilities = synthetic_workload(
        venue, clients=clients, seed=70
    )
    result = benchmark(
        lambda: engine.query(
            client_list, facilities, algorithm=algorithm, cold=True
        )
    )
    benchmark.extra_info["figure"] = "7a"
    benchmark.extra_info["venue"] = venue
    benchmark.extra_info["objective"] = result.objective


@pytest.mark.parametrize("venue", VENUE_NAMES)
@pytest.mark.parametrize("point", ["low", "high"])
@pytest.mark.parametrize("algorithm", ["efficient", "baseline"])
def test_fig7b_existing_size(benchmark, venue, point, algorithm):
    fe_range = FE_RANGES[venue]
    fe = fe_range[0] if point == "low" else fe_range[-1]
    engine, clients, facilities = synthetic_workload(
        venue, fe=fe, seed=71
    )
    result = benchmark(
        lambda: engine.query(
            clients, facilities, algorithm=algorithm, cold=True
        )
    )
    benchmark.extra_info["figure"] = "7b"
    benchmark.extra_info["venue"] = venue
    benchmark.extra_info["|Fe|"] = fe
    benchmark.extra_info["objective"] = result.objective


@pytest.mark.parametrize("venue", VENUE_NAMES)
@pytest.mark.parametrize("point", ["low", "high"])
@pytest.mark.parametrize("algorithm", ["efficient", "baseline"])
def test_fig7c_candidate_size(benchmark, venue, point, algorithm):
    fn_range = FN_RANGES[venue]
    fn = fn_range[0] if point == "low" else fn_range[-1]
    engine, clients, facilities = synthetic_workload(
        venue, fn=fn, seed=72
    )
    result = benchmark(
        lambda: engine.query(
            clients, facilities, algorithm=algorithm, cold=True
        )
    )
    benchmark.extra_info["figure"] = "7c"
    benchmark.extra_info["venue"] = venue
    benchmark.extra_info["|Fn|"] = fn
    benchmark.extra_info["objective"] = result.objective
