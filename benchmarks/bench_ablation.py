"""Ablations A1-A3 (DESIGN.md): the efficient approach's design choices.

Benchmarks the full algorithm against variants with client pruning
(Lemma 5.1), partition grouping, or the bottom-up traversal disabled.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import ABLATION_VARIANTS
from repro.core.efficient import efficient_minmax
from repro.core.problem import IFLSProblem
from repro.index.distance import VIPDistanceEngine

from conftest import synthetic_workload


@pytest.mark.parametrize("variant", sorted(ABLATION_VARIANTS))
def test_ablation_minmax(benchmark, variant):
    engine, clients, facilities = synthetic_workload("MC", seed=90)
    options = ABLATION_VARIANTS[variant]

    def run():
        distances = VIPDistanceEngine(engine.tree)
        problem = IFLSProblem(distances, clients, facilities)
        return efficient_minmax(problem, options)

    result = benchmark(run)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["objective"] = result.objective
    benchmark.extra_info["queue_pops"] = result.stats.queue_pops
    benchmark.extra_info["facilities_retrieved"] = (
        result.stats.facilities_retrieved
    )
