#!/usr/bin/env python
"""Record (or refresh) the committed perf-gate baselines.

Runs a :mod:`repro.bench.regress` suite ``--runs`` times (default 5),
takes per-metric medians, and writes ``BENCH_<suite>.json`` at the
repository root — the file the ``perf-gate`` CI job and ``ifls
perfgate`` compare against.  Re-run and commit the result whenever an
intentional algorithm change moves an exact counter::

    PYTHONPATH=src python benchmarks/record_baseline.py --suite small

Equivalent to ``tools/perf_gate.py --record`` / ``ifls perfgate
--record``; this entry point lives next to the benchmarks because
recording is a measurement, not a gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]

if __name__ == "__main__":  # allow running from a source checkout
    _src = _REPO / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.bench import regress  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="record median-of-N bench baselines for the "
        "perf-regression gate"
    )
    parser.add_argument(
        "--suite",
        default="small",
        choices=sorted(regress.SUITES),
        help="metric suite to record (default: small)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=5,
        help="suite executions to take the median of "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="baseline file to write (default: BENCH_<suite>.json at "
        "the repository root)",
    )
    args = parser.parse_args(argv)
    path = args.out
    if path is None:
        path = regress.default_baseline_path(args.suite, root=_REPO)
    baseline = regress.record_baseline(
        args.suite, runs=args.runs, path=path
    )
    print(
        f"recorded {len(baseline.metrics)} metrics "
        f"(median of {args.runs}) to {path}"
    )
    for name in sorted(baseline.metrics):
        value, kind = baseline.metrics[name]
        print(f"  {name:<36} {kind:<6} {value:.6g}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
