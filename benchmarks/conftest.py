"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_*.py`` file regenerates one table/figure of the paper at
benchmark scale (client counts scaled down from Table 2 so a full
``pytest benchmarks/ --benchmark-only`` run stays laptop-friendly).
The full paper-scale series come from the harness:
``python -m repro bench --scale paper``.
"""

from __future__ import annotations

import random

import pytest

from repro import IFLSEngine
from repro.bench.experiments import default_fe, default_fn
from repro.datasets import venue_by_name
from repro.datasets.workloads import (
    normal_clients,
    random_facility_sets,
    uniform_clients,
)

#: Benchmark-scale client count standing in for the paper's 10k default.
BENCH_CLIENTS = 500


_ENGINES = {}


def engine_for(venue_name: str) -> IFLSEngine:
    if venue_name not in _ENGINES:
        _ENGINES[venue_name] = IFLSEngine(venue_by_name(venue_name))
    return _ENGINES[venue_name]


@pytest.fixture(scope="session")
def engines():
    return engine_for


def synthetic_workload(
    venue_name: str,
    clients: int = BENCH_CLIENTS,
    fe: int = 0,
    fn: int = 0,
    seed: int = 0,
    distribution: str = "uniform",
    sigma: float = 0.5,
):
    """Benchmark workload bound to a cached venue engine."""
    engine = engine_for(venue_name)
    rng = random.Random(seed)
    facilities = random_facility_sets(
        engine.venue,
        fe or default_fe(venue_name),
        fn or default_fn(venue_name),
        rng,
    )
    if distribution == "uniform":
        cs = uniform_clients(engine.venue, clients, rng)
    else:
        cs = normal_clients(engine.venue, clients, sigma, rng)
    return engine, cs, facilities
