"""Figure 5: effect of client size |C|, real setting (Melbourne Central).

The paper varies |C| over {1k..20k} for five facility categories; here
each (category, |C|) point is one pytest-benchmark case at benchmark
scale.  Full series: ``python -m repro bench --experiment fig5``.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets import QUERY_CATEGORIES, real_setting_facilities
from repro.datasets.workloads import uniform_clients

from conftest import engine_for

CLIENT_POINTS = (100, 500, 1000)


def _workload(category: str, clients: int):
    engine = engine_for("MC")
    facilities = real_setting_facilities(engine.venue, category)
    rng = random.Random(clients)
    return engine, uniform_clients(engine.venue, clients, rng), facilities


@pytest.mark.parametrize("category", QUERY_CATEGORIES)
@pytest.mark.parametrize("algorithm", ["efficient", "baseline"])
def test_fig5_default_clients(benchmark, category, algorithm):
    engine, clients, facilities = _workload(category, 500)
    result = benchmark(
        lambda: engine.query(
            clients, facilities, algorithm=algorithm, cold=True
        )
    )
    benchmark.extra_info["figure"] = "5"
    benchmark.extra_info["category"] = category
    benchmark.extra_info["objective"] = result.objective


@pytest.mark.parametrize("clients", CLIENT_POINTS)
@pytest.mark.parametrize("algorithm", ["efficient", "baseline"])
def test_fig5_client_sweep(benchmark, clients, algorithm):
    engine, client_list, facilities = _workload(QUERY_CATEGORIES[0],
                                                clients)
    result = benchmark(
        lambda: engine.query(
            client_list, facilities, algorithm=algorithm, cold=True
        )
    )
    benchmark.extra_info["figure"] = "5"
    benchmark.extra_info["clients"] = clients
    benchmark.extra_info["objective"] = result.objective
