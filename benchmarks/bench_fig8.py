"""Figure 8: peak memory vs |C|, |Fe|, |Fn| (synthetic).

pytest-benchmark measures time; the peak traced memory of each
configuration is measured once per case and attached as
``extra_info["peak_memory_mb"]`` so the stored benchmark JSON carries
the figure's actual metric.  Full series:
``python -m repro bench --experiment fig8``.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.datasets import VENUE_NAMES

from conftest import synthetic_workload

CLIENT_POINTS = (100, 1000)


def _measure_peak(engine, clients, facilities, algorithm):
    tracemalloc.start()
    try:
        engine.query(clients, facilities, algorithm=algorithm, cold=True)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)


@pytest.mark.parametrize("venue", VENUE_NAMES)
@pytest.mark.parametrize("clients", CLIENT_POINTS)
@pytest.mark.parametrize("algorithm", ["efficient", "baseline"])
def test_fig8a_memory_vs_clients(benchmark, venue, clients, algorithm):
    engine, client_list, facilities = synthetic_workload(
        venue, clients=clients, seed=80
    )
    peak_mb = _measure_peak(engine, client_list, facilities, algorithm)
    benchmark(
        lambda: engine.query(
            client_list, facilities, algorithm=algorithm, cold=True
        )
    )
    benchmark.extra_info["figure"] = "8a"
    benchmark.extra_info["venue"] = venue
    benchmark.extra_info["clients"] = clients
    benchmark.extra_info["peak_memory_mb"] = round(peak_mb, 3)


@pytest.mark.parametrize("venue", VENUE_NAMES)
@pytest.mark.parametrize("algorithm", ["efficient", "baseline"])
def test_fig8bc_memory_at_defaults(benchmark, venue, algorithm):
    engine, clients, facilities = synthetic_workload(venue, seed=81)
    peak_mb = _measure_peak(engine, clients, facilities, algorithm)
    benchmark(
        lambda: engine.query(
            clients, facilities, algorithm=algorithm, cold=True
        )
    )
    benchmark.extra_info["figure"] = "8b/8c"
    benchmark.extra_info["venue"] = venue
    benchmark.extra_info["peak_memory_mb"] = round(peak_mb, 3)
