"""Extensions E1-E2 (paper Section 7): MinDist and MaxSum variants.

Benchmarks the efficient extension algorithms and the brute-force
oracle on the same workloads (smaller |C| — the oracle computes all
client/candidate distances).
"""

from __future__ import annotations

import pytest

from conftest import synthetic_workload

EXT_CLIENTS = 200


@pytest.mark.parametrize("objective", ["mindist", "maxsum"])
@pytest.mark.parametrize("algorithm", ["efficient", "bruteforce"])
def test_extension_objectives(benchmark, objective, algorithm):
    engine, clients, facilities = synthetic_workload(
        "MC", clients=EXT_CLIENTS, seed=91
    )
    result = benchmark(
        lambda: engine.query(
            clients,
            facilities,
            objective=objective,
            algorithm=algorithm,
            cold=True,
        )
    )
    benchmark.extra_info["objective_kind"] = objective
    benchmark.extra_info["objective_value"] = result.objective


@pytest.mark.parametrize("objective", ["minmax", "mindist", "maxsum"])
def test_efficient_across_objectives(benchmark, objective):
    engine, clients, facilities = synthetic_workload(
        "CPH", clients=EXT_CLIENTS, seed=92
    )
    result = benchmark(
        lambda: engine.query(
            clients, facilities, objective=objective, cold=True
        )
    )
    benchmark.extra_info["objective_kind"] = objective
    benchmark.extra_info["objective_value"] = result.objective
