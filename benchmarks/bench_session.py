"""Cold vs warm batched execution through :class:`QuerySession`.

Measures what the session layer's cross-query distance caches buy on a
batch of independent IFLS queries against one venue:

* **cold** — every query gets its own fresh memoising distance engine
  (the per-query behaviour before sessions existed);
* **warm** — one :class:`QuerySession` answers the whole batch, keeping
  the partition-pair, door-pair, and per-(partition, node) ``iMinD``
  caches warm.

Answers must be bit-identical — distances depend only on the venue —
so the benchmark asserts equality and fewer warm distance
computations besides timing.  Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_session.py
"""

from __future__ import annotations

import random


from repro.bench.reporting import format_cache_effectiveness
from repro.core.efficient import efficient_minmax
from repro.core.problem import IFLSProblem
from repro.core.session import BatchQuery
from repro.datasets.workloads import (
    random_facility_sets,
    uniform_clients,
)
from repro.index.distance import VIPDistanceEngine

from conftest import engine_for

#: Acceptance batch: at least 50 queries (see ISSUE tracking).
BATCH_QUERIES = 50
BATCH_CLIENTS = 120
VENUE = "MC"


def _batch(engine, queries: int = BATCH_QUERIES, seed: int = 0):
    batch = []
    for i in range(queries):
        rng = random.Random(seed + i)
        facilities = random_facility_sets(engine.venue, 30, 60, rng)
        clients = uniform_clients(engine.venue, BATCH_CLIENTS, rng)
        batch.append(BatchQuery(clients, facilities))
    return batch


def run_cold(engine, batch):
    """Answer each query on a fresh memoising engine; return
    ``(answers, totals)`` where totals sum the per-query counters."""
    answers = []
    totals: dict = {}
    for query in batch:
        distances = VIPDistanceEngine(engine.tree, memoize=True)
        problem = IFLSProblem(
            distances, list(query.clients), query.facilities
        )
        result = efficient_minmax(problem)
        answers.append((result.answer, result.objective))
        for key, value in distances.stats.snapshot().items():
            totals[key] = totals.get(key, 0) + value
    return answers, totals


def run_warm(engine, batch, max_cache_entries=None):
    """Answer the whole batch through one warm session."""
    session = engine.session(max_cache_entries=max_cache_entries)
    results = session.run(batch)
    answers = [(r.answer, r.objective) for r in results]
    return answers, session.report()


def _compare(engine, batch):
    cold_answers, cold_totals = run_cold(engine, batch)
    warm_answers, report = run_warm(engine, batch)
    assert warm_answers == cold_answers, (
        "warm session changed query answers"
    )
    assert (
        report.totals["distance_computations"]
        < cold_totals["distance_computations"]
    ), "warm session did not save distance computations"
    return cold_totals, report


def test_session_batch_warm_beats_cold(benchmark):
    """Benchmark the warm batch; assert identical answers + savings."""
    engine = engine_for(VENUE)
    batch = _batch(engine)
    cold_totals, report = _compare(engine, batch)

    def warm():
        answers, rep = run_warm(engine, batch)
        return rep

    result = benchmark.pedantic(warm, rounds=3, iterations=1)
    benchmark.extra_info["queries"] = len(batch)
    benchmark.extra_info["cold_computed"] = (
        cold_totals["distance_computations"]
    )
    benchmark.extra_info["warm_computed"] = (
        result.totals["distance_computations"]
    )
    benchmark.extra_info["warm_hit_rate"] = f"{result.cache_hit_rate:.0%}"


def test_session_bounded_cache_still_correct(benchmark):
    """A tight eviction budget trades hits for memory, never answers."""
    engine = engine_for(VENUE)
    batch = _batch(engine, queries=10, seed=77)
    cold_answers, _ = run_cold(engine, batch)

    def bounded():
        return run_warm(engine, batch, max_cache_entries=2_000)

    answers, report = benchmark.pedantic(bounded, rounds=3, iterations=1)
    assert answers == cold_answers
    assert report.cache_entries <= 2_000
    assert report.totals["cache_evictions"] > 0
    benchmark.extra_info["evictions"] = report.totals["cache_evictions"]


def main() -> int:
    engine = engine_for(VENUE)
    batch = _batch(engine)
    cold_totals, report = _compare(engine, batch)
    print(
        format_cache_effectiveness(
            [
                ("cold (per-query)", cold_totals),
                ("warm (session)", report.totals),
            ],
            title=(
                f"{VENUE}: {len(batch)} queries x {BATCH_CLIENTS} "
                f"clients, cold vs warm"
            ),
        )
    )
    saved = (
        cold_totals["distance_computations"]
        - report.totals["distance_computations"]
    )
    print(
        f"\nanswers identical: yes; distance computations saved: "
        f"{saved} "
        f"({saved / cold_totals['distance_computations']:.0%} of cold)"
    )
    print(f"warm cache: {report.cache_entries} entries "
          f"(~{report.cache_bytes / 1024:.0f} KiB)")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
