"""Wall-clock scaling of the sharded parallel batch executor.

One warm batch against one venue, answered through
:func:`repro.core.parallel.run_batch_parallel` at pool sizes 1/2/4/8:

* answers must be identical at every worker count (sharding only
  redistributes cache warmth, never changes a distance);
* the merged per-worker counters must satisfy the ``DistanceStats``
  ledger invariants after summation;
* the timing series shows how close the executor gets to linear
  scaling on the host — bounded by core count, so a single-core CI
  runner shows ~1x plus sharding overhead while a 4-core laptop
  approaches 4x.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import random

import pytest

from repro.core.parallel import run_batch_parallel
from repro.core.session import BatchQuery
from repro.core.stats import distance_invariant_violations
from repro.datasets.workloads import (
    random_facility_sets,
    uniform_clients,
)

from conftest import engine_for

BATCH_QUERIES = 24
BATCH_CLIENTS = 150
VENUE = "MC"
WORKER_COUNTS = (1, 2, 4, 8)

_SERIAL_ANSWERS = {}


def _batch(engine, queries: int = BATCH_QUERIES, seed: int = 0):
    batch = []
    for i in range(queries):
        rng = random.Random(seed + i)
        facilities = random_facility_sets(engine.venue, 30, 60, rng)
        clients = uniform_clients(engine.venue, BATCH_CLIENTS, rng)
        batch.append(BatchQuery(clients, facilities))
    return batch


def _serial_answers(engine, batch):
    """Reference answers, computed once per session."""
    key = (VENUE, len(batch))
    if key not in _SERIAL_ANSWERS:
        _SERIAL_ANSWERS[key] = run_batch_parallel(engine, batch, 1).answers
    return _SERIAL_ANSWERS[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_scaling(benchmark, workers):
    """Benchmark one pool size; assert answers + merged invariants."""
    engine = engine_for(VENUE)
    batch = _batch(engine)
    reference = _serial_answers(engine, batch)

    def sharded():
        return run_batch_parallel(engine, batch, workers)

    outcome = benchmark.pedantic(sharded, rounds=2, iterations=1)
    assert outcome.answers == reference
    assert distance_invariant_violations(outcome.report.totals) == []
    assert outcome.query_stats.queue_pops <= outcome.query_stats.queue_pushes
    benchmark.extra_info["queries"] = len(batch)
    benchmark.extra_info["workers"] = outcome.workers
    benchmark.extra_info["start_method"] = outcome.start_method


def main() -> int:
    engine = engine_for(VENUE)
    batch = _batch(engine)
    print(
        f"{VENUE}: {len(batch)} queries x {BATCH_CLIENTS} clients, "
        f"sharded batch execution"
    )
    print(f"{'workers':>8} {'time(s)':>10} {'speedup':>8} "
          f"{'computed':>10} {'hits':>10}")
    reference = None
    serial_time = None
    for workers in WORKER_COUNTS:
        outcome = run_batch_parallel(engine, batch, workers)
        if reference is None:
            reference = outcome.answers
            serial_time = outcome.elapsed_seconds
        elif outcome.answers != reference:
            print(f"ANSWER MISMATCH at workers={workers}")
            return 1
        violations = distance_invariant_violations(outcome.report.totals)
        if violations:
            print(f"MERGED-COUNTER DRIFT at workers={workers}: "
                  + "; ".join(violations))
            return 1
        totals = outcome.report.totals
        hits = (
            totals["d2d_cache_hits"]
            + totals["imind_cache_hits"]
            + totals["imind_node_cache_hits"]
        )
        print(
            f"{workers:>8} {outcome.elapsed_seconds:>10.3f} "
            f"{serial_time / outcome.elapsed_seconds:>7.2f}x "
            f"{totals['distance_computations']:>10} {hits:>10}"
        )
    print("\nanswers identical at every worker count; "
          "merged counters pass all invariants")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
