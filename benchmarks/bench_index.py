"""Index microbenchmarks: VIP-tree construction and distance queries.

Not a paper figure, but the substrate costs every figure builds on:
offline index construction per venue and the hot distance primitives.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro import VIPTree
from repro.datasets import venue_by_name
from repro.datasets.workloads import uniform_clients
from repro.index.distance import VIPDistanceEngine

from conftest import engine_for


@pytest.mark.parametrize("venue_name", ["MC", "CPH"])
def test_index_construction(benchmark, venue_name):
    venue = venue_by_name(venue_name)
    tree = benchmark(lambda: VIPTree(venue))
    benchmark.extra_info["nodes"] = tree.node_count
    benchmark.extra_info["matrix_entries"] = tree.matrix_entry_count()


@pytest.mark.parametrize("venue_name", ["MC", "MZB"])
def test_door_to_door_lookups(benchmark, venue_name):
    engine = engine_for(venue_name)
    doors = sorted(engine.venue.door_ids())
    pairs = list(itertools.islice(
        itertools.combinations(doors[:: max(1, len(doors) // 40)], 2), 200
    ))

    def run():
        total = 0.0
        for a, b in pairs:
            total += engine.tree.door_to_door(a, b)
        return total

    benchmark(run)
    benchmark.extra_info["pairs"] = len(pairs)


@pytest.mark.parametrize("memoize", [True, False],
                         ids=["memoized", "cold"])
def test_idist_throughput(benchmark, memoize):
    engine = engine_for("MC")
    clients = uniform_clients(engine.venue, 50, random.Random(3))
    targets = sorted(engine.venue.partition_ids())[::10]

    def run():
        distances = VIPDistanceEngine(engine.tree, memoize=memoize)
        total = 0.0
        for client in clients:
            for target in targets:
                total += distances.idist(client, target)
        return total

    benchmark(run)
    benchmark.extra_info["calls"] = len(clients) * len(targets)
