"""Figure 6: effect of the normal distribution's sigma.

Real setting (MC) plus synthetic setting on all four venues at a
benchmark-scale client count.  Full series:
``python -m repro bench --experiment fig6``.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.experiments import SIGMAS
from repro.datasets import QUERY_CATEGORIES, VENUE_NAMES
from repro.datasets import real_setting_facilities
from repro.datasets.workloads import normal_clients

from conftest import BENCH_CLIENTS, engine_for, synthetic_workload


@pytest.mark.parametrize("sigma", SIGMAS)
@pytest.mark.parametrize("algorithm", ["efficient", "baseline"])
def test_fig6_real_sigma_sweep(benchmark, sigma, algorithm):
    engine = engine_for("MC")
    facilities = real_setting_facilities(
        engine.venue, QUERY_CATEGORIES[0]
    )
    clients = normal_clients(
        engine.venue, BENCH_CLIENTS, sigma, random.Random(int(sigma * 8))
    )
    result = benchmark(
        lambda: engine.query(
            clients, facilities, algorithm=algorithm, cold=True
        )
    )
    benchmark.extra_info["figure"] = "6(i)"
    benchmark.extra_info["sigma"] = sigma
    benchmark.extra_info["objective"] = result.objective


@pytest.mark.parametrize("venue", VENUE_NAMES)
@pytest.mark.parametrize("algorithm", ["efficient", "baseline"])
def test_fig6_synthetic_default_sigma(benchmark, venue, algorithm):
    engine, clients, facilities = synthetic_workload(
        venue, distribution="normal", sigma=0.5, seed=6
    )
    result = benchmark(
        lambda: engine.query(
            clients, facilities, algorithm=algorithm, cold=True
        )
    )
    benchmark.extra_info["figure"] = "6(ii-v)"
    benchmark.extra_info["venue"] = venue
    benchmark.extra_info["objective"] = result.objective
