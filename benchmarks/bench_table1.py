"""Tables 1 and 2: regenerated, printed once, rendering benchmarked.

These are static tables (taxonomy and parameter settings), covered so
the benchmark suite spans every table *and* figure of the paper.
"""

from __future__ import annotations

from repro.bench.tables import format_table1, format_table2, table1_rows

_printed = set()


def _print_once(key: str, text: str) -> None:
    if key not in _printed:
        _printed.add(key)
        print("\n" + text)


def test_table1_render(benchmark):
    text = benchmark(format_table1)
    _print_once("table1", text)
    assert len(table1_rows()) == 13


def test_table2_render(benchmark):
    text = benchmark(format_table2)
    _print_once("table2", text)
    assert "MZB" in text
