"""Unit tests for the procedural building generator."""

import pytest

from repro import PartitionKind, VenueError
from repro.datasets import CHAIN, STACK, BuildingSpec, generate_building


def spec(**overrides):
    base = dict(
        name="t",
        levels=2,
        corridors_per_level=1,
        rooms=12,
        layout=STACK,
        segments_per_corridor=2,
        vertical_links_per_gap=1,
        exterior_doors=1,
        width=60.0,
    )
    base.update(overrides)
    return BuildingSpec(**base)


class TestSpecValidation:
    def test_unknown_layout(self):
        with pytest.raises(VenueError):
            spec(layout="spiral")

    def test_chain_must_be_single_level(self):
        with pytest.raises(VenueError):
            spec(layout=CHAIN, levels=2, corridors_per_level=2,
                 segments_per_corridor=1, corridor_links_per_level=1)

    def test_too_few_rooms(self):
        with pytest.raises(VenueError):
            spec(rooms=1)

    def test_too_many_double_doors(self):
        with pytest.raises(VenueError):
            spec(double_door_rooms=13)

    def test_multi_corridor_needs_links(self):
        with pytest.raises(VenueError):
            spec(corridors_per_level=2, corridor_links_per_level=0)

    def test_expected_counts_formulas(self):
        s = spec()
        assert s.expected_partitions == 12 + 2 * 1 * 2
        # rooms + segment links (2 per level... 1 per level here) +
        # vertical + exterior
        assert s.expected_doors == 12 + 0 + 2 * 1 + 1 + 1


class TestGeneratedStructure:
    def test_counts_match_spec(self):
        s = spec()
        venue = generate_building(s)
        assert venue.partition_count == s.expected_partitions
        assert venue.door_count == s.expected_doors

    def test_venue_is_connected_and_valid(self):
        venue = generate_building(spec())
        venue.validate()

    def test_levels_present(self):
        venue = generate_building(spec(levels=3))
        assert venue.levels == (0, 1, 2)

    def test_room_kinds(self):
        venue = generate_building(spec())
        kinds = {p.kind for p in venue.partitions()}
        assert kinds == {PartitionKind.ROOM, PartitionKind.CORRIDOR}

    def test_chain_layout_halls(self):
        s = BuildingSpec(
            name="airport",
            levels=1,
            corridors_per_level=3,
            rooms=12,
            layout=CHAIN,
            corridor_links_per_level=2,
            double_door_rooms=4,
            exterior_doors=3,
            width=300.0,
        )
        venue = generate_building(s)
        venue.validate()
        halls = [
            p for p in venue.partitions()
            if p.kind is PartitionKind.HALL
        ]
        assert len(halls) == 3
        assert venue.partition_count == s.expected_partitions
        assert venue.door_count == s.expected_doors

    def test_double_door_rooms_have_two_doors(self):
        s = spec(double_door_rooms=3)
        venue = generate_building(s)
        two_door_rooms = [
            p
            for p in venue.partitions()
            if p.kind is PartitionKind.ROOM
            and len(venue.doors_of(p.partition_id)) == 2
        ]
        assert len(two_door_rooms) == 3

    def test_determinism(self):
        a = generate_building(spec())
        b = generate_building(spec())
        assert [p.rect for p in a.partitions()] == [
            p.rect for p in b.partitions()
        ]

    def test_segmented_corridors_are_chained(self):
        venue = generate_building(spec(segments_per_corridor=3, rooms=12))
        corridors = [
            p.partition_id
            for p in venue.partitions()
            if p.kind is PartitionKind.CORRIDOR and p.level == 0
        ]
        assert len(corridors) == 3
        # Consecutive segments share a door.
        assert venue.connecting_doors(corridors[0], corridors[1])
        assert venue.connecting_doors(corridors[1], corridors[2])
        assert not venue.connecting_doors(corridors[0], corridors[2])


class TestGridVenue:
    def test_counts(self):
        from repro.datasets import grid_venue

        venue = grid_venue(3, 4)
        assert venue.partition_count == 12
        # Doors: horizontal 3*(4-1)=9, vertical (3-1)*4=8.
        assert venue.door_count == 17
        venue.validate()

    def test_manhattan_like_distances(self):
        from repro import DistanceService, Point
        from repro.datasets import grid_venue

        venue = grid_venue(1, 3, cell=4.0)
        svc = DistanceService(venue)
        # Straight line through door midpoints of a 1x3 strip.
        d = svc.point_to_point(Point(1, 2, 0), 0, Point(11, 2, 0), 2)
        assert d == pytest.approx(10.0)

    def test_degenerate_grids_rejected(self):
        from repro.datasets import grid_venue

        with pytest.raises(VenueError):
            grid_venue(0, 5)
        with pytest.raises(VenueError):
            grid_venue(1, 1)
