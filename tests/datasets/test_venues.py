"""The four paper venues must match the published statistics exactly."""

import pytest

from repro.datasets import (
    EXPECTED_STATS,
    VENUE_NAMES,
    room_partitions,
    small_office,
    venue_by_name,
)


@pytest.mark.parametrize("name", VENUE_NAMES)
def test_paper_statistics(name):
    venue = venue_by_name(name)
    partitions, doors = EXPECTED_STATS[name]
    assert venue.partition_count == partitions
    assert venue.door_count == doors


@pytest.mark.parametrize("name", VENUE_NAMES)
def test_venues_validate(name):
    venue_by_name(name).validate()


def test_levels_match_paper():
    assert len(venue_by_name("MC").levels) == 7
    assert len(venue_by_name("CH").levels) == 4
    assert len(venue_by_name("CPH").levels) == 1
    assert len(venue_by_name("MZB").levels) == 16


def test_cph_footprint_is_2000_by_600():
    venue = venue_by_name("CPH")
    rect = venue.bounding_rect()
    assert rect.width == pytest.approx(2000.0)
    assert rect.height <= 600.0


def test_mc_has_291_category_eligible_rooms():
    assert len(room_partitions(venue_by_name("MC"))) == 291


def test_unknown_venue_raises():
    with pytest.raises(KeyError):
        venue_by_name("LOUVRE")


def test_lowercase_names_accepted():
    assert venue_by_name("cph").partition_count == 76


def test_small_office_shape():
    venue = small_office(levels=2, rooms=24)
    assert venue.partition_count == 26
    venue.validate()
