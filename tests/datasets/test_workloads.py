"""Unit and property tests for workload generation."""

import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryError
from repro.datasets import (
    normal_clients,
    random_facility_sets,
    small_office,
    uniform_clients,
    workload,
)


@pytest.fixture(scope="module")
def venue():
    return small_office(levels=3, rooms=36)


class TestUniformClients:
    def test_count_and_ids(self, venue):
        clients = uniform_clients(venue, 50, random.Random(1))
        assert len(clients) == 50
        assert [c.client_id for c in clients] == list(range(50))

    def test_clients_inside_their_partition(self, venue):
        for client in uniform_clients(venue, 100, random.Random(2)):
            partition = venue.partition(client.partition_id)
            assert partition.contains(client.location)

    def test_clients_only_in_rooms_and_halls(self, venue):
        for client in uniform_clients(venue, 100, random.Random(3)):
            kind = venue.partition(client.partition_id).kind.value
            assert kind in ("room", "hall")

    def test_start_id_offset(self, venue):
        clients = uniform_clients(venue, 5, random.Random(4), start_id=100)
        assert [c.client_id for c in clients] == [100, 101, 102, 103, 104]

    def test_deterministic_with_seeded_rng(self, venue):
        a = uniform_clients(venue, 20, random.Random(7))
        b = uniform_clients(venue, 20, random.Random(7))
        assert [c.location for c in a] == [c.location for c in b]


class TestNormalClients:
    def test_count(self, venue):
        clients = normal_clients(venue, 40, 0.5, random.Random(5))
        assert len(clients) == 40

    def test_clients_inside_their_partition(self, venue):
        for client in normal_clients(venue, 80, 0.25, random.Random(6)):
            partition = venue.partition(client.partition_id)
            assert partition.contains(client.location)

    def test_smaller_sigma_concentrates_clients(self, venue):
        centre = venue.bounding_rect().center
        rng = random.Random(8)
        tight = normal_clients(venue, 200, 0.125, rng)
        loose = normal_clients(venue, 200, 2.0, rng)

        def mean_distance(clients):
            return statistics.fmean(
                c.location.planar_distance(centre) for c in clients
            )

        assert mean_distance(tight) < mean_distance(loose)

    def test_sigma_must_be_positive(self, venue):
        with pytest.raises(QueryError):
            normal_clients(venue, 5, 0.0, random.Random(9))

    @settings(max_examples=10, deadline=None)
    @given(sigma=st.floats(0.05, 4.0), count=st.integers(1, 50))
    def test_any_sigma_yields_valid_clients(self, venue, sigma, count):
        for client in normal_clients(venue, count, sigma,
                                     random.Random(11)):
            assert venue.partition(client.partition_id).contains(
                client.location
            )


class TestFacilitySets:
    def test_sizes_and_disjointness(self, venue):
        fs = random_facility_sets(venue, 5, 9, random.Random(10))
        assert len(fs.existing) == 5
        assert len(fs.candidates) == 9
        assert not fs.existing & fs.candidates

    def test_only_rooms_eligible(self, venue):
        fs = random_facility_sets(venue, 5, 9, random.Random(11))
        for pid in fs.all_facilities:
            assert venue.partition(pid).kind.value == "room"

    def test_explicit_eligible_pool(self, venue):
        pool = sorted(
            p.partition_id for p in venue.partitions()
            if p.kind.value == "room"
        )[:6]
        fs = random_facility_sets(
            venue, 2, 3, random.Random(12), eligible=pool
        )
        assert fs.all_facilities <= set(pool)

    def test_oversized_request_rejected(self, venue):
        with pytest.raises(QueryError):
            random_facility_sets(venue, 500, 500, random.Random(13))


class TestWorkloadFacade:
    def test_uniform_workload(self, venue):
        clients, fs = workload(venue, 30, 4, 6, seed=1)
        assert len(clients) == 30
        assert len(fs.existing) == 4
        assert len(fs.candidates) == 6

    def test_normal_workload(self, venue):
        clients, fs = workload(
            venue, 30, 4, 6, seed=1, distribution="normal", sigma=0.5
        )
        assert len(clients) == 30

    def test_unknown_distribution(self, venue):
        with pytest.raises(QueryError):
            workload(venue, 10, 2, 2, distribution="pareto")

    def test_same_seed_same_workload(self, venue):
        a_clients, a_fs = workload(venue, 20, 3, 4, seed=9)
        b_clients, b_fs = workload(venue, 20, 3, 4, seed=9)
        assert a_fs.existing == b_fs.existing
        assert [c.location for c in a_clients] == [
            c.location for c in b_clients
        ]
