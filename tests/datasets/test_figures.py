"""Unit tests for the Figure-1 venue factory."""

from repro.datasets import figure1_venue
from repro.datasets.figures import CANDIDATE_NAMES, EXISTING_NAMES


def test_structure_counts(figure1):
    venue, existing, candidates, clients, names = figure1
    assert venue.partition_count == 22
    assert len(existing) == 4
    assert len(candidates) == 13
    assert len(clients) == 60


def test_names_cover_all_labels(figure1):
    _, _, _, _, names = figure1
    for i in range(1, 23):
        assert f"p{i}" in names
    for label in EXISTING_NAMES + CANDIDATE_NAMES:
        assert label in names


def test_corridor_doors_d4_d7(figure1):
    venue, _, _, _, names = figure1
    assert venue.connecting_doors(names["p4"], names["p7"])
    assert venue.connecting_doors(names["p7"], names["p22"])
    assert not venue.connecting_doors(names["p4"], names["p22"])


def test_venue_validates(figure1):
    figure1[0].validate()


def test_clients_are_inside_their_partitions(figure1):
    venue, _, _, clients, _ = figure1
    for client in clients:
        assert venue.partition(client.partition_id).contains(
            client.location
        )


def test_determinism():
    a = figure1_venue()
    b = figure1_venue()
    assert [c.location for c in a[3]] == [c.location for c in b[3]]


def test_custom_client_count():
    venue, existing, _, clients, _ = figure1_venue(client_count=10)
    assert len(clients) == 10
    inside = [c for c in clients if c.partition_id in existing]
    assert len(inside) == 6
