"""Real-setting category assignment must reproduce the paper's sizes."""

import pytest

from repro import QueryError
from repro.datasets import (
    CATEGORY_SIZES,
    QUERY_CATEGORIES,
    assign_categories,
    melbourne_central,
    real_setting_facilities,
    small_office,
)

#: Paper Table 2 real-setting (|Fe|, |Fn|) pairs.
PAPER_PAIRS = {
    "fashion & accessories": (101, 190),
    "dining & entertainment": (54, 237),
    "health & beauty": (39, 252),
    "fresh food": (19, 272),
    "banks & services": (14, 277),
}


@pytest.fixture(scope="module")
def mc():
    return melbourne_central()


def test_category_sizes_sum_to_291():
    assert sum(size for _n, size in CATEGORY_SIZES) == 291


def test_assignment_is_partition(mc):
    assignment = assign_categories(mc)
    seen = set()
    for name, size in CATEGORY_SIZES:
        pids = assignment[name]
        assert len(pids) == size
        assert not (seen & set(pids))
        seen.update(pids)
    assert len(seen) == 291


def test_assignment_is_deterministic(mc):
    assert assign_categories(mc) == assign_categories(mc)


@pytest.mark.parametrize("category", QUERY_CATEGORIES)
def test_paper_fe_fn_pairs(mc, category):
    fs = real_setting_facilities(mc, category)
    fe, fn = PAPER_PAIRS[category]
    assert len(fs.existing) == fe
    assert len(fs.candidates) == fn
    assert not fs.existing & fs.candidates


def test_unknown_category_raises(mc):
    with pytest.raises(QueryError):
        real_setting_facilities(mc, "pet shops")


def test_small_venue_rejected():
    with pytest.raises(QueryError):
        assign_categories(small_office())
