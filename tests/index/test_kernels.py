"""Dense-array kernel pack: packing, blocks, group state, gating.

Every value-producing kernel is checked for *bit-identity* (``==``,
not ``approx``) against the scalar resolution it replaces — the pack
reads the same matrices and performs the same additions in the same
order, so exact equality is the contract, not a lucky outcome.
"""

import pickle

import pytest

np = pytest.importorskip("numpy")

from repro import VIPTree  # noqa: E402
from repro.datasets import small_office  # noqa: E402
from repro.errors import IndexError_, QueryError  # noqa: E402
from repro.index import kernels  # noqa: E402
from repro.index.distance import VIPDistanceEngine  # noqa: E402
from tests.conftest import make_clients  # noqa: E402


@pytest.fixture(scope="module")
def setup():
    venue = small_office(levels=2, rooms=16)
    tree = VIPTree(venue)
    return venue, tree


def _clients_by_partition(venue, count, seed):
    groups = {}
    for client in make_clients(venue, count, seed=seed):
        groups.setdefault(client.partition_id, []).append(client)
    return groups


class TestPackLifecycle:
    def test_lazy_shared_and_invalidated(self, setup):
        _, tree = setup
        pack = tree.kernels()
        assert tree.kernels() is pack
        tree.invalidate_kernels()
        rebuilt = tree.kernels()
        assert rebuilt is not pack
        assert np.array_equal(rebuilt.R, pack.R)

    def test_pack_dropped_from_pickles(self, setup):
        _, tree = setup
        tree.kernels()
        clone = pickle.loads(pickle.dumps(tree))
        assert clone._kernel_pack is None
        # ... and is lazily rebuilt on the restored tree.
        assert clone.kernels().door_col == tree.kernels().door_col

    def test_engines_share_the_tree_pack(self, setup):
        _, tree = setup
        first = VIPDistanceEngine(tree, use_kernels=True)
        second = VIPDistanceEngine(tree, use_kernels=True)
        assert first.kernel_pack is second.kernel_pack

    def test_diagonal_is_zero(self, setup):
        _, tree = setup
        pack = tree.kernels()
        for door, row in pack.access_row.items():
            assert pack.R[row, pack.door_col[door]] == 0.0


class TestD2DBlock:
    def test_matches_tree_over_all_pairs(self, setup):
        venue, tree = setup
        pack = tree.kernels()
        doors = sorted(venue.door_ids())
        block = pack.d2d_block(doors, doors)
        for i, a in enumerate(doors):
            for j, b in enumerate(doors):
                assert block[i, j] == tree.door_to_door(a, b), (a, b)

    def test_unknown_door_raises(self, setup):
        venue, tree = setup
        pack = tree.kernels()
        doors = sorted(venue.door_ids())[:2]
        with pytest.raises(IndexError_, match="not indexed"):
            pack.d2d_block([10**9], doors)

    def test_imind_node_matches_scalar(self, setup):
        venue, tree = setup
        pack = tree.kernels()
        scalar = VIPDistanceEngine(tree, memoize=False, use_kernels=False)
        pids = sorted(venue.partition_ids())[:6]
        for pid in pids:
            for node in tree.nodes:
                if tree.covers(node, pid):
                    continue
                assert pack.imind_node(pid, node) == scalar.imind_node(
                    pid, node
                ), (pid, node.node_id)


class TestEngineBatches:
    def test_idist_many_matches_scalar(self, setup):
        venue, tree = setup
        engine = VIPDistanceEngine(tree, use_kernels=True)
        scalar = VIPDistanceEngine(tree, use_kernels=False)
        targets = sorted(venue.partition_ids())[:8]
        for _, group in sorted(_clients_by_partition(venue, 24, 31).items()):
            for target in targets:
                got = engine.idist_many(group, target)
                want = [scalar.idist(c, target) for c in group]
                assert list(got) == want

    def test_idist_many_counters_telescope(self, setup):
        venue, tree = setup
        engine = VIPDistanceEngine(tree, use_kernels=True)
        groups = _clients_by_partition(venue, 24, 32)
        targets = sorted(venue.partition_ids())[:6]
        for _, group in sorted(groups.items()):
            for target in targets:
                engine.idist_many(group, target)
        s = engine.stats
        assert s.idist_calls == sum(
            len(g) for g in groups.values()
        ) * len(targets)
        assert s.kernel_batches > 0
        assert (
            s.imind_cache_hits
            + s.imind_node_cache_hits
            + s.distance_computations
            == s.imind_calls + s.imind_node_calls
        )

    def test_idist_many_empty_and_mixed(self, setup):
        venue, tree = setup
        engine = VIPDistanceEngine(tree, use_kernels=True)
        target = sorted(venue.partition_ids())[0]
        assert len(engine.idist_many([], target)) == 0
        groups = _clients_by_partition(venue, 30, 33)
        assert len(groups) > 1, "seeded clients span several partitions"
        (_, first), (_, second) = sorted(groups.items())[:2]
        with pytest.raises(QueryError, match="one partition"):
            engine.idist_many([first[0], second[0]], target)

    def test_door_to_door_many_matches_and_counts(self, setup):
        venue, tree = setup
        engine = VIPDistanceEngine(tree, use_kernels=True)
        doors = sorted(venue.door_ids())[:6]
        block = engine.door_to_door_many(doors[:3], doors[3:])
        for i, a in enumerate(doors[:3]):
            for j, b in enumerate(doors[3:]):
                assert block[i, j] == tree.door_to_door(a, b)
        assert engine.stats.d2d_lookups == 9
        assert engine.stats.kernel_batches == 1

    def test_imind_node_many_matches_per_node_calls(self, setup):
        venue, tree = setup
        batch = VIPDistanceEngine(tree, use_kernels=True)
        single = VIPDistanceEngine(tree, use_kernels=True)
        pid = sorted(venue.partition_ids())[0]
        nodes = list(tree.nodes)
        got = batch.imind_node_many(pid, nodes)
        want = [single.imind_node(pid, node) for node in nodes]
        assert list(got) == want
        assert (
            batch.stats.imind_node_calls == single.stats.imind_node_calls
        )

    def test_batch_entry_points_require_kernels(self, setup):
        venue, tree = setup
        scalar = VIPDistanceEngine(tree, use_kernels=False)
        doors = sorted(venue.door_ids())[:2]
        with pytest.raises(QueryError, match="use_kernels=True"):
            scalar.door_to_door_many(doors, doors)
        assert scalar.kernel_pack is None


class TestGroupArrays:
    def _arrays(self, setup, seed=41):
        venue, tree = setup
        engine = VIPDistanceEngine(tree, use_kernels=True)
        groups = _clients_by_partition(venue, 40, seed)
        pid, clients = max(
            groups.items(), key=lambda item: len(item[1])
        )
        return engine, pid, clients, engine.group_arrays(clients, pid)

    def test_offsets_match_scalar_intra_distances(self, setup):
        venue, _ = setup
        engine, pid, clients, arrays = self._arrays(setup)
        partition = venue.partition(pid)
        for i, client in enumerate(clients):
            for j, door in enumerate(arrays.exit_doors):
                want = partition.intra_distance(
                    client.location, engine._door_locations[door]
                )
                assert arrays.offsets[i, j] == want

    def test_mask_prune_and_active_rows(self, setup):
        _, _, clients, arrays = self._arrays(setup)
        assert list(arrays.active_rows()) == list(range(len(clients)))
        arrays.mark_pruned(clients[0].client_id)
        arrays.mark_pruned(10**9)  # unknown ids are ignored
        assert list(arrays.active_rows()) == list(
            range(1, len(clients))
        )

    def test_tighten_and_lemma51_rows(self, setup):
        _, _, clients, arrays = self._arrays(setup)
        rows = arrays.active_rows()
        arrays.tighten_de(rows, np.full(len(rows), 5.0))
        arrays.tighten_de(rows[:1], np.array([2.0]))
        assert list(arrays.lemma51_rows(1.0)) == []
        assert list(arrays.lemma51_rows(2.0)) == [0]
        assert list(arrays.lemma51_rows(5.0)) == list(rows)
        arrays.mask[0] = False
        assert 0 not in arrays.lemma51_rows(5.0)

    def test_compact_realigns_rows(self, setup):
        _, _, clients, arrays = self._arrays(setup)
        if len(clients) < 3:
            pytest.skip("needs a group of at least 3 clients")
        arrays.tighten_de(
            arrays.active_rows(),
            np.arange(len(clients), dtype=np.float64),
        )
        victim = clients[1]
        arrays.mark_pruned(victim.client_id)
        survivors = [c for c in clients if c is not victim]
        before = arrays.offsets[arrays.active_rows()]
        arrays.compact(survivors)
        assert arrays.offsets.shape[0] == len(survivors)
        assert np.array_equal(arrays.offsets, before)
        assert list(arrays.de_bound) == [
            float(i) for i in range(len(clients)) if i != 1
        ]
        assert list(arrays.active_rows()) == list(
            range(len(survivors))
        )
        arrays.mark_pruned(survivors[0].client_id)
        assert list(arrays.active_rows()) == list(
            range(1, len(survivors))
        )

    def test_pruned_seeded_at_construction(self, setup):
        engine, pid, clients, _ = self._arrays(setup)
        arrays = engine.group_arrays(
            clients, pid, pruned=[clients[0].client_id]
        )
        assert list(arrays.active_rows()) == list(
            range(1, len(clients))
        )


class TestDerivedReductions:
    def test_exit_door_mins_matches_block_reduction(self, setup):
        venue, tree = setup
        pack = tree.kernels()
        pids = sorted(venue.partition_ids())[:6]
        for source in pids:
            exits = tuple(venue.doors_of(source))
            for target in pids:
                doors = tuple(venue.doors_of(target))
                mins = pack.exit_door_mins(source, target)
                assert mins.shape == (len(exits),)
                for row, door in enumerate(exits):
                    want = min(
                        (tree.door_to_door(door, other) for other in doors),
                        default=float("inf"),
                    )
                    assert mins[row] == want, (source, target, door)

    def test_exit_door_mins_cached_and_listed(self, setup):
        venue, tree = setup
        pack = tree.kernels()
        a, b = sorted(venue.partition_ids())[:2]
        mins = pack.exit_door_mins(a, b)
        assert pack.exit_door_mins(a, b) is mins
        listed = pack.exit_door_mins_list(a, b)
        assert listed == mins.tolist()
        assert pack.exit_door_mins_list(a, b) is listed

    def test_partition_pair_min_matches_scalar_imind(self, setup):
        venue, tree = setup
        pack = tree.kernels()
        scalar = VIPDistanceEngine(tree, memoize=False, use_kernels=False)
        pids = sorted(venue.partition_ids())[:6]
        for a in pids:
            for b in pids:
                if a == b:
                    continue
                assert pack.partition_pair_min(a, b) == (
                    scalar.imind_partitions(a, b)
                ), (a, b)


class TestValueLanes:
    def _group(self, setup, seed=44):
        venue, tree = setup
        groups = _clients_by_partition(venue, 40, seed)
        pid, clients = max(groups.items(), key=lambda kv: len(kv[1]))
        return venue, tree, pid, clients

    def test_idist_values_matches_rows_and_counters(self, setup):
        venue, tree, pid, clients = self._group(setup)
        lists = VIPDistanceEngine(tree, use_kernels=True)
        rows_eng = VIPDistanceEngine(tree, use_kernels=True)
        for target in sorted(venue.partition_ids())[:8]:
            a_lists = lists.group_arrays(clients, pid)
            a_rows = rows_eng.group_arrays(clients, pid)
            got_rows, got_values = lists.idist_values(a_lists, target)
            want = rows_eng.idist_rows(
                a_rows, a_rows.active_rows(), target
            )
            assert got_rows == list(range(len(clients)))
            assert got_values == want.tolist()
        for field in (
            "idist_calls",
            "single_door_shortcuts",
            "d2d_lookups",
            "kernel_batches",
            "imind_calls",
            "distance_computations",
        ):
            assert getattr(lists.stats, field) == getattr(
                rows_eng.stats, field
            ), field

    def test_idist_values_respects_pruning(self, setup):
        venue, tree, pid, clients = self._group(setup)
        engine = VIPDistanceEngine(tree, use_kernels=True)
        scalar = VIPDistanceEngine(tree, use_kernels=False)
        arrays = engine.group_arrays(clients, pid)
        arrays.mark_pruned(clients[0].client_id)
        target = next(
            p for p in sorted(venue.partition_ids()) if p != pid
        )
        rows, values = engine.idist_values(arrays, target)
        assert rows == list(range(1, len(clients)))
        assert values == [
            scalar.idist(c, target) for c in clients[1:]
        ]

    def test_idist_single_door_matches_scalar(self, setup):
        venue, tree = setup
        single = next(
            p
            for p in sorted(venue.partition_ids())
            if len(tuple(venue.doors_of(p))) == 1
        )
        clients = [
            c
            for c in make_clients(venue, 60, seed=45)
            if c.partition_id == single
        ]
        assert clients, "seeded clients reach a single-door partition"
        engine = VIPDistanceEngine(tree, use_kernels=True)
        scalar = VIPDistanceEngine(tree, use_kernels=False)
        assert engine.single_exit(single)
        for target in sorted(venue.partition_ids())[:8]:
            kept, values = engine.idist_single_door(
                single, clients, set(), target
            )
            assert kept == clients
            assert values == [scalar.idist(c, target) for c in clients]

    def test_idist_single_door_filters_pruned(self, setup):
        venue, tree = setup
        single = next(
            p
            for p in sorted(venue.partition_ids())
            if len(tuple(venue.doors_of(p))) == 1
        )
        clients = [
            c
            for c in make_clients(venue, 60, seed=46)
            if c.partition_id == single
        ]
        if len(clients) < 2:
            pytest.skip("needs two clients in one single-door room")
        engine = VIPDistanceEngine(tree, use_kernels=True)
        target = next(
            p for p in sorted(venue.partition_ids()) if p != single
        )
        pruned = {clients[0].client_id}
        kept, values = engine.idist_single_door(
            single, clients, pruned, target
        )
        assert kept == clients[1:]
        assert len(values) == len(kept)
        assert engine.stats.idist_calls == len(kept)
        assert engine.stats.single_door_shortcuts == len(kept)
        # One batch for the lane itself plus one for the cold iMinD
        # block reduction it triggered.
        assert engine.stats.kernel_batches == 2


class TestGating:
    def test_env_flag_disables_default(self, setup, monkeypatch):
        _, tree = setup
        for value in ("0", "false", "off", "no", " OFF "):
            monkeypatch.setenv(kernels.ENV_FLAG, value)
            assert not kernels.default_enabled()
            assert not VIPDistanceEngine(tree).use_kernels
        monkeypatch.setenv(kernels.ENV_FLAG, "1")
        assert kernels.default_enabled()

    def test_explicit_true_overrides_env(self, setup, monkeypatch):
        _, tree = setup
        monkeypatch.setenv(kernels.ENV_FLAG, "0")
        engine = VIPDistanceEngine(tree, use_kernels=True)
        assert engine.use_kernels
        assert engine.kernel_pack is not None

    def test_explicit_false_is_scalar(self, setup):
        _, tree = setup
        engine = VIPDistanceEngine(tree, use_kernels=False)
        assert not engine.use_kernels
        assert engine.stats.kernel_batches == 0

    def test_clear_caches_rebuilds_pack(self, setup):
        _, tree = setup
        engine = VIPDistanceEngine(tree, use_kernels=True)
        pack = engine.kernel_pack
        engine.clear_caches()
        assert engine.kernel_pack is not None
        assert engine.kernel_pack is not pack
        assert engine.kernel_pack is tree.kernels()
