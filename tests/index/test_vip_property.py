"""Property-based tests: VIP-tree distances equal door-graph Dijkstra.

Venues are generated from random building specs (random level/room
configurations of the procedural generator), so the equality is checked
across many topologies: single floors, towers, halls with double doors.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DistanceService, VIPTree
from repro.datasets import STACK, CHAIN, BuildingSpec, generate_building


@st.composite
def building_specs(draw):
    layout = draw(st.sampled_from([STACK, CHAIN]))
    if layout == STACK:
        levels = draw(st.integers(1, 3))
        corridors = draw(st.integers(1, 2))
        segments = draw(st.integers(1, 3))
        rooms = draw(st.integers(corridors * levels, 24))
        rooms = max(rooms, 3)
        links = draw(st.integers(1, 2)) if corridors > 1 else 0
        vertical = draw(st.integers(1, 2))
    else:
        levels = 1
        corridors = draw(st.integers(2, 4))
        segments = 1
        rooms = draw(st.integers(corridors, 20))
        links = corridors - 1
        vertical = 1
    return BuildingSpec(
        name="prop",
        levels=levels,
        corridors_per_level=corridors,
        rooms=rooms,
        layout=layout,
        segments_per_corridor=segments,
        corridor_links_per_level=links,
        vertical_links_per_gap=vertical,
        double_door_rooms=draw(st.integers(0, min(3, rooms))),
        exterior_doors=draw(st.integers(0, 2)),
        width=60.0,
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=building_specs(), leaf_capacity=st.integers(2, 10))
def test_vip_distance_equals_dijkstra(spec, leaf_capacity):
    venue = generate_building(spec)
    tree = VIPTree(venue, leaf_capacity=leaf_capacity)
    exact = DistanceService(venue)
    doors = sorted(venue.door_ids())
    # All pairs on small venues; sampled diagonal slices on larger ones.
    pairs = (
        itertools.combinations(doors, 2)
        if len(doors) <= 18
        else zip(doors, doors[5:] + doors[:5])
    )
    for a, b in pairs:
        assert tree.door_to_door(a, b) == pytest.approx(
            exact.door_to_door(a, b)
        ), (spec, a, b)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=building_specs())
def test_imind_node_is_admissible(spec):
    """iMinD(p, N) lower-bounds iMinD(p, q) for every q inside N."""
    from repro.index.distance import VIPDistanceEngine

    venue = generate_building(spec)
    engine = VIPDistanceEngine(VIPTree(venue))
    pids = sorted(venue.partition_ids())
    probes = pids[:: max(1, len(pids) // 6)]
    for pid in probes:
        for node in engine.tree.nodes:
            bound = engine.imind_node(pid, node)
            members = node.partitions[:: max(1, len(node.partitions) // 4)]
            for member in members:
                assert (
                    bound <= engine.imind_partitions(pid, member) + 1e-9
                )
