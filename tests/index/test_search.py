"""Unit tests for the top-down facility search (NN / range)."""

import pytest

from repro import FacilitySearch, VIPTree
from repro.index.distance import VIPDistanceEngine
from repro.datasets import small_office
from tests.conftest import make_clients


@pytest.fixture(scope="module")
def setup():
    venue = small_office(levels=2, rooms=24)
    engine = VIPDistanceEngine(VIPTree(venue))
    rooms = sorted(
        p.partition_id for p in venue.partitions()
        if p.kind.value == "room"
    )
    facilities = frozenset(rooms[::3])
    return venue, engine, facilities


def brute_nearest(engine, client, facilities):
    return min(
        ((pid, engine.idist(client, pid)) for pid in facilities),
        key=lambda item: (item[1], item[0]),
    )


class TestNearest:
    def test_matches_brute_force(self, setup):
        venue, engine, facilities = setup
        search = FacilitySearch(engine, facilities)
        for client in make_clients(venue, 25, seed=20):
            got = search.nearest(client)
            want = brute_nearest(engine, client, facilities)
            assert got is not None
            assert got[1] == pytest.approx(want[1])

    def test_client_inside_facility(self, setup):
        venue, engine, facilities = setup
        search = FacilitySearch(engine, facilities)
        pid = next(iter(facilities))
        rect = venue.partition(pid).rect
        from repro import Client

        client = Client(0, rect.center, pid)
        assert search.nearest(client) == (pid, 0.0)

    def test_empty_facility_set(self, setup):
        venue, engine, _ = setup
        search = FacilitySearch(engine, frozenset())
        client = make_clients(venue, 1, seed=21)[0]
        assert search.nearest(client) is None


class TestIterByDistance:
    def test_yields_in_nondecreasing_order(self, setup):
        venue, engine, facilities = setup
        search = FacilitySearch(engine, facilities)
        for client in make_clients(venue, 10, seed=22):
            dists = [d for _pid, d in search.iter_by_distance(client)]
            assert dists == sorted(dists)
            assert len(dists) == len(facilities)

    def test_yields_each_facility_once(self, setup):
        venue, engine, facilities = setup
        search = FacilitySearch(engine, facilities)
        client = make_clients(venue, 1, seed=23)[0]
        pids = [pid for pid, _d in search.iter_by_distance(client)]
        assert sorted(pids) == sorted(facilities)

    def test_distances_are_exact(self, setup):
        venue, engine, facilities = setup
        search = FacilitySearch(engine, facilities)
        client = make_clients(venue, 1, seed=24)[0]
        for pid, dist in search.iter_by_distance(client):
            assert dist == pytest.approx(engine.idist(client, pid))


class TestWithin:
    def test_strict_excludes_radius(self, setup):
        venue, engine, facilities = setup
        search = FacilitySearch(engine, facilities)
        client = make_clients(venue, 1, seed=25)[0]
        everything = search.within(client, float("inf"))
        assert len(everything) == len(facilities)
        _, third = everything[2]
        strict = search.within(client, third, strict=True)
        lax = search.within(client, third, strict=False)
        assert all(d < third for _p, d in strict)
        assert all(d <= third for _p, d in lax)
        assert len(lax) >= len(strict)

    def test_zero_radius(self, setup):
        venue, engine, facilities = setup
        search = FacilitySearch(engine, facilities)
        client = make_clients(venue, 1, seed=26)[0]
        assert search.within(client, 0.0, strict=True) == []
