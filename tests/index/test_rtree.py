"""Unit and property tests for the R-tree and partition locator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Point, Rect
from repro.index.rtree import PartitionLocator, RTree
from repro.datasets import small_office, venue_by_name


def random_rects(count, rng, extent=100.0):
    out = []
    for _ in range(count):
        x = rng.uniform(0, extent)
        y = rng.uniform(0, extent)
        w = rng.uniform(0.5, 10)
        h = rng.uniform(0.5, 10)
        out.append(Rect(x, y, x + w, y + h))
    return out


class TestRTree:
    def test_empty(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.nearest(Point(0, 0)) is None
        assert list(tree.query_point(Point(0, 0))) == []

    def test_min_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    def test_insert_and_point_query(self):
        tree = RTree()
        rects = random_rects(100, random.Random(1))
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        assert len(tree) == 100
        probe = Point(50, 50)
        got = {v for _r, v in tree.query_point(probe)}
        want = {i for i, r in enumerate(rects) if r.contains(probe)}
        assert got == want

    def test_window_query_matches_scan(self):
        rng = random.Random(2)
        tree = RTree(max_entries=6)
        rects = random_rects(200, rng)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        window = Rect(20, 20, 60, 60)
        got = {v for _r, v in tree.query_window(window)}
        want = {
            i
            for i, r in enumerate(rects)
            if not (
                r.max_x < window.min_x or window.max_x < r.min_x
                or r.max_y < window.min_y or window.max_y < r.min_y
            )
        }
        assert got == want

    def test_nearest_matches_scan(self):
        rng = random.Random(3)
        tree = RTree()
        rects = random_rects(150, rng)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for _ in range(20):
            probe = Point(rng.uniform(-20, 120), rng.uniform(-20, 120))
            found = tree.nearest(probe)
            assert found is not None
            _rect, _value, dist = found
            best = min(r.distance_to_point(probe) for r in rects)
            assert dist == pytest.approx(best)

    def test_tree_grows_in_height(self):
        tree = RTree(max_entries=4)
        for i, rect in enumerate(random_rects(200, random.Random(4))):
            tree.insert(rect, i)
        assert tree.height >= 3

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        count=st.integers(1, 80),
        px=st.floats(-10, 110),
        py=st.floats(-10, 110),
    )
    def test_point_query_property(self, seed, count, px, py):
        rng = random.Random(seed)
        tree = RTree(max_entries=5)
        rects = random_rects(count, rng)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        probe = Point(px, py)
        got = {v for _r, v in tree.query_point(probe)}
        want = {i for i, r in enumerate(rects) if r.contains(probe)}
        assert got == want


class TestPartitionLocator:
    def test_matches_linear_locate(self):
        venue = small_office(levels=2, rooms=24)
        locator = PartitionLocator(venue)
        rng = random.Random(5)
        bounds = venue.bounding_rect()
        for _ in range(100):
            point = Point(
                rng.uniform(bounds.min_x - 5, bounds.max_x + 5),
                rng.uniform(bounds.min_y - 5, bounds.max_y + 5),
                rng.choice(venue.levels),
            )
            assert locator.locate(point) == venue.locate(point)

    def test_unknown_level(self):
        venue = small_office()
        locator = PartitionLocator(venue)
        assert locator.locate(Point(1, 1, 99)) is None
        assert locator.nearest_partition(Point(1, 1, 99)) is None

    def test_nearest_partition(self):
        venue = venue_by_name("CPH")
        locator = PartitionLocator(venue)
        outside = Point(-50.0, -50.0, 0)
        found = locator.nearest_partition(outside)
        assert found is not None
        pid, dist = found
        best = min(
            venue.partition(p).rect.distance_to_point(outside)
            for p in venue.partitions_on_level(0)
        )
        assert dist == pytest.approx(best)

    def test_paper_venue_coverage(self):
        venue = venue_by_name("CPH")
        locator = PartitionLocator(venue)
        for partition in venue.partitions():
            assert locator.locate(partition.center) is not None
