"""Unit tests for indoor route reconstruction."""

import pytest

from repro import Client, DistanceService, PathService
from repro.errors import UnreachableFacilityError
from repro.datasets import small_office
from tests.conftest import build_corridor_venue, make_clients


@pytest.fixture(scope="module")
def corridor():
    venue, rooms, corridor_id = build_corridor_venue(rooms=6, width=60)
    return venue, rooms, corridor_id, PathService(venue)


@pytest.fixture(scope="module")
def office():
    venue = small_office(levels=2, rooms=20)
    return venue, PathService(venue), DistanceService(venue)


class TestDoorSequence:
    def test_identity(self, corridor):
        venue, _, _, paths = corridor
        door = next(venue.door_ids())
        assert paths.door_sequence(door, door) == (0.0, [door])

    def test_sequence_endpoints(self, corridor):
        venue, _, _, paths = corridor
        doors = sorted(venue.door_ids())
        dist, seq = paths.door_sequence(doors[0], doors[5])
        assert seq[0] == doors[0]
        assert seq[-1] == doors[5]
        assert dist == pytest.approx(50.0)

    def test_distance_matches_exact_service(self, office):
        venue, paths, exact = office
        doors = sorted(venue.door_ids())
        for a, b in zip(doors, doors[4:]):
            dist, seq = paths.door_sequence(a, b)
            assert dist == pytest.approx(exact.door_to_door(a, b))
            assert seq


class TestRoutes:
    def test_route_inside_target(self, corridor):
        venue, rooms, _, paths = corridor
        client = Client(0, venue.partition(rooms[0]).center, rooms[0])
        route = paths.route_to_partition(client, rooms[0])
        assert route.distance == 0.0
        assert route.legs == ()

    def test_route_distance_matches_idist(self, office):
        venue, paths, exact = office
        clients = make_clients(venue, 8, seed=40)
        targets = sorted(venue.partition_ids())[::5]
        for client in clients:
            for target in targets:
                if target == client.partition_id:
                    continue
                route = paths.route_to_partition(client, target)
                want = exact.point_to_partition(
                    client.location, client.partition_id, target
                )
                assert route.distance == pytest.approx(want)

    def test_leg_distances_sum_to_total(self, office):
        venue, paths, _ = office
        client = make_clients(venue, 1, seed=41)[0]
        target = next(
            pid for pid in venue.partition_ids()
            if pid != client.partition_id
        )
        route = paths.route_to_partition(client, target)
        assert sum(leg.distance for leg in route.legs) == pytest.approx(
            route.distance
        )

    def test_legs_are_contiguous(self, office):
        venue, paths, _ = office
        client = make_clients(venue, 1, seed=42)[0]
        targets = sorted(venue.partition_ids())
        route = paths.route_to_partition(client, targets[-1])
        for prev, nxt in zip(route.legs, route.legs[1:]):
            assert prev.end == nxt.start

    def test_route_crosses_levels(self, office):
        venue, paths, _ = office
        level0 = [
            p.partition_id for p in venue.partitions()
            if p.kind.value == "room" and p.level == 0
        ]
        level1 = [
            p.partition_id for p in venue.partitions()
            if p.kind.value == "room" and p.level == 1
        ]
        client = Client(
            0, venue.partition(level0[0]).center, level0[0]
        )
        route = paths.route_to_partition(client, level1[0])
        levels = {
            venue.partition(leg.partition).level for leg in route.legs
        }
        assert levels == {0, 1}

    def test_unreachable_raises(self):
        from repro import Rect, VenueBuilder

        builder = VenueBuilder()
        a = builder.add_room(Rect(0, 0, 5, 5))
        b = builder.add_room(Rect(5, 0, 10, 5))
        builder.connect(a, b)
        c = builder.add_room(Rect(20, 0, 25, 5))
        d = builder.add_room(Rect(25, 0, 30, 5))
        builder.connect(c, d)
        venue = builder.build(validate=False)
        paths = PathService(venue)
        client = Client(0, venue.partition(a).center, a)
        with pytest.raises(UnreachableFacilityError):
            paths.route_to_partition(client, c)

    def test_describe(self, office):
        venue, paths, _ = office
        client = make_clients(venue, 1, seed=43)[0]
        target = next(
            pid for pid in venue.partition_ids()
            if pid != client.partition_id
        )
        route = paths.route_to_partition(client, target)
        text = paths.describe(route)
        assert "total distance" in text

    def test_describe_trivial(self, corridor):
        venue, rooms, _, paths = corridor
        client = Client(0, venue.partition(rooms[0]).center, rooms[0])
        route = paths.route_to_partition(client, rooms[0])
        assert "already there" in paths.describe(route)
