"""Alternative distance backends must agree with the ground truth.

Covers the door-to-door table (Yang et al.), the hierarchical IP-tree
assembly (Shao et al. without the vivid matrices), and the VIP-tree,
all against plain Dijkstra.
"""

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro import DistanceService, VIPTree
from repro.errors import IndexError_
from repro.index.doortable import DoorTableIndex
from repro.index.iptree import IPTreeDistanceIndex
from repro.datasets import small_office, generate_building
from tests.index.test_vip_property import building_specs


@pytest.fixture(scope="module")
def office():
    venue = small_office(levels=3, rooms=30)
    tree = VIPTree(venue, leaf_capacity=5)
    return (
        venue,
        tree,
        DoorTableIndex(venue, graph=tree.graph),
        IPTreeDistanceIndex(tree),
        DistanceService(venue, graph=tree.graph),
    )


class TestDoorTable:
    def test_all_pairs_match_dijkstra(self, office):
        venue, _tree, table, _ip, exact = office
        doors = sorted(venue.door_ids())
        for a, b in itertools.combinations(doors[::2], 2):
            assert table.door_to_door(a, b) == pytest.approx(
                exact.door_to_door(a, b)
            )

    def test_identity_and_symmetry(self, office):
        venue, _tree, table, _ip, _exact = office
        doors = sorted(venue.door_ids())
        assert table.door_to_door(doors[0], doors[0]) == 0.0
        assert table.door_to_door(doors[0], doors[7]) == (
            table.door_to_door(doors[7], doors[0])
        )

    def test_entry_count_is_all_pairs(self, office):
        venue, _tree, table, _ip, _exact = office
        n = venue.door_count
        assert table.matrix_entry_count() == n * (n + 1) // 2


class TestIPTree:
    def test_matches_dijkstra(self, office):
        venue, _tree, _table, ip, exact = office
        doors = sorted(venue.door_ids())
        for a, b in itertools.combinations(doors[::2], 2):
            assert ip.door_to_door(a, b) == pytest.approx(
                exact.door_to_door(a, b)
            ), (a, b)

    def test_fewer_entries_than_vip(self, office):
        venue, tree, _table, ip, _exact = office
        assert ip.matrix_entry_count() <= tree.matrix_entry_count()

    def test_fewer_entries_than_full_table_on_big_venue(self):
        from repro.datasets import BuildingSpec

        spec = BuildingSpec(
            name="long", levels=2, corridors_per_level=1, rooms=80,
            segments_per_corridor=6, width=200.0,
        )
        venue = generate_building(spec)
        tree = VIPTree(venue, leaf_capacity=8)
        ip = IPTreeDistanceIndex(tree)
        table = DoorTableIndex(venue, graph=tree.graph)
        assert ip.matrix_entry_count() < table.matrix_entry_count()
        assert ip.matrix_entry_count() <= tree.matrix_entry_count()

    def test_unknown_door_raises(self, office):
        _venue, _tree, _table, ip, _exact = office
        with pytest.raises(IndexError_):
            ip.door_to_door(99999, 0)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=building_specs())
def test_backends_agree_on_random_venues(spec):
    venue = generate_building(spec)
    tree = VIPTree(venue, leaf_capacity=4)
    table = DoorTableIndex(venue, graph=tree.graph)
    ip = IPTreeDistanceIndex(tree)
    exact = DistanceService(venue, graph=tree.graph)
    doors = sorted(venue.door_ids())
    rng = random.Random(11)
    pairs = (
        list(itertools.combinations(doors, 2))
        if len(doors) <= 14
        else [tuple(rng.sample(doors, 2)) for _ in range(40)]
    )
    for a, b in pairs:
        want = exact.door_to_door(a, b)
        assert tree.door_to_door(a, b) == pytest.approx(want)
        assert table.door_to_door(a, b) == pytest.approx(want)
        assert ip.door_to_door(a, b) == pytest.approx(want), (spec, a, b)
