"""Unit tests for VIP-tree distance matrices and door-to-door lookups."""

import itertools

import pytest

from repro import DistanceService, VIPTree
from repro.datasets import small_office
from tests.conftest import build_corridor_venue


@pytest.fixture(scope="module")
def corridor_tree():
    venue, rooms, corridor_id = build_corridor_venue(rooms=12, width=60)
    return venue, VIPTree(venue, leaf_capacity=5), DistanceService(venue)


@pytest.fixture(scope="module")
def office_tree():
    venue = small_office(levels=3, rooms=30)
    return venue, VIPTree(venue), DistanceService(venue)


class TestMatrices:
    def test_rows_exist_for_all_access_doors(self, corridor_tree):
        _, tree, _ = corridor_tree
        access = set()
        for node in tree.nodes:
            access.update(node.access_doors)
        assert set(tree.rows) == access

    def test_rows_hold_exact_distances(self, corridor_tree):
        venue, tree, exact = corridor_tree
        for source, row in tree.rows.items():
            for target, dist in row.items():
                assert dist == pytest.approx(
                    exact.door_to_door(source, target)
                )

    def test_local_matrices_cover_leaf_doors(self, corridor_tree):
        venue, tree, _ = corridor_tree
        for leaf in tree.leaves():
            matrix = tree.local[leaf.node_id]
            for door in leaf.doors:
                assert (door, door) in matrix
                assert matrix[(door, door)] == 0.0

    def test_local_distances_never_below_global(self, corridor_tree):
        venue, tree, exact = corridor_tree
        for leaf in tree.leaves():
            for (a, b), dist in tree.local[leaf.node_id].items():
                assert dist >= exact.door_to_door(a, b) - 1e-9

    def test_matrix_entry_count_positive(self, corridor_tree):
        _, tree, _ = corridor_tree
        assert tree.matrix_entry_count() > 0
        assert tree.access_door_count() == len(tree.rows)


class TestDoorToDoor:
    def test_matches_dijkstra_everywhere_corridor(self, corridor_tree):
        venue, tree, exact = corridor_tree
        doors = sorted(venue.door_ids())
        for a, b in itertools.combinations(doors, 2):
            assert tree.door_to_door(a, b) == pytest.approx(
                exact.door_to_door(a, b)
            ), (a, b)

    def test_matches_dijkstra_everywhere_office(self, office_tree):
        venue, tree, exact = office_tree
        doors = sorted(venue.door_ids())
        for a, b in itertools.combinations(doors, 2):
            assert tree.door_to_door(a, b) == pytest.approx(
                exact.door_to_door(a, b)
            ), (a, b)

    def test_identity_and_symmetry(self, office_tree):
        venue, tree, _ = office_tree
        doors = sorted(venue.door_ids())
        assert tree.door_to_door(doors[0], doors[0]) == 0.0
        assert tree.door_to_door(doors[0], doors[5]) == pytest.approx(
            tree.door_to_door(doors[5], doors[0])
        )

    def test_triangle_inequality(self, office_tree):
        venue, tree, _ = office_tree
        doors = sorted(venue.door_ids())[:10]
        for a, b, c in itertools.permutations(doors, 3):
            ab = tree.door_to_door(a, b)
            bc = tree.door_to_door(b, c)
            ac = tree.door_to_door(a, c)
            assert ac <= ab + bc + 1e-6


class TestStructureProperties:
    def test_height_and_counts(self, office_tree):
        _, tree, _ = office_tree
        assert tree.height >= 1
        assert tree.leaf_count <= tree.node_count
