"""Unit tests for the VIP-tree distance engine (iDist / iMinD)."""

import sys

import pytest

from repro import Client, DistanceService, Point, VIPTree
from repro.index.distance import VIPDistanceEngine
from repro.datasets import small_office
from tests.conftest import make_clients


@pytest.fixture(scope="module")
def setup():
    venue = small_office(levels=2, rooms=20)
    tree = VIPTree(venue)
    return venue, VIPDistanceEngine(tree), DistanceService(venue)


class TestIDist:
    def test_zero_inside_target(self, setup):
        venue, engine, _ = setup
        client = make_clients(venue, 1, seed=5)[0]
        assert engine.idist(client, client.partition_id) == 0.0

    def test_matches_exact_service(self, setup):
        venue, engine, exact = setup
        clients = make_clients(venue, 12, seed=6)
        targets = sorted(venue.partition_ids())
        for client in clients:
            for target in targets:
                got = engine.idist(client, target)
                want = exact.point_to_partition(
                    client.location, client.partition_id, target
                )
                assert got == pytest.approx(want), (client, target)

    def test_single_door_shortcut_matches_general_path(self, setup):
        venue, engine, exact = setup
        cold = VIPDistanceEngine(engine.tree, memoize=False)
        clients = make_clients(venue, 6, seed=7)
        targets = sorted(venue.partition_ids())[:8]
        for client in clients:
            for target in targets:
                assert engine.idist(client, target) == pytest.approx(
                    cold.idist(client, target)
                )

    def test_shortcut_counter_increments(self, setup):
        venue, engine, _ = setup
        # Rooms in the office venue have exactly one door.
        client = make_clients(venue, 1, seed=8)[0]
        before = engine.stats.single_door_shortcuts
        other = next(
            pid for pid in venue.partition_ids()
            if pid != client.partition_id
        )
        engine.idist(client, other)
        assert engine.stats.single_door_shortcuts == before + 1


class TestIMinD:
    def test_zero_for_same_partition(self, setup):
        venue, engine, _ = setup
        pid = next(venue.partition_ids())
        assert engine.imind_partitions(pid, pid) == 0.0

    def test_matches_exact_service(self, setup):
        venue, engine, exact = setup
        pids = sorted(venue.partition_ids())
        for a in pids[:6]:
            for b in pids[-6:]:
                assert engine.imind_partitions(a, b) == pytest.approx(
                    exact.partition_to_partition(a, b)
                )

    def test_memoisation_counts_hits(self, setup):
        venue, engine, _ = setup
        pids = sorted(venue.partition_ids())
        engine.imind_partitions(pids[0], pids[5])
        before = engine.stats.imind_cache_hits
        engine.imind_partitions(pids[5], pids[0])  # symmetric key
        assert engine.stats.imind_cache_hits == before + 1

    def test_node_bound_zero_when_covering(self, setup):
        venue, engine, _ = setup
        pid = next(venue.partition_ids())
        leaf = engine.tree.leaf_of(pid)
        assert engine.imind_node(pid, leaf) == 0.0
        assert engine.imind_node(pid, engine.tree.root) == 0.0

    def test_node_bound_lower_bounds_member_distances(self, setup):
        venue, engine, _ = setup
        pids = sorted(venue.partition_ids())
        for pid in pids[:5]:
            for node in engine.tree.nodes:
                bound = engine.imind_node(pid, node)
                for member in node.partitions:
                    assert (
                        bound <= engine.imind_partitions(pid, member) + 1e-9
                    )


class TestPointBounds:
    def test_point_bound_zero_when_covering(self, setup):
        venue, engine, _ = setup
        client = make_clients(venue, 1, seed=9)[0]
        leaf = engine.tree.leaf_of(client.partition_id)
        assert engine.point_min_dist_to_node(client, leaf) == 0.0

    def test_point_bound_lower_bounds_idist(self, setup):
        venue, engine, _ = setup
        clients = make_clients(venue, 5, seed=10)
        for client in clients:
            for node in engine.tree.nodes:
                bound = engine.point_min_dist_to_node(client, node)
                for member in node.partitions:
                    assert bound <= engine.idist(client, member) + 1e-9

    def test_point_bound_at_least_partition_bound(self, setup):
        venue, engine, _ = setup
        clients = make_clients(venue, 5, seed=11)
        for client in clients:
            for node in engine.tree.nodes:
                assert (
                    engine.point_min_dist_to_node(client, node)
                    >= engine.imind_node(client.partition_id, node) - 1e-9
                )


class TestPointToPoint:
    def test_same_partition_euclidean(self, setup):
        venue, engine, _ = setup
        pid = make_clients(venue, 1, seed=12)[0].partition_id
        rect = venue.partition(pid).rect
        a = Client(0, Point(rect.min_x, rect.min_y, rect.level), pid)
        b = Client(1, Point(rect.min_x + 3, rect.min_y, rect.level), pid)
        assert engine.point_to_point(a, b) == pytest.approx(3.0)

    def test_matches_exact_service(self, setup):
        venue, engine, exact = setup
        clients = make_clients(venue, 8, seed=13)
        for a in clients[:4]:
            for b in clients[4:]:
                got = engine.point_to_point(a, b)
                want = exact.point_to_point(
                    a.location, a.partition_id, b.location, b.partition_id
                )
                assert got == pytest.approx(want)

    def test_symmetry(self, setup):
        venue, engine, _ = setup
        clients = make_clients(venue, 6, seed=14)
        for a in clients[:3]:
            for b in clients[3:]:
                assert engine.point_to_point(a, b) == pytest.approx(
                    engine.point_to_point(b, a)
                )


class TestCounterSemantics:
    """Uniform counting (d2d) and memoize-independent shortcuts."""

    def test_idist_identical_with_and_without_memoize(self, setup):
        venue, _, _ = setup
        tree = VIPTree(venue)
        memo = VIPDistanceEngine(tree, memoize=True)
        cold = VIPDistanceEngine(tree, memoize=False)
        clients = make_clients(venue, 10, seed=21)
        targets = sorted(venue.partition_ids())
        for client in clients:
            for target in targets:
                assert memo.idist(client, target) == cold.idist(
                    client, target
                ), (client.client_id, target)

    def test_shortcut_counted_in_both_modes(self, setup):
        venue, _, _ = setup
        tree = VIPTree(venue)
        clients = make_clients(venue, 5, seed=22)
        targets = sorted(venue.partition_ids())[:6]
        counts = []
        for memoize in (True, False):
            engine = VIPDistanceEngine(tree, memoize=memoize)
            for client in clients:
                for target in targets:
                    engine.idist(client, target)
            counts.append(engine.stats.single_door_shortcuts)
        assert counts[0] == counts[1] > 0

    def test_d2d_lookups_counted_uniformly(self, setup):
        venue, _, _ = setup
        tree = VIPTree(venue)
        doors = sorted(venue.door_ids())[:2]
        for memoize in (True, False):
            engine = VIPDistanceEngine(tree, memoize=memoize)
            for _ in range(3):
                engine.door_to_door(doors[0], doors[1])
            # Every probe counts as a lookup, memoised or not ...
            assert engine.stats.d2d_lookups == 3
            if memoize:
                # ... and with memoisation the repeats are hits.
                assert engine.stats.d2d_cache_hits == 2
            else:
                assert engine.stats.d2d_cache_hits == 0

    def test_hits_plus_computations_equals_calls(self, setup):
        venue, _, _ = setup
        tree = VIPTree(venue)
        for memoize in (True, False):
            engine = VIPDistanceEngine(tree, memoize=memoize)
            clients = make_clients(venue, 6, seed=23)
            for client in clients:
                for target in sorted(venue.partition_ids()):
                    engine.idist(client, target)
            s = engine.stats
            assert (
                s.imind_cache_hits
                + s.imind_node_cache_hits
                + s.distance_computations
                == s.imind_calls + s.imind_node_calls
            )


class TestEviction:
    def test_budget_bounds_cache_entries(self, setup):
        venue, _, _ = setup
        engine = VIPDistanceEngine(
            VIPTree(venue), memoize=True, max_cache_entries=25
        )
        pids = sorted(venue.partition_ids())
        for a in pids:
            for b in pids:
                engine.imind_partitions(a, b)
                assert engine.cache_entries() <= 25
        assert engine.stats.cache_evictions > 0

    def test_eviction_preserves_values(self, setup):
        venue, _, exact = setup
        engine = VIPDistanceEngine(
            VIPTree(venue), memoize=True, max_cache_entries=10
        )
        pids = sorted(venue.partition_ids())
        for a in pids[:8]:
            for b in pids[-8:]:
                assert engine.imind_partitions(a, b) == pytest.approx(
                    exact.partition_to_partition(a, b)
                )

    def test_clear_caches_empties_tables(self, setup):
        venue, _, _ = setup
        engine = VIPDistanceEngine(VIPTree(venue))
        pids = sorted(venue.partition_ids())
        engine.imind_partitions(pids[0], pids[3])
        assert engine.cache_entries() > 0
        engine.clear_caches()
        assert engine.cache_entries() == 0
        assert engine.cache_sizes() == {
            "imind_pp": 0, "imind_node": 0, "d2d": 0
        }


class TestTinyBudgets:
    """Regression: tiny budgets must never evict the fresh entry."""

    def _engine(self, setup, budget):
        _, engine, _ = setup
        return VIPDistanceEngine(
            engine.tree, memoize=True, max_cache_entries=budget
        )

    def test_negative_budget_rejected(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError, match=">= 0"):
            VIPDistanceEngine(engine.tree, max_cache_entries=-1)

    def test_budget_zero_disables_cache(self, setup):
        engine = self._engine(setup, 0)
        doors = sorted(engine.venue.door_ids())[:2]
        cold = VIPDistanceEngine(engine.tree, memoize=False)
        for _ in range(3):
            assert engine.door_to_door(doors[0], doors[1]) == (
                cold.door_to_door(doors[0], doors[1])
            )
        assert engine.cache_entries() == 0
        assert engine.stats.d2d_cache_hits == 0
        assert engine.stats.cache_evictions == 0

    def test_budget_one_keeps_the_entry_just_stored(self, setup):
        engine = self._engine(setup, 1)
        doors = sorted(engine.venue.door_ids())[:3]
        engine.door_to_door(doors[0], doors[1])
        assert engine.cache_entries() == 1
        # The fresh entry survived its own store: re-probe is a hit.
        engine.door_to_door(doors[0], doors[1])
        assert engine.stats.d2d_cache_hits == 1
        # A second key evicts the first, and again keeps the fresh one.
        engine.door_to_door(doors[0], doors[2])
        assert engine.cache_entries() == 1
        assert engine.stats.cache_evictions == 1
        engine.door_to_door(doors[0], doors[2])
        assert engine.stats.d2d_cache_hits == 2

    def test_budget_two_evicts_oldest_first(self, setup):
        engine = self._engine(setup, 2)
        doors = sorted(engine.venue.door_ids())[:4]
        pairs = [(doors[0], d) for d in doors[1:]]
        for a, b in pairs:
            engine.door_to_door(a, b)
        assert engine.cache_entries() == 2
        assert engine.stats.cache_evictions == 1
        # The two newest pairs are retained, FIFO-evicting the oldest.
        hits_before = engine.stats.d2d_cache_hits
        for a, b in pairs[1:]:
            engine.door_to_door(a, b)
        assert engine.stats.d2d_cache_hits == hits_before + 2
        engine.door_to_door(*pairs[0])
        assert engine.stats.d2d_cache_hits == hits_before + 2

    def test_budget_one_across_tables(self, setup):
        engine = self._engine(setup, 1)
        pids = sorted(engine.venue.partition_ids())
        engine.imind_partitions(pids[0], pids[1])
        doors = sorted(engine.venue.door_ids())[:2]
        engine.door_to_door(doors[0], doors[1])
        # The d2d store evicted the imind_pp entry, not itself.
        assert engine.cache_sizes() == {
            "imind_pp": 0, "imind_node": 0, "d2d": 1
        }
        engine.door_to_door(doors[0], doors[1])
        assert engine.stats.d2d_cache_hits == 1


class TestCacheBytes:
    """Regression: shared key/value objects are charged once."""

    def test_shared_value_counted_once(self, setup):
        _, setup_engine, _ = setup
        engine = VIPDistanceEngine(setup_engine.tree)
        value = 123.456  # one float object referenced by all tables
        engine._imind_pp[(1, 2)] = value
        engine._imind_node[(1, 7)] = value
        engine._d2d_cache[(3, 4)] = value
        tables = (
            engine._imind_pp, engine._imind_node, engine._d2d_cache
        )
        naive = sum(sys.getsizeof(t) for t in tables)
        for table in tables:
            for key, val in table.items():
                naive += sys.getsizeof(key) + sys.getsizeof(val)
        assert engine.cache_bytes() == naive - 2 * sys.getsizeof(value)

    def test_distinct_objects_all_counted(self, setup):
        _, setup_engine, _ = setup
        engine = VIPDistanceEngine(setup_engine.tree)
        engine._imind_pp[(1, 2)] = 10.5
        engine._d2d_cache[(3, 4)] = 20.25
        tables = (
            engine._imind_pp, engine._imind_node, engine._d2d_cache
        )
        expected = sum(sys.getsizeof(t) for t in tables)
        for table in tables:
            for key, val in table.items():
                expected += sys.getsizeof(key) + sys.getsizeof(val)
        assert engine.cache_bytes() == expected


class TestStatsManagement:
    def test_reset_stats_returns_previous(self, setup):
        venue, _, _ = setup
        engine = VIPDistanceEngine(VIPTree(venue))
        clients = make_clients(venue, 2, seed=15)
        engine.idist(clients[0], clients[1].partition_id)
        old = engine.reset_stats()
        assert old.idist_calls >= 1
        assert engine.stats.idist_calls == 0
