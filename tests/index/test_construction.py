"""Unit tests for VIP-tree construction (grouping, access doors, spans)."""

import pytest

from repro import VIPTree
from repro.errors import IndexError_
from repro.index.construction import build_nodes
from tests.conftest import build_corridor_venue


@pytest.fixture(scope="module")
def tree():
    venue, rooms, corridor_id = build_corridor_venue(rooms=12, width=60)
    return venue, rooms, corridor_id, VIPTree(venue, leaf_capacity=5)


class TestHierarchy:
    def test_single_root(self, tree):
        _, _, _, t = tree
        roots = [n for n in t.nodes if n.parent_id is None]
        assert len(roots) == 1
        assert roots[0].node_id == t.root_id

    def test_every_partition_in_exactly_one_leaf(self, tree):
        venue, _, _, t = tree
        seen = {}
        for leaf in t.leaves():
            for pid in leaf.partitions:
                assert pid not in seen
                seen[pid] = leaf.node_id
        assert set(seen) == set(venue.partition_ids())

    def test_parent_covers_children(self, tree):
        _, _, _, t = tree
        for node in t.nodes:
            for child_id in node.child_node_ids:
                child = t.node(child_id)
                assert set(child.partitions) <= set(node.partitions)
                assert child.parent_id == node.node_id

    def test_root_covers_everything(self, tree):
        venue, _, _, t = tree
        assert set(t.root.partitions) == set(venue.partition_ids())

    def test_depths_increase_downwards(self, tree):
        _, _, _, t = tree
        for node in t.nodes:
            for child_id in node.child_node_ids:
                assert t.node(child_id).depth == node.depth + 1

    def test_leaf_spans_partition_the_leaf_order(self, tree):
        _, _, _, t = tree
        leaves = sorted(t.leaves(), key=lambda n: n.leaf_lo)
        for i, leaf in enumerate(leaves):
            assert (leaf.leaf_lo, leaf.leaf_hi) == (i, i + 1)
        assert (t.root.leaf_lo, t.root.leaf_hi) == (0, len(leaves))


class TestAccessDoors:
    def test_access_doors_cross_node_boundary(self, tree):
        venue, _, _, t = tree
        for node in t.nodes:
            covered = set(node.partitions)
            for door_id in node.access_doors:
                door = venue.door(door_id)
                crosses = door.is_exterior or any(
                    pid not in covered for pid in door.partitions()
                )
                assert crosses

    def test_interior_doors_are_not_access_doors(self, tree):
        venue, _, _, t = tree
        for node in t.nodes:
            covered = set(node.partitions)
            access = set(node.access_doors)
            for door_id in node.doors:
                door = venue.door(door_id)
                inside = not door.is_exterior and all(
                    pid in covered for pid in door.partitions()
                )
                if inside:
                    assert door_id not in access

    def test_root_access_doors_are_exterior_only(self, tree):
        venue, _, _, t = tree
        for door_id in t.root.access_doors:
            assert venue.door(door_id).is_exterior


class TestCoverage:
    def test_covers_uses_leaf_spans(self, tree):
        venue, rooms, _, t = tree
        for pid in venue.partition_ids():
            leaf = t.leaf_of(pid)
            assert t.covers(leaf, pid)
            assert t.covers(t.root, pid)
        other_leaves = [
            leaf for leaf in t.leaves()
            if rooms[0] not in leaf.partitions
        ]
        assert all(not t.covers(leaf, rooms[0]) for leaf in other_leaves)

    def test_is_descendant(self, tree):
        _, _, _, t = tree
        for leaf in t.leaves():
            assert t.is_descendant(leaf, t.root)
            if leaf.node_id != t.root_id:
                assert not t.is_descendant(t.root, leaf)

    def test_unindexed_partition_raises(self, tree):
        _, _, _, t = tree
        with pytest.raises(IndexError_):
            t.leaf_of(424242)


class TestParameters:
    def test_invalid_parameters_rejected(self, tree):
        venue, _, _, _t = tree
        with pytest.raises(IndexError_):
            build_nodes(venue, leaf_capacity=0)
        with pytest.raises(IndexError_):
            build_nodes(venue, fanout=1)

    def test_leaf_capacity_soft_limit(self, tree):
        """Grouping covers every partition exactly once even when the
        star topology forces absorbing rooms past the nominal capacity."""
        venue, _, _, _t = tree
        nodes, leaf_of = build_nodes(venue, leaf_capacity=5)
        leaves = [n for n in nodes if n.is_leaf]
        covered = [pid for leaf in leaves for pid in leaf.partitions]
        assert sorted(covered) == sorted(venue.partition_ids())
        assert set(leaf_of) == set(venue.partition_ids())

    def test_single_partition_venue(self):
        from repro import Point, Rect, VenueBuilder

        builder = VenueBuilder()
        room = builder.add_room(Rect(0, 0, 5, 5))
        builder.add_door(Point(0, 2, 0), room)  # exterior door
        venue = builder.build()
        tree = VIPTree(venue)
        assert tree.node_count == 1
        assert tree.root.is_leaf
