"""Unit tests for ASCII charts and CSV round-trips."""

import pytest

from repro.bench import Row, ascii_chart, plot_rows, read_csv, write_csv


def sample_rows():
    rows = []
    for value, eff, base in ((1000, 0.5, 0.3), (5000, 1.0, 2.0),
                             (10000, 1.5, 5.0)):
        rows.append(Row("fig7", "MC", "synthetic", "|C|", value,
                        "efficient", eff, eff * 10, 1.0))
        rows.append(Row("fig7", "MC", "synthetic", "|C|", value,
                        "baseline", base, base * 2, 1.0))
    return rows


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"efficient": [(1, 1.0), (2, 2.0)],
             "baseline": [(1, 3.0), (2, 9.0)]},
            title="demo",
        )
        assert chart.startswith("demo")
        assert "*" in chart and "o" in chart
        assert "log scale" in chart

    def test_overlapping_points_marked(self):
        chart = ascii_chart(
            {"efficient": [(1, 1.0)], "baseline": [(1, 1.0)]},
        )
        assert "#" in chart

    def test_single_point(self):
        chart = ascii_chart({"efficient": [(5, 2.0)]})
        assert "*" in chart

    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="t")

    def test_linear_scale(self):
        chart = ascii_chart(
            {"efficient": [(1, 1.0), (2, 2.0)]}, log_y=False
        )
        assert "log scale" not in chart

    def test_x_ticks_formatted(self):
        chart = ascii_chart(
            {"efficient": [(1000, 1.0), (20000, 2.0)]},
        )
        assert "1k" in chart and "20k" in chart


class TestPlotRows:
    def test_one_panel_per_group(self):
        rows = sample_rows() + [
            Row("fig7", "CPH", "synthetic", "|C|", 1000, "efficient",
                0.1, 1.0, 1.0)
        ]
        text = plot_rows(rows, "time")
        assert text.count("— time vs |C|") == 2

    def test_memory_metric(self):
        text = plot_rows(sample_rows(), "memory")
        assert "MB" in text

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            plot_rows(sample_rows(), "joules")


class TestCsvRoundTrip:
    def test_read_back_equals_written(self, tmp_path):
        rows = sample_rows()
        path = tmp_path / "rows.csv"
        write_csv(rows, path)
        loaded = read_csv(path)
        assert len(loaded) == len(rows)
        for original, copy in zip(rows, loaded):
            assert copy.key() == original.key()
            assert copy.algorithm == original.algorithm
            assert copy.time_seconds == pytest.approx(
                original.time_seconds, abs=1e-6
            )
            assert copy.memory_mb == pytest.approx(
                original.memory_mb, abs=1e-4
            )
