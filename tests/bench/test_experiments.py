"""Unit tests for the experiment harness (micro-scale runs)."""

import pytest

from repro.bench import (
    ABLATION_VARIANTS,
    EngineCache,
    Row,
    Scale,
    ablations,
    current_scale,
    default_fe,
    default_fn,
    extensions,
    fig5,
    fig6,
    fig78,
)
from repro.bench.reporting import (
    format_series,
    group_rows,
    summarize_speedups,
    write_csv,
)
from repro.bench.tables import format_table1, format_table2, table1_rows
from repro.datasets import CPH

TINY = Scale("tiny", 500, 1)


@pytest.fixture(scope="module")
def cache():
    return EngineCache()


class TestScale:
    def test_default_scale_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "small"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert current_scale().name == "medium"

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()

    def test_clients_floor(self):
        assert TINY.clients(1000) == 20

    def test_defaults_are_range_midpoints(self):
        assert default_fe("MC") == 75
        assert default_fn("MZB") == 500


class TestExperiments:
    def test_fig5_rows(self, cache):
        rows = fig5(
            scale=TINY,
            cache=cache,
            categories=("banks & services",),
            client_sizes=(1000,),
        )
        assert len(rows) == 2  # efficient + baseline
        assert {r.algorithm for r in rows} == {"efficient", "baseline"}
        assert all(r.experiment == "fig5" for r in rows)
        assert all(r.time_seconds > 0 for r in rows)
        # Both algorithms agree on the optimum.
        objectives = {round(r.objective or 0, 6) for r in rows}
        assert len(objectives) == 1

    def test_fig6_rows(self, cache):
        rows = fig6(
            scale=TINY, cache=cache, sigmas=(0.5,), venues=(CPH,)
        )
        settings = {(r.venue, r.setting) for r in rows}
        assert ("MC", "real") in settings
        assert (CPH, "synthetic") in settings

    def test_fig78_rows(self, cache):
        rows = fig78(scale=TINY, cache=cache, venues=(CPH,),
                     parts=("Fe",))
        values = sorted({r.value for r in rows})
        assert values == [10, 15, 20, 25, 30]
        assert all(r.parameter == "|Fe|" for r in rows)

    def test_ablation_rows(self, cache):
        rows = ablations(scale=TINY, cache=cache, venue_name=CPH)
        assert {r.algorithm for r in rows} == set(ABLATION_VARIANTS)
        objectives = {round(r.objective or 0, 6) for r in rows}
        assert len(objectives) == 1  # ablations do not change answers

    def test_extensions_rows(self, cache):
        rows = extensions(scale=TINY, cache=cache, venue_name=CPH)
        assert {r.setting for r in rows} == {"mindist", "maxsum"}
        by_setting = {}
        for row in rows:
            by_setting.setdefault(row.setting, {})[row.algorithm] = row
        for setting, algs in by_setting.items():
            assert algs["efficient"].objective == pytest.approx(
                algs["bruteforce"].objective
            )


class TestReporting:
    def _rows(self):
        return [
            Row("figX", "MC", "synthetic", "|C|", 1000, "efficient",
                0.5, 10.0, 1.0),
            Row("figX", "MC", "synthetic", "|C|", 1000, "baseline",
                1.5, 5.0, 1.0),
        ]

    def test_group_rows(self):
        grouped = group_rows(self._rows())
        assert len(grouped) == 1
        (key, algs), = grouped.items()
        assert set(algs) == {"efficient", "baseline"}

    def test_format_series_time(self):
        text = format_series(self._rows(), metric="time", title="T")
        assert "varying |C|" in text
        assert "3.00x" in text  # 1.5 / 0.5

    def test_format_series_memory(self):
        text = format_series(self._rows(), metric="memory")
        assert "0.50x" in text  # 5 / 10

    def test_format_series_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            format_series(self._rows(), metric="joules")

    def test_summarize_speedups(self):
        summary = summarize_speedups(self._rows())
        (label, (mean, peak)), = summary.items()
        assert mean == pytest.approx(3.0)
        assert peak == pytest.approx(3.0)

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out" / "rows.csv"
        write_csv(self._rows(), path)
        content = path.read_text().splitlines()
        assert len(content) == 3
        assert content[0].startswith("experiment,venue")


class TestTables:
    def test_table1_contains_all_references(self):
        text = format_table1()
        for entry in table1_rows():
            assert entry.reference.split()[0] in text

    def test_table1_row_count(self):
        assert len(table1_rows()) == 13

    def test_table2_contains_ranges(self):
        text = format_table2()
        assert "MC" in text and "MZB" in text
        assert "1k, 5k, 10k, 15k, 20k" in text
        assert "101, 54, 39, 19, 14" in text


class TestCounters:
    def test_counters_rows(self, cache):
        from repro.bench.counters import format_counters, measure_counters

        rows = measure_counters(scale=TINY, cache=cache, venues=(CPH,))
        assert {r.algorithm for r in rows} == {"efficient", "baseline"}
        efficient = next(r for r in rows if r.algorithm == "efficient")
        baseline = next(r for r in rows if r.algorithm == "baseline")
        # The baseline never prunes clients and never hits a memo; the
        # efficient approach reuses cached distances.
        assert baseline.clients_pruned == 0
        assert baseline.cache_hits == 0
        assert efficient.clients_pruned > 0
        assert efficient.queue_pops > 0
        assert efficient.cache_hits > 0
        text = format_counters(rows)
        assert "CPH" in text and "efficient" in text
        assert "cache_hits" in text


class TestStreamReplay:
    def test_modes_agree_and_rows_shape(self, cache):
        from repro.bench.experiments import stream_replay

        rows = stream_replay(
            scale=TINY, cache=cache, event_counts=(30,)
        )
        assert len(rows) == 2
        modes = {row.algorithm for row in rows}
        assert modes == {"incremental", "oracle"}
        for row in rows:
            assert row.experiment == "stream"
            assert row.parameter == "events"
            assert row.value == 30
            assert row.time_seconds > 0
