"""The programmatic EXPERIMENTS.md generator.

The report is a build artifact: :class:`repro.bench.report.DataProvider`
reads recorded experiment JSON plus perf-gate baselines, the
``section_*`` generators render Markdown from nothing else, and
``compose`` is deterministic byte for byte.  These tests drive the
pipeline over small synthetic fixtures (golden substrings per section,
byte-identity across runs, drift detection when a recorded value is
corrupted) and over the real committed artifacts (the committed
EXPERIMENTS.md must regenerate exactly — the same invariant CI's
``report-drift`` job enforces).
"""

import json
from pathlib import Path

import pytest

from repro.bench import regress, report
from repro.bench.experiments import Row
from repro.bench.report import DataProvider
from repro.bench.reporting import write_json
from repro.cli import main

REPO = Path(__file__).resolve().parents[2]


def _row(
    experiment,
    algorithm,
    time_seconds,
    venue="MC",
    setting="synthetic",
    parameter="|C|",
    value=1000.0,
    memory_mb=1.0,
    objective=None,
):
    return Row(
        experiment=experiment,
        venue=venue,
        setting=setting,
        parameter=parameter,
        value=value,
        algorithm=algorithm,
        time_seconds=time_seconds,
        memory_mb=memory_mb,
        objective=objective,
    )


@pytest.fixture
def recorded(tmp_path):
    """A results dir + baseline dir with one tiny recorded world."""
    results = tmp_path / "recorded"
    rows = []
    for value, base, fast in ((1000.0, 0.8, 0.2), (2000.0, 2.0, 0.4)):
        rows.append(_row("fig78", "efficient", fast, value=value))
        rows.append(_row("fig78", "baseline", base, value=value))
    write_json(rows, results / "fig78.json", experiment="fig78",
               scale="small")
    write_json(
        [
            _row("fig5", "efficient", 0.1, setting="FoodCourt"),
            _row("fig5", "baseline", 0.5, setting="FoodCourt"),
        ],
        results / "fig5.json", experiment="fig5", scale="small",
    )
    write_json(
        [
            _row("parallel", "parallel", 1.0, parameter="workers",
                 value=1.0),
            _row("parallel", "parallel", 0.5, parameter="workers",
                 value=2.0),
        ],
        results / "parallel.json", experiment="parallel", scale="small",
    )
    baseline = regress.Baseline(
        suite="matrix",
        runs=3,
        created="2026-01-01T00:00:00",
        git_sha="0123456789abcdef",
        fingerprint={"kernels": True},
        metrics={
            "matrix.CPH.viptree.efficient.distance_computations":
                (1234.0, regress.EXACT),
            "matrix.CPH.viptree.efficient.answer":
                (7.0, regress.EXACT),
            "matrix.CPH.viptree.efficient.seconds":
                (0.25, regress.WALL),
            "matrix.CPH.viptree.baseline.distance_computations":
                (8000.0, regress.EXACT),
            "matrix.CPH.viptree.baseline.answer":
                (7.0, regress.EXACT),
            "matrix.CPH.viptree.baseline.seconds":
                (0.75, regress.WALL),
            "matrix.CPH.viptree.d2d.checksum":
                (1111.5, regress.EXACT),
            "matrix.CPH.viptree.d2d.seconds": (0.03, regress.WALL),
            "matrix.CPH.doortable.d2d.checksum":
                (1111.5, regress.EXACT),
            "matrix.CPH.doortable.d2d.seconds": (0.01, regress.WALL),
            "kernels.CPH.distance_computations":
                (1234.0, regress.EXACT),
            "kernels.CPH.off.seconds": (0.5, regress.WALL),
            "kernels.CPH.on.seconds": (0.1, regress.WALL),
        },
    )
    baseline.save(tmp_path / "BENCH_matrix.json")
    return DataProvider(results_dir=results, baseline_dir=tmp_path)


class TestDataProvider:
    def test_inventory(self, recorded):
        assert recorded.experiments() == ["fig5", "fig78", "parallel"]
        assert recorded.scale("fig78") == "small"
        assert len(recorded.rows("fig78")) == 4
        assert recorded.suites() == ["matrix"]
        assert recorded.baseline("matrix").runs == 3

    def test_missing_data_is_empty_not_fatal(self, tmp_path):
        provider = DataProvider(
            results_dir=tmp_path / "none", baseline_dir=tmp_path
        )
        assert provider.experiments() == []
        assert provider.rows("fig78") == []
        assert provider.baseline("matrix") is None
        assert provider.metrics("matrix") == {}


class TestSections:
    """Golden substrings per section generator."""

    def test_provenance_lists_artifacts(self, recorded):
        text = report.section_provenance(recorded)
        assert "`benchmarks/recorded/fig78.json`" in text
        assert "`BENCH_matrix.json`" in text
        assert "0123456789" in text  # abbreviated git sha

    def test_parameters_from_harness_constants(self, recorded):
        from repro.bench.experiments import CLIENT_SIZES

        text = report.section_parameters(recorded)
        assert "| venue | |Fe| range | |Fn| range |" in text
        assert f"{CLIENT_SIZES[0] // 1000}k" in text

    def test_headline_speedups(self, recorded):
        text = report.section_headline(recorded)
        # 0.8/0.2 = 4x and 2.0/0.4 = 5x -> mean 4.50x, max 5.00x
        assert "4.50×" in text
        assert "5.00×" in text
        assert "2k" in text  # largest |C| axis label

    def test_fig5_table(self, recorded):
        text = report.section_fig5(recorded)
        assert "FoodCourt" in text
        assert "5.00×" in text  # 0.5 / 0.1

    def test_fig7_time_table(self, recorded):
        text = report.section_fig7(recorded)
        assert "varying |C|" in text
        assert "MC efficient" in text
        assert "0.2 s" in text

    def test_parallel_scaling(self, recorded):
        text = report.section_parallel(recorded)
        assert "| 1 | 1 s | 1.00× |" in text
        assert "| 2 | 0.5 s | 2.00× |" in text

    def test_matrix_tables(self, recorded):
        text = report.section_matrix(recorded)
        assert "| CPH | efficient | 1,234 | 7 | 0.25 s |" in text
        assert "| CPH | doortable | 1111.500000 | 0.01 s | 1.00× |" \
            in text
        assert "3.00×" in text  # viptree d2d vs doortable

    def test_kernels_table(self, recorded):
        text = report.section_kernels(recorded)
        assert "| CPH | 0.5 s | 0.1 s | 5.00× | 1,234 |" in text

    def test_missing_experiment_renders_placeholder(self, tmp_path):
        provider = DataProvider(
            results_dir=tmp_path, baseline_dir=tmp_path
        )
        for section in report.SECTIONS.values():
            text = section(provider)
            assert text.startswith("## ")

    def test_section_generators_have_no_numeric_literals(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_counters", REPO / "tools/check_counters.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.report_literal_violations() == []


class TestCompose:
    def test_every_section_present_and_counted(self, recorded):
        from repro.obs import observe

        with observe() as (tracer, registry):
            text = report.compose(recorded)
        assert text.startswith("# EXPERIMENTS")
        assert "GENERATED FILE" in text
        for section in report.SECTIONS.values():
            title = section(recorded).splitlines()[0]
            assert title in text
        names = [record.name for record in tracer.sorted_records()]
        assert "report.generate" in names
        assert registry.counter("report.sections").value == len(
            report.SECTIONS
        )

    def test_deterministic_byte_identical(self, recorded):
        assert report.compose(recorded) == report.compose(recorded)

    def test_generate_then_check_roundtrip(self, recorded, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        text = report.generate(recorded, out)
        assert out.read_text() == text
        ok, diff = report.check(recorded, out)
        assert ok and diff == ""

    def test_check_detects_corrupted_recorded_value(
        self, recorded, tmp_path
    ):
        out = tmp_path / "EXPERIMENTS.md"
        report.generate(recorded, out)
        # Corrupt one recorded measurement: the committed document no
        # longer matches what the data says.
        path = recorded.results_dir / "fig78.json"
        document = json.loads(path.read_text())
        document["rows"][0]["time_seconds"] *= 10.0
        path.write_text(json.dumps(document))
        fresh = DataProvider(
            results_dir=recorded.results_dir,
            baseline_dir=recorded.baseline_dir,
        )
        ok, diff = report.check(fresh, out)
        assert not ok
        assert "EXPERIMENTS.md" in diff and "+" in diff

    def test_check_detects_hand_edit(self, recorded, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        report.generate(recorded, out)
        out.write_text(
            out.read_text().replace("4.50×", "9.99×")
        )
        ok, diff = report.check(recorded, out)
        assert not ok
        assert "9.99×" in diff


class TestCli:
    def test_report_regenerates(self, recorded, tmp_path, capsys):
        out = tmp_path / "EXPERIMENTS.md"
        code = main([
            "report",
            "--results", str(recorded.results_dir),
            "--baselines", str(recorded.baseline_dir),
            "--out", str(out),
        ])
        assert code == 0
        assert out.is_file()
        assert "sections" in capsys.readouterr().out

    def test_report_check_passes_then_fails(
        self, recorded, tmp_path, capsys
    ):
        out = tmp_path / "EXPERIMENTS.md"
        args = [
            "report",
            "--results", str(recorded.results_dir),
            "--baselines", str(recorded.baseline_dir),
            "--out", str(out),
        ]
        assert main(args) == 0
        assert main(args + ["--check"]) == 0
        out.write_text(out.read_text() + "stray edit\n")
        assert main(args + ["--check"]) == 1
        captured = capsys.readouterr()
        assert "drifted" in captured.err


class TestCommittedArtifacts:
    """The repository's own report must regenerate byte-identically."""

    def test_committed_experiments_md_is_fresh(self):
        provider = DataProvider(
            results_dir=REPO / "benchmarks/recorded",
            baseline_dir=REPO,
        )
        ok, diff = report.check(provider, REPO / "EXPERIMENTS.md")
        assert ok, f"EXPERIMENTS.md drifted; run `ifls report`:\n{diff}"

    def test_matrix_suite_is_registered(self):
        assert "matrix" in regress.SUITES
        assert (REPO / "BENCH_matrix.json").is_file()
        baseline = regress.load_baseline(REPO / "BENCH_matrix.json")
        assert any(
            name.startswith("matrix.") for name in baseline.metrics
        )
