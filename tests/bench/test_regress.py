"""Perf-regression sentinel: recording, gating, and drift detection.

The real suites spawn process pools and answer dozens of queries, so
these tests register a tiny deterministic fake suite in
:data:`repro.bench.regress.SUITES` (restored afterwards) and drive
record/compare through it; one slow-marked smoke test exercises the
committed ``small`` suite end to end against ``BENCH_small.json``.
"""

import json
from pathlib import Path

import pytest

from repro.bench import regress
from repro.bench.regress import (
    Baseline,
    compare_to_baseline,
    gate,
    load_baseline,
    record_baseline,
)

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture
def fake_suite(monkeypatch):
    """A deterministic two-exact/one-wall suite named ``tiny``."""
    calls = {"count": 0}

    def build():
        calls["count"] += 1
        return {
            "tiny.counter": (42.0, regress.EXACT),
            "tiny.other": (7.0, regress.EXACT),
            "tiny.seconds": (0.5, regress.WALL),
        }

    monkeypatch.setitem(regress.SUITES, "tiny", build)
    return calls


class TestRecording:
    def test_record_medians_and_provenance(self, fake_suite, tmp_path):
        path = tmp_path / "BENCH_tiny.json"
        baseline = record_baseline("tiny", runs=3, path=path)
        assert fake_suite["count"] == 3
        assert baseline.suite == "tiny"
        assert baseline.runs == 3
        assert baseline.metrics["tiny.counter"] == (42.0, regress.EXACT)
        assert baseline.fingerprint == regress.machine_fingerprint()
        loaded = load_baseline(path)
        assert loaded.to_dict() == baseline.to_dict()

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError, match="unknown suite"):
            regress.run_suite("no-such-suite")

    def test_baseline_schema_guard(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "suite": "x"}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)


class TestComparison:
    def _baseline(self, **overrides):
        metrics = {
            "tiny.counter": (42.0, regress.EXACT),
            "tiny.other": (7.0, regress.EXACT),
            "tiny.seconds": (0.5, regress.WALL),
        }
        metrics.update(overrides)
        return Baseline(
            suite="tiny",
            runs=1,
            created="",
            git_sha=None,
            fingerprint=regress.machine_fingerprint(),
            metrics=metrics,
        )

    def _current(self, **overrides):
        current = {
            "tiny.counter": (42.0, regress.EXACT),
            "tiny.other": (7.0, regress.EXACT),
            "tiny.seconds": (0.5, regress.WALL),
        }
        current.update(overrides)
        return current

    def test_clean_comparison_passes(self):
        report = compare_to_baseline(self._baseline(), self._current())
        assert report.passed
        assert report.fingerprint_match
        assert "PASS" in report.describe()

    def test_exact_counter_has_zero_tolerance(self):
        current = self._current(
            **{"tiny.counter": (43.0, regress.EXACT)}
        )
        report = compare_to_baseline(self._baseline(), current)
        assert not report.passed
        assert [e.name for e in report.drifted] == ["tiny.counter"]
        assert "tiny.counter" in report.describe()
        assert "FAIL" in report.describe()

    def test_wall_tolerance_band(self):
        inside = self._current(**{"tiny.seconds": (0.7, regress.WALL)})
        assert compare_to_baseline(
            self._baseline(), inside, wall_tolerance=0.5
        ).passed
        outside = self._current(
            **{"tiny.seconds": (0.8, regress.WALL)}
        )
        report = compare_to_baseline(
            self._baseline(), outside, wall_tolerance=0.5
        )
        assert [e.name for e in report.drifted] == ["tiny.seconds"]

    def test_fingerprint_mismatch_skips_wall_not_exact(self):
        baseline = self._baseline()
        baseline.fingerprint = {"platform": "other-machine"}
        current = self._current(
            **{
                "tiny.seconds": (99.0, regress.WALL),
                "tiny.counter": (43.0, regress.EXACT),
            }
        )
        report = compare_to_baseline(baseline, current)
        assert not report.fingerprint_match
        statuses = {e.name: e.status for e in report.entries}
        assert statuses["tiny.seconds"] == "skipped"
        assert statuses["tiny.counter"] == "drift"

    def test_strict_wall_enforces_despite_mismatch(self):
        baseline = self._baseline()
        baseline.fingerprint = {"platform": "other-machine"}
        current = self._current(
            **{"tiny.seconds": (99.0, regress.WALL)}
        )
        report = compare_to_baseline(
            baseline, current, strict_wall=True
        )
        assert [e.name for e in report.drifted] == ["tiny.seconds"]

    def test_missing_and_new_metrics_fail(self):
        current = self._current()
        del current["tiny.other"]
        current["tiny.extra"] = (1.0, regress.EXACT)
        report = compare_to_baseline(self._baseline(), current)
        statuses = {e.name: e.status for e in report.entries}
        assert statuses["tiny.other"] == "missing"
        assert statuses["tiny.extra"] == "new"
        assert not report.passed


class TestGate:
    def test_gate_roundtrip_and_perturbation(self, fake_suite, tmp_path):
        path = tmp_path / "BENCH_tiny.json"
        record_baseline("tiny", runs=1, path=path)
        assert gate("tiny", path, runs=1).passed

        payload = json.loads(path.read_text())
        payload["metrics"]["tiny.counter"]["value"] = 41.0
        path.write_text(json.dumps(payload))
        report = gate("tiny", path, runs=1)
        assert not report.passed
        assert [e.name for e in report.drifted] == ["tiny.counter"]

    def test_gate_rejects_suite_mismatch(self, fake_suite, tmp_path):
        path = tmp_path / "BENCH_tiny.json"
        record_baseline("tiny", runs=1, path=path)
        with pytest.raises(ValueError, match="records suite"):
            gate("small", path, runs=1)


class TestCommittedBaseline:
    def test_small_baseline_is_committed_and_wellformed(self):
        path = REPO / "BENCH_small.json"
        assert path.is_file(), (
            "BENCH_small.json missing; record it with PYTHONPATH=src "
            "python benchmarks/record_baseline.py --suite small"
        )
        baseline = load_baseline(path)
        assert baseline.suite == "small"
        assert baseline.runs >= 5
        kinds = {kind for _, kind in baseline.metrics.values()}
        assert kinds == {regress.EXACT, regress.WALL}
        exact = [
            name
            for name, (_, kind) in baseline.metrics.items()
            if kind == regress.EXACT
        ]
        assert len(exact) >= 10

    @pytest.mark.slow
    def test_small_suite_exact_counters_match_baseline(self):
        """The committed baseline gates clean on this tree (1 run)."""
        path = REPO / "BENCH_small.json"
        baseline = load_baseline(path)
        recorded_mode = baseline.fingerprint.get("kernels")
        current_mode = regress.machine_fingerprint()["kernels"]
        if recorded_mode != current_mode:
            pytest.skip(
                "baseline recorded under kernel mode "
                f"{recorded_mode!r}; this run resolves "
                f"{current_mode!r} — memo-traffic counters differ by "
                "design between the paths"
            )
        report = gate("small", path, runs=1)
        exact_drift = [
            entry
            for entry in report.drifted
            if entry.kind == regress.EXACT
        ]
        assert exact_drift == [], report.describe()
