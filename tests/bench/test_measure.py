"""Unit tests for the benchmark measurement primitives."""

import pytest

from repro import IFLSEngine
from repro.bench import Measurement, compare, measure_query, timed
from repro.datasets import small_office
from tests.conftest import facility_split, make_clients


@pytest.fixture(scope="module")
def setup():
    venue = small_office(levels=2, rooms=24)
    engine = IFLSEngine(venue)
    rooms = sorted(
        p.partition_id for p in venue.partitions()
        if p.kind.value == "room"
    )
    clients = make_clients(venue, 20, seed=60)
    fs = facility_split(rooms, existing=3, candidates=5, seed=60)
    return engine, clients, fs


class TestMeasureQuery:
    def test_repeats_collected(self, setup):
        engine, clients, fs = setup
        m = measure_query(engine, clients, fs, "efficient", repeats=3)
        assert len(m.elapsed_seconds) == 3
        assert len(m.peak_memory_bytes) == 3
        assert m.mean_seconds > 0
        assert m.mean_memory_mb > 0
        assert m.objective is not None

    def test_memory_tracking_optional(self, setup):
        engine, clients, fs = setup
        m = measure_query(
            engine, clients, fs, "efficient",
            repeats=1, measure_memory=False,
        )
        assert m.peak_memory_bytes == [0]

    def test_objectives_stable_across_repeats(self, setup):
        engine, clients, fs = setup
        m = measure_query(engine, clients, fs, "baseline", repeats=2)
        assert m.label == "baseline"


class TestCompare:
    def test_compare_runs_both_algorithms(self, setup):
        engine, clients, fs = setup
        results = compare(engine, clients, fs, repeats=1)
        assert [m.label for m in results] == ["efficient", "baseline"]
        assert results[0].objective == pytest.approx(
            results[1].objective
        )


def test_timed_returns_positive_duration():
    assert timed(lambda: sum(range(1000))) > 0


def test_measurement_aggregates():
    m = Measurement(label="x")
    m.elapsed_seconds = [1.0, 3.0]
    m.peak_memory_bytes = [1024 * 1024, 3 * 1024 * 1024]
    assert m.mean_seconds == 2.0
    assert m.mean_memory_mb == 2.0
