"""Unit tests for the harness runner (tiny scale)."""

import pytest

from repro.bench import Scale
from repro.bench.runner import ALL_EXPERIMENTS, run_experiment

TINY = Scale("tiny", 500, 1)


class TestRunExperiment:
    def test_table1(self):
        lines = []
        rows = run_experiment("table1", scale=TINY, echo=lines.append)
        assert rows == []
        assert any("Table 1" in line for line in lines)

    def test_table2(self):
        lines = []
        run_experiment("table2", scale=TINY, echo=lines.append)
        assert any("Table 2" in line for line in lines)

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99", scale=TINY, echo=lambda *_: None)

    def test_fig7_writes_csv_and_summary(self, tmp_path):
        lines = []
        from repro.bench import EngineCache
        from repro.bench.experiments import fig78

        cache = EngineCache()
        # Narrow the figure to one small venue/part for test speed by
        # calling the experiment directly, then check the runner output
        # machinery via the 'ablation' experiment (small already).
        rows = fig78(scale=TINY, cache=cache, venues=("CPH",),
                     parts=("Fe",))
        assert rows

    def test_ablation_via_runner(self, tmp_path):
        lines = []
        rows = run_experiment(
            "ablation", scale=TINY, out_dir=tmp_path, echo=lines.append
        )
        assert rows
        assert (tmp_path / "ablation.csv").exists()
        assert any("Ablations" in line for line in lines)

    def test_counters_via_runner(self):
        lines = []
        rows = run_experiment("counters", scale=TINY, echo=lines.append)
        assert rows == []
        assert any("Operation counts" in line for line in lines)

    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "fig5", "fig6", "fig7", "fig8",
            "ablation", "extensions", "counters", "session",
            "parallel", "stream",
        }

    def test_session_via_runner(self):
        lines = []
        rows = run_experiment(
            "session", scale=TINY, echo=lines.append
        )
        assert rows == []
        text = "\n".join(lines)
        assert "identical" in text
        assert "warm" in text and "cold" in text

    def test_parallel_via_runner_writes_artifacts(self, tmp_path):
        lines = []
        rows = run_experiment(
            "parallel", scale=TINY, out_dir=tmp_path, echo=lines.append
        )
        assert rows
        assert {int(r.value) for r in rows} == {1, 2, 4, 8}
        text = "\n".join(lines)
        assert "answers identical: yes" in text
        assert "merged-counter invariants: ok" in text
        assert (tmp_path / "parallel.csv").exists()
        json_path = tmp_path / "parallel.json"
        assert json_path.exists()
        from repro.bench.reporting import read_json

        loaded = read_json(json_path)
        assert [r.value for r in loaded] == [r.value for r in rows]
