"""Unit tests for the reproduction sanity gate."""

from repro.bench.validate import ValidationReport, validate_reproduction


class TestValidationReport:
    def test_record_and_ok(self):
        report = ValidationReport()
        report.record("alpha", True)
        assert report.ok
        report.record("beta", False, "oops")
        assert not report.ok
        text = report.describe()
        assert "PASS  alpha" in text
        assert "FAIL  beta" in text
        assert "FAILED" in text

    def test_all_passing_message(self):
        report = ValidationReport()
        report.record("x", True)
        assert "all checks passed" in report.describe()


def test_validate_reproduction_small():
    report = validate_reproduction(client_count=30, seed=4)
    assert report.ok, report.describe()
    # 1 stats + 2 minmax + 2 extension checks per venue.
    assert len(report.checks) == 4 * 5
