"""Smoke tests for the repository tools."""

from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def _load_tool(name):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        name, ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_gen_api_docs_runs(tmp_path, monkeypatch):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", ROOT / "tools" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "OUT", tmp_path / "API.md")
    module.main()
    text = (tmp_path / "API.md").read_text()
    assert "# API reference" in text
    assert "repro.core.efficient" in text
    assert "repro.index.viptree" in text


def test_check_counters_invariants_hold():
    """The canned counter-drift workload reports zero violations."""
    module = _load_tool("check_counters")
    assert module.run_checks() == []


def test_check_counters_detects_drift():
    """A deliberately broken counter trips the checker."""
    from repro.core.stats import QueryStats

    module = _load_tool("check_counters")
    stats = QueryStats(algorithm="broken")
    stats.queue_pushes = 2
    stats.queue_pops = 5  # pops exceed pushes: impossible
    stats.iterations = 5
    violations = module.check_query_stats("broken", stats)
    assert any("queue_pops" in v for v in violations)
