"""Smoke tests for the repository tools."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def test_gen_api_docs_runs(tmp_path, monkeypatch):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", ROOT / "tools" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "OUT", tmp_path / "API.md")
    module.main()
    text = (tmp_path / "API.md").read_text()
    assert "# API reference" in text
    assert "repro.core.efficient" in text
    assert "repro.index.viptree" in text
