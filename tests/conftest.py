"""Shared fixtures: small venues, engines, and workload helpers.

Expensive structures (venues + VIP-trees) are session-scoped; tests
must not mutate them.  Anything mutable (clients, facility sets) is
function-scoped.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Client,
    FacilitySets,
    IFLSEngine,
    Point,
    Rect,
    VenueBuilder,
)
from repro.datasets import figure1_venue, small_office


def build_corridor_venue(rooms: int = 10, width: float = 50.0):
    """One corridor with ``rooms`` rooms on one side.

    Returns ``(venue, room_ids, corridor_id)``.
    """
    builder = VenueBuilder("corridor")
    corridor = builder.add_corridor(Rect(0, 4, width, 8))
    room_ids = []
    room_width = width / rooms
    for i in range(rooms):
        room = builder.add_room(
            Rect(i * room_width, 0, (i + 1) * room_width, 4)
        )
        builder.add_door(
            Point(i * room_width + room_width / 2, 4, 0), room, corridor
        )
        room_ids.append(room)
    return builder.build(), room_ids, corridor


def make_clients(venue, count: int, seed: int = 0):
    """Clients uniformly placed in room partitions (deterministic)."""
    rng = random.Random(seed)
    rooms = [p for p in venue.partitions() if p.kind.value == "room"]
    clients = []
    for i in range(count):
        partition = rng.choice(rooms)
        rect = partition.rect
        clients.append(
            Client(
                i,
                Point(
                    rng.uniform(rect.min_x, rect.max_x),
                    rng.uniform(rect.min_y, rect.max_y),
                    rect.level,
                ),
                partition.partition_id,
            )
        )
    return clients


@pytest.fixture(scope="session")
def corridor_venue():
    return build_corridor_venue()


@pytest.fixture(scope="session")
def office_venue():
    return small_office(levels=2, rooms=24)


@pytest.fixture(scope="session")
def office_engine(office_venue):
    return IFLSEngine(office_venue)


@pytest.fixture(scope="session")
def figure1():
    """The paper's Figure-1 example: venue, Fe, Fn, clients, names."""
    return figure1_venue()


@pytest.fixture(scope="session")
def figure1_engine(figure1):
    venue = figure1[0]
    return IFLSEngine(venue)


@pytest.fixture()
def rng():
    return random.Random(1234)


def facility_split(room_ids, existing: int, candidates: int, seed: int = 3):
    """Deterministic disjoint facility sets from a room-id list."""
    rng_ = random.Random(seed)
    sample = rng_.sample(list(room_ids), existing + candidates)
    return FacilitySets(
        frozenset(sample[:existing]), frozenset(sample[existing:])
    )
