"""In-process integration tests for the HTTP query service.

The service runs on its own event loop in a background thread; tests
speak real HTTP over localhost sockets.  Client requests run on the
test thread (or a dedicated client pool for the concurrency tests) —
never on the loop's default executor, which the service does not use
either (its flushes have a dedicated executor precisely so blocked
clients cannot starve them).
"""

import asyncio
import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import IFLSEngine, QueryRequest, QueryResponse, open_venue
from repro.service import IFLSService
from tests.conftest import facility_split, make_clients


class ServiceHarness:
    """One IFLSService on a private event loop + HTTP helpers."""

    def __init__(self, engine, **overrides):
        overrides.setdefault("port", 0)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.thread.start()
        self.service = IFLSService(engine, **overrides)
        self.call(self.service.start())
        self.port = self.service.port

    def call(self, coro, timeout=60.0):
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop
        ).result(timeout)

    def request(self, method, path, body=None, timeout=60.0):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )
        try:
            if isinstance(body, (dict, list)):
                body = json.dumps(body).encode("utf-8")
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def close(self):
        self.call(self.service.shutdown())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.loop.close()


@pytest.fixture(scope="module")
def rooms(office_venue):
    return sorted(
        p.partition_id for p in office_venue.partitions()
        if p.kind.value == "room"
    )


@pytest.fixture(scope="module")
def workload(office_venue, rooms):
    requests = []
    for i in range(10):
        requests.append(
            QueryRequest(
                clients=tuple(
                    make_clients(office_venue, 20, seed=500 + i)
                ),
                facilities=facility_split(rooms, 3, 6, seed=500 + i),
                objective=("minmax", "mindist", "maxsum")[i % 3],
                label=f"w{i}",
            )
        )
    return requests


@pytest.fixture(scope="module")
def oracle(office_venue, workload):
    """Serial cold answers the service must match bit-identically."""
    engine = IFLSEngine(office_venue)
    return [
        engine.query(
            r.clients, r.facilities, objective=r.objective, cold=True
        )
        for r in workload
    ]


@pytest.fixture(scope="module")
def harness(office_venue):
    h = ServiceHarness(
        open_venue(office_venue), flush_window=0.005, pool_size=2
    )
    yield h
    h.close()


class TestQueryEndpoint:
    def test_concurrent_clients_match_serial_oracle(
        self, harness, workload, oracle
    ):
        def post(request):
            return harness.request(
                "POST", "/query", request.to_payload()
            )

        with ThreadPoolExecutor(max_workers=8) as clients:
            outcomes = list(clients.map(post, workload))
        for (status, payload), want in zip(outcomes, oracle):
            assert status == 200
            response = QueryResponse.from_payload(payload)
            assert response.answer == want.answer
            assert response.objective_value == want.objective
            assert response.status == str(want.status)

    def test_malformed_json_is_400_protocol_error(self, harness):
        status, body = harness.request(
            "POST", "/query", body=b"{definitely not json"
        )
        assert status == 400
        assert body["error"] == "ProtocolError"
        assert body["status"] == 400

    def test_invalid_request_shape_is_400(self, harness):
        status, body = harness.request(
            "POST", "/query", {"clients": "nope"}
        )
        assert status == 400
        assert body["error"] == "ProtocolError"

    def test_non_efficient_algorithm_is_400(
        self, harness, workload
    ):
        payload = workload[0].to_payload()
        payload["algorithm"] = "baseline"
        status, body = harness.request("POST", "/query", payload)
        assert status == 400
        assert body["error"] == "QueryError"
        assert "efficient" in body["detail"]

    def test_tiny_timeout_is_504(self, harness, workload):
        payload = workload[0].to_payload()
        payload["timeout_seconds"] = 1e-6
        status, body = harness.request("POST", "/query", payload)
        assert status == 504
        assert body["error"] == "RequestTimeout"


class TestBatchEndpoint:
    def test_batch_preserves_request_order(
        self, harness, workload, oracle
    ):
        status, body = harness.request(
            "POST",
            "/batch",
            {"queries": [r.to_payload() for r in workload]},
        )
        assert status == 200
        responses = [
            QueryResponse.from_payload(p) for p in body["responses"]
        ]
        assert [r.label for r in responses] == [
            r.label for r in workload
        ]
        for response, want in zip(responses, oracle):
            assert response.answer == want.answer
            assert response.objective_value == want.objective

    def test_empty_batch_is_400(self, harness):
        status, body = harness.request("POST", "/batch", [])
        assert status == 400
        assert body["error"] == "ProtocolError"


class TestExplainEndpoint:
    def test_explained_query_stores_retrievable_report(
        self, harness, workload
    ):
        payload = workload[1].to_payload()
        payload["explain"] = True
        status, body = harness.request("POST", "/query", payload)
        assert status == 200
        explain_id = body["explain_id"]
        assert explain_id
        status, stored = harness.request(
            "GET", f"/explain/{explain_id}"
        )
        assert status == 200
        assert stored["explain_id"] == explain_id
        assert stored["report"]["answer"] == body["answer"]

    def test_unknown_explain_id_is_404(self, harness):
        status, body = harness.request("GET", "/explain/nosuch")
        assert status == 404
        assert body["error"] == "NotFound"


class TestIntrospection:
    def test_health_reports_identity(self, harness, office_venue):
        status, body = harness.request("GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["venue"] == office_venue.name
        assert body["uptime_seconds"] >= 0.0
        assert isinstance(body["queries_answered"], int)

    def test_metrics_ledger_telescopes_to_responses(
        self, harness, workload
    ):
        """The /metrics merged ledger grows by exactly the sum of the
        per-response distance deltas — no drops, no double counts."""
        _, before = harness.request("GET", "/metrics")
        summed = {}
        for request in workload[:4]:
            status, payload = harness.request(
                "POST", "/query", request.to_payload()
            )
            assert status == 200
            for key, value in payload["distance_delta"].items():
                summed[key] = summed.get(key, 0) + value
        _, after = harness.request("GET", "/metrics")
        assert after["ledger_violations"] == []
        grown = {
            key: after["ledger"].get(key, 0)
            - before["ledger"].get(key, 0)
            for key in after["ledger"]
        }
        assert {k: v for k, v in grown.items() if v} == {
            k: v for k, v in summed.items() if v
        }

    def test_metrics_exports_contract_names(self, harness):
        status, body = harness.request("GET", "/metrics")
        assert status == 200
        metrics = body["metrics"]
        assert "service.requests" in metrics["counters"]
        assert "service.request.seconds" in metrics["histograms"]
        assert "service.batch.size" in metrics["histograms"]
        assert "service.pool.sessions" in metrics["gauges"]
        assert body["batcher"]["queries_answered"] >= 1
        assert body["pool"]["created"] >= 1


class TestRouting:
    def test_unknown_route_is_404(self, harness):
        status, body = harness.request("GET", "/nope")
        assert status == 404
        assert body["error"] == "NotFound"

    def test_wrong_method_is_405(self, harness):
        for method, path in (
            ("GET", "/query"),
            ("GET", "/batch"),
            ("POST", "/metrics"),
            ("POST", "/health"),
        ):
            status, body = harness.request(method, path)
            assert status == 405, (method, path)
            assert body["error"] == "MethodNotAllowed"


class TestGracefulShutdown:
    def test_shutdown_drains_inflight_requests(
        self, office_venue, workload, oracle
    ):
        """Queries accepted before shutdown still get correct answers;
        the pool ledger survives the drain clean."""
        harness = ServiceHarness(
            open_venue(office_venue),
            flush_window=0.5,  # wide window: requests queue up
            pool_size=1,
        )
        try:
            def post(request):
                return harness.request(
                    "POST", "/query", request.to_payload()
                )

            with ThreadPoolExecutor(max_workers=6) as clients:
                futures = [
                    clients.submit(post, r) for r in workload[:6]
                ]
                # Let the requests reach the coalescer's window, then
                # drain while they are still pending.
                import time

                time.sleep(0.15)
                harness.call(harness.service.shutdown())
                outcomes = [f.result(timeout=60.0) for f in futures]
            for (status, payload), want in zip(outcomes, oracle):
                assert status == 200
                assert payload["answer"] == want.answer
            assert harness.service.pool.ledger_violations() == []
            assert (
                harness.service.coalescer.queries_answered == 6
            )
            with pytest.raises(OSError):
                harness.request("GET", "/health", timeout=2.0)
        finally:
            harness.loop.call_soon_threadsafe(harness.loop.stop)
            harness.thread.join(timeout=10.0)
            harness.loop.close()
