"""The wire codec, socket-free: bytes in, requests out."""

import json

import pytest

from repro.errors import (
    ProtocolError,
    QueryError,
    RequestTimeout,
)
from repro.service.protocol import (
    MAX_BODY_BYTES,
    HttpRequest,
    content_length,
    error_body,
    json_response,
    parse_batch_payload,
    parse_head,
    request_id_path,
)


class TestParseHead:
    def test_request_line_and_headers(self):
        head = (
            b"POST /query HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 42\r\n"
            b"\r\n"
        )
        request = parse_head(head)
        assert request.method == "POST"
        assert request.path == "/query"
        assert request.headers["content-length"] == "42"

    def test_method_is_upper_cased(self):
        request = parse_head(b"get /health HTTP/1.1\r\n\r\n")
        assert request.method == "GET"

    def test_malformed_request_line_raises(self):
        with pytest.raises(ProtocolError):
            parse_head(b"NOT-HTTP\r\n\r\n")


class TestContentLength:
    def test_missing_header_means_empty_body(self):
        assert content_length(HttpRequest("GET", "/health")) == 0

    def test_non_integer_raises(self):
        request = HttpRequest(
            "POST", "/query", headers={"content-length": "lots"}
        )
        with pytest.raises(ProtocolError):
            content_length(request)

    @pytest.mark.parametrize("raw", ["-1", str(MAX_BODY_BYTES + 1)])
    def test_out_of_bounds_raises(self, raw):
        request = HttpRequest(
            "POST", "/query", headers={"content-length": raw}
        )
        with pytest.raises(ProtocolError):
            content_length(request)


class TestBodyJson:
    def test_junk_body_raises_protocol_error(self):
        request = HttpRequest("POST", "/query", body=b"{not json")
        with pytest.raises(ProtocolError):
            request.json()

    def test_valid_body_decodes(self):
        request = HttpRequest("POST", "/query", body=b'{"a": 1}')
        assert request.json() == {"a": 1}


class TestBatchPayload:
    def test_bare_array_and_wrapped_object_agree(self):
        item = {
            "clients": [
                {"id": 0, "location": [1.0, 1.0, 0], "partition": 1}
            ],
            "existing": [1],
            "candidates": [2],
        }
        bare = parse_batch_payload([item])
        wrapped = parse_batch_payload({"queries": [item]})
        assert bare == wrapped
        assert len(bare) == 1

    def test_empty_batch_raises(self):
        with pytest.raises(ProtocolError):
            parse_batch_payload([])

    def test_non_array_raises(self):
        with pytest.raises(ProtocolError):
            parse_batch_payload({"not": "queries"})


class TestErrorBody:
    def test_single_mapping_place(self):
        for exc, status in (
            (ProtocolError("bad"), 400),
            (QueryError("bad"), 400),
            (RequestTimeout("late"), 504),
            (RuntimeError("boom"), 500),
        ):
            got_status, body = error_body(exc)
            assert got_status == status
            assert body["error"] == type(exc).__name__
            assert body["status"] == status
            assert body["detail"]


class TestJsonResponse:
    def test_head_and_body_round_trip(self):
        raw = json_response(200, {"answer": 5})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: close" in lines
        assert json.loads(body) == {"answer": 5}


class TestRequestIdPath:
    def test_extracts_trailing_id(self):
        assert request_id_path("/explain/q12", "/explain/") == "q12"

    def test_rejects_nested_and_empty(self):
        assert request_id_path("/explain/", "/explain/") is None
        assert request_id_path("/explain/a/b", "/explain/") is None
        assert request_id_path("/metrics", "/explain/") is None


class TestStreamParsers:
    def test_open_payload_defaults(self):
        from repro.service.protocol import parse_stream_open_payload

        fs, incremental, label = parse_stream_open_payload(
            {"existing": [3, 1], "candidates": [5]}
        )
        assert fs.existing == frozenset({1, 3})
        assert fs.candidates == frozenset({5})
        assert incremental is True
        assert label == ""

    def test_open_payload_flags(self):
        from repro.service.protocol import parse_stream_open_payload

        _, incremental, label = parse_stream_open_payload(
            {"candidates": [2], "incremental": False, "label": "lob"}
        )
        assert incremental is False
        assert label == "lob"

    def test_open_payload_rejects_garbage(self):
        from repro.service.protocol import parse_stream_open_payload

        with pytest.raises(ProtocolError):
            parse_stream_open_payload([1, 2])
        with pytest.raises(ProtocolError):
            parse_stream_open_payload({"existing": ["x"]})

    def test_events_payload_both_spellings(self):
        from repro.service.protocol import parse_events_payload

        record = {"kind": "remove", "id": 7}
        assert parse_events_payload([record])[0].client_id == 7
        assert parse_events_payload({"events": [record]})[0].kind == (
            "remove"
        )
        assert parse_events_payload([]) == []
        assert parse_events_payload({"events": []}) == []

    def test_events_payload_rejects_non_array(self):
        from repro.service.protocol import parse_events_payload

        with pytest.raises(ProtocolError):
            parse_events_payload({"not_events": []})
        with pytest.raises(ProtocolError):
            parse_events_payload("remove 7")
        with pytest.raises(ProtocolError):
            parse_events_payload([{"kind": "add", "id": 1}])
