"""SessionPool: ledger isolation, delta merge, pressure eviction."""

import threading

import pytest

from repro import IFLSEngine
from repro.api import Engine
from repro.core.stats import distance_invariant_violations
from repro.errors import ServiceError
from repro.service import SessionPool
from tests.conftest import facility_split, make_clients


@pytest.fixture(scope="module")
def snapshot(request):
    venue = request.getfixturevalue("office_venue")
    return Engine(IFLSEngine(venue)).snapshot()


@pytest.fixture(scope="module")
def workload(request):
    venue = request.getfixturevalue("office_venue")
    rooms = sorted(
        p.partition_id for p in venue.partitions()
        if p.kind.value == "room"
    )
    return [
        (
            make_clients(venue, 20, seed=70 + i),
            facility_split(rooms, 3, 6, seed=70 + i),
        )
        for i in range(6)
    ]


class TestCheckoutCheckin:
    def test_sessions_have_distinct_stats_objects(self, snapshot):
        pool = SessionPool(snapshot, size=2)
        first = pool.checkout()
        second = pool.checkout()
        try:
            assert first is not second
            assert (
                first.distances.stats is not second.distances.stats
            )
        finally:
            pool.checkin(first)
            pool.checkin(second)
            pool.close()

    def test_checkout_blocks_then_times_out(self, snapshot):
        pool = SessionPool(snapshot, size=1)
        session = pool.checkout()
        try:
            with pytest.raises(ServiceError):
                pool.checkout(timeout=0.05)
        finally:
            pool.checkin(session)
            pool.close()

    def test_checkin_returns_session_to_waiter(self, snapshot):
        pool = SessionPool(snapshot, size=1)
        session = pool.checkout()
        got = []

        def waiter():
            with pool.session(timeout=5.0) as borrowed:
                got.append(borrowed)

        thread = threading.Thread(target=waiter)
        thread.start()
        pool.checkin(session)
        thread.join(timeout=5.0)
        assert got == [session]
        pool.close()

    def test_foreign_checkin_rejected(self, snapshot):
        pool = SessionPool(snapshot, size=1)
        stranger = snapshot.session()
        with pytest.raises(ServiceError):
            pool.checkin(stranger)
        pool.close()


class TestLedger:
    def test_deltas_telescope_to_pool_ledger(self, snapshot, workload):
        """Sum of per-query record deltas == merged pool ledger, and
        the merged ledger keeps the single-engine invariants."""
        pool = SessionPool(snapshot, size=2)
        summed = {}
        for clients, facilities in workload:
            with pool.session() as session:
                session.query(clients, facilities)
                record = session.take_records()[-1]
                for key, value in record.distance_delta.items():
                    summed[key] = summed.get(key, 0) + value
        ledger = pool.ledger()
        assert pool.ledger_violations() == []
        assert distance_invariant_violations(ledger) == []
        assert {k: v for k, v in ledger.items() if v} == {
            k: v for k, v in summed.items() if v
        }
        assert pool.stats().queries_answered == len(workload)
        pool.close()

    def test_double_checkin_cycle_never_double_counts(
        self, snapshot, workload
    ):
        pool = SessionPool(snapshot, size=1)
        clients, facilities = workload[0]
        with pool.session() as session:
            session.query(clients, facilities)
        first = pool.ledger()
        # An idle checkout/checkin with no work must not change totals.
        with pool.session():
            pass
        assert pool.ledger() == first
        pool.close()


class TestPressureEviction:
    def test_idle_caches_dropped_under_byte_budget(
        self, snapshot, workload
    ):
        pool = SessionPool(snapshot, size=1, cache_bytes_budget=1)
        clients, facilities = workload[1]
        with pool.session() as session:
            session.query(clients, facilities)
            held = session.distances.cache_bytes()
            entries = session.cache_entries
            assert held > 1
            assert entries > 0
        stats = pool.stats()
        assert stats.evictions >= 1
        # The memos are gone; only empty-table overhead remains.
        assert stats.cache_bytes < held
        assert session.cache_entries == 0
        assert pool.ledger_violations() == []
        pool.close()

    def test_no_budget_means_no_eviction(self, snapshot, workload):
        pool = SessionPool(snapshot, size=1)
        clients, facilities = workload[2]
        with pool.session() as session:
            session.query(clients, facilities)
        stats = pool.stats()
        assert stats.evictions == 0
        assert stats.cache_bytes > 0
        pool.close()


class TestClose:
    def test_close_retires_idle_and_refuses_checkout(
        self, snapshot, workload
    ):
        pool = SessionPool(snapshot, size=2)
        clients, facilities = workload[3]
        with pool.session() as session:
            session.query(clients, facilities)
        before = pool.ledger()
        pool.close()
        stats = pool.stats()
        assert stats.idle == 0
        assert stats.retired >= 1
        assert pool.ledger() == before  # merged before retiring
        with pytest.raises(ServiceError):
            pool.checkout(timeout=0.01)

    def test_inflight_session_retires_at_checkin(
        self, snapshot, workload
    ):
        pool = SessionPool(snapshot, size=1)
        clients, facilities = workload[4]
        session = pool.checkout()
        session.query(clients, facilities)
        pool.close()
        pool.checkin(session)  # drains into ledger, then retires
        assert pool.stats().checked_out == 0
        assert pool.stats().retired == 1
        assert pool.ledger_violations() == []
