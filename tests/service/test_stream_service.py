"""In-process integration tests for the /stream endpoints.

Reuses the :class:`ServiceHarness` loop-in-a-thread rig; the oracle
guarantee is asserted over the wire: an incremental stream and an
oracle stream fed identical events answer bit-identically per event.
"""

import pytest

from repro import IFLSEngine, open_venue
from repro.core.stream import (
    STREAM_FORMAT,
    ClientEvent,
    synthetic_events,
)
from repro.datasets import small_office
from tests.conftest import facility_split
from tests.service.test_server import ServiceHarness


@pytest.fixture(scope="module")
def venue():
    return small_office(levels=2, rooms=24)


@pytest.fixture(scope="module")
def fs(venue):
    rooms = sorted(
        p.partition_id for p in venue.partitions()
        if p.kind.value == "room"
    )
    return facility_split(rooms, existing=3, candidates=6, seed=77)


@pytest.fixture(scope="module")
def events(venue):
    return synthetic_events(venue, initial=20, events=40, seed=13)


@pytest.fixture()
def harness(venue):
    h = ServiceHarness(open_venue(venue), flush_window=0.005)
    yield h
    h.close()


def open_payload(fs, **extra):
    payload = {
        "existing": sorted(fs.existing),
        "candidates": sorted(fs.candidates),
    }
    payload.update(extra)
    return payload


def open_stream(harness, fs, **extra):
    status, body = harness.request(
        "POST", "/stream", open_payload(fs, **extra)
    )
    assert status == 200
    return body


class TestStreamLifecycle:
    def test_open_answers_id_and_format(self, harness, fs):
        body = open_stream(harness, fs, label="lobby")
        assert body["format"] == STREAM_FORMAT
        assert body["incremental"] is True
        assert body["label"] == "lobby"
        assert body["stream_id"]

    def test_get_delete_roundtrip(self, harness, fs, events):
        sid = open_stream(harness, fs)["stream_id"]
        status, body = harness.request(
            "POST", f"/stream/{sid}/events",
            {"events": [e.to_payload() for e in events[:10]]},
        )
        assert status == 200
        assert len(body["answers"]) == 10
        status, snapshot = harness.request("GET", f"/stream/{sid}")
        assert status == 200
        assert snapshot["answer"] == body["answers"][-1]
        assert snapshot["client_count"] == body["client_count"]
        assert snapshot["stats"]["events"] == 10
        status, closed = harness.request("DELETE", f"/stream/{sid}")
        assert status == 200 and closed["closed"]
        status, _ = harness.request("DELETE", f"/stream/{sid}")
        assert status == 404

    def test_bare_array_body_accepted(self, harness, fs, events):
        sid = open_stream(harness, fs)["stream_id"]
        status, body = harness.request(
            "POST", f"/stream/{sid}/events",
            [e.to_payload() for e in events[:5]],
        )
        assert status == 200
        assert len(body["answers"]) == 5

    def test_empty_batch_is_noop(self, harness, fs):
        sid = open_stream(harness, fs)["stream_id"]
        status, body = harness.request(
            "POST", f"/stream/{sid}/events", {"events": []}
        )
        assert status == 200
        assert body["answers"] == []
        assert body["stats"]["events"] == 0

    def test_unknown_stream_404(self, harness):
        status, body = harness.request("GET", "/stream/zzz")
        assert status == 404
        status, body = harness.request(
            "POST", "/stream/zzz/events", {"events": []}
        )
        assert status == 404

    def test_unknown_client_remove_400(self, harness, fs):
        sid = open_stream(harness, fs)["stream_id"]
        status, body = harness.request(
            "POST", f"/stream/{sid}/events",
            {"events": [{"kind": "remove", "id": 12345}]},
        )
        assert status == 400
        assert body["error"] == "QueryError"
        assert "12345" in body["detail"]

    def test_capacity_limit_400(self, venue, fs):
        harness = ServiceHarness(
            open_venue(venue), flush_window=0.005, stream_capacity=2
        )
        try:
            open_stream(harness, fs)
            open_stream(harness, fs)
            status, body = harness.request(
                "POST", "/stream", open_payload(fs)
            )
            assert status == 400
            assert "capacity" in body["detail"]
        finally:
            harness.close()

    def test_metrics_count_open_streams(self, harness, fs, events):
        sid = open_stream(harness, fs)["stream_id"]
        harness.request(
            "POST", f"/stream/{sid}/events",
            [e.to_payload() for e in events[:7]],
        )
        status, metrics = harness.request("GET", "/metrics")
        assert status == 200
        assert metrics["streams"]["open"] == 1
        assert metrics["streams"]["events"] == 7


class TestServiceOracleIdentity:
    def test_service_streams_match_library_oracle(
        self, harness, venue, fs, events
    ):
        fast = open_stream(harness, fs)["stream_id"]
        slow = open_stream(harness, fs, incremental=False)["stream_id"]
        payloads = [e.to_payload() for e in events]
        status, a = harness.request(
            "POST", f"/stream/{fast}/events", {"events": payloads}
        )
        assert status == 200
        status, b = harness.request(
            "POST", f"/stream/{slow}/events", {"events": payloads}
        )
        assert status == 200
        assert len(a["answers"]) == len(b["answers"]) == len(events)
        for one, two in zip(a["answers"], b["answers"]):
            assert one["answer"] == two["answer"]
            assert one["objective"] == two["objective"]
            assert one["status"] == two["status"]
        # And both match an in-process replay on a cold engine.
        local = IFLSEngine(venue)
        oracle = open_venue(venue).stream(fs, incremental=False)
        del local
        for wire, event in zip(a["answers"], events):
            answer = oracle.apply(event)
            assert wire["answer"] == answer.answer
            assert wire["objective"] == answer.objective
        assert a["stats"]["skips"] > 0
        assert b["stats"]["skips"] == 0

    def test_mid_batch_error_keeps_prefix(self, harness, fs, events):
        sid = open_stream(harness, fs)["stream_id"]
        good = [e.to_payload() for e in events[:4]]
        bad = ClientEvent.remove(99999).to_payload()
        status, body = harness.request(
            "POST", f"/stream/{sid}/events",
            {"events": good + [bad] + good},
        )
        assert status == 400
        status, snapshot = harness.request("GET", f"/stream/{sid}")
        assert status == 200
        assert snapshot["stats"]["events"] == 4
