"""End-to-end telemetry: correlation ids across every layer, the
flight recorder under live traffic, structured logs, and Prometheus
exposition over HTTP.

The central invariant: one HTTP request = one ``r…`` request id, and
that same id must appear on the server span, the pool checkout, the
coalesced flush that carried the queries, every response payload, and
the structured log line — with zero trust between the layers (each
records the id independently).
"""

import http.client
import io
import json
import threading

import pytest

from repro import QueryRequest, open_venue
from repro.core.session import BatchQuery
from repro.core.stream import ClientEvent
from repro.obs import trace as trace_module
from repro.obs.prometheus import lint_exposition
from repro.obs.trace import SpanRecord, Tracer
from tests.conftest import facility_split, make_clients

from .test_server import ServiceHarness


@pytest.fixture(scope="module")
def rooms(office_venue):
    return sorted(
        p.partition_id for p in office_venue.partitions()
        if p.kind.value == "room"
    )


@pytest.fixture(scope="module")
def workload(office_venue, rooms):
    requests = []
    for i in range(6):
        requests.append(
            QueryRequest(
                clients=tuple(
                    make_clients(office_venue, 15, seed=700 + i)
                ),
                facilities=facility_split(rooms, 3, 5, seed=700 + i),
                objective=("minmax", "mindist", "maxsum")[i % 3],
                label=f"t{i}",
            )
        )
    return requests


@pytest.fixture()
def harness(office_venue):
    h = ServiceHarness(
        open_venue(office_venue),
        flush_window=0.005,
        pool_size=2,
        log_stream=io.StringIO(),
    )
    yield h
    h.close()


def log_events(harness):
    """The structured log parsed back, one dict per line."""
    return [
        json.loads(line)
        for line in harness.service.config.log_stream.getvalue()
        .splitlines()
    ]


def raw_request(harness, method, path, headers=None):
    """HTTP helper that does not assume a JSON body."""
    conn = http.client.HTTPConnection(
        "127.0.0.1", harness.port, timeout=60.0
    )
    try:
        conn.request(method, path, headers=headers or {})
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type"),
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


class TestCorrelation:
    def test_one_request_id_spans_every_layer(
        self, harness, workload
    ):
        """POST /batch: the minted id reaches the server span, the pool
        checkout, the flush, all response payloads, and the log."""
        status, body = harness.request(
            "POST",
            "/batch",
            {"queries": [r.to_payload() for r in workload[:4]]},
        )
        assert status == 200
        rids = {p["request_id"] for p in body["responses"]}
        assert len(rids) == 1
        rid = rids.pop()
        assert rid.startswith("r")

        records = harness.service.flight.records()
        by_name = {}
        for record in records:
            by_name.setdefault(record.name, []).append(record)

        server_spans = [
            r
            for r in by_name.get("service.request", [])
            if r.attrs.get("request_id") == rid
        ]
        assert len(server_spans) == 1
        assert server_spans[0].attrs["path"] == "/batch"

        checkouts = [
            r
            for r in by_name.get("service.pool.checkout", [])
            if rid in r.attrs.get("request_ids", [])
        ]
        assert checkouts, "no pool checkout tagged with the rid"

        flushes = [
            r
            for r in by_name.get("service.batch.flush", [])
            if rid in r.attrs.get("request_ids", [])
        ]
        assert flushes, "no coalesced flush tagged with the rid"
        assert sum(f.attrs["queries"] for f in flushes) >= 4

        logged = [
            e
            for e in log_events(harness)
            if e["event"] == "service.request"
            and e["request_id"] == rid
        ]
        assert len(logged) == 1
        line = logged[0]
        assert line["status"] == 200
        assert line["method"] == "POST"
        assert line["path"] == "/batch"
        assert line["backend"] == "viptree"
        assert line["seconds"] >= 0.0

    def test_single_query_log_carries_solver_fields(
        self, harness, workload
    ):
        status, body = harness.request(
            "POST", "/query", workload[0].to_payload()
        )
        assert status == 200
        rid = body["request_id"]
        (line,) = [
            e
            for e in log_events(harness)
            if e["event"] == "service.request"
            and e["request_id"] == rid
        ]
        assert line["objective"] == workload[0].objective
        assert line["algorithm"] == "efficient"
        assert line["answer"] == body["answer"]
        assert line["distance_delta"] == body["distance_delta"]
        assert line["solver_seconds"] == body["elapsed_seconds"]

    def test_request_ids_are_distinct_per_request(
        self, harness, workload
    ):
        ids = []
        for request in workload[:3]:
            _, body = harness.request(
                "POST", "/query", request.to_payload()
            )
            ids.append(body["request_id"])
        assert len(set(ids)) == 3

    def test_stream_events_tagged_with_request_id(
        self, harness, rooms, office_venue
    ):
        facilities = facility_split(rooms, 3, 5, seed=41)
        status, opened = harness.request(
            "POST",
            "/stream",
            {
                "existing": sorted(facilities.existing),
                "candidates": sorted(facilities.candidates),
            },
        )
        assert status == 200
        stream_id = opened["stream_id"]
        clients = make_clients(office_venue, 3, seed=42)
        events = [
            ClientEvent("add", c.client_id, c).to_payload()
            for c in clients
        ]
        status, body = harness.request(
            "POST", f"/stream/{stream_id}/events", {"events": events}
        )
        assert status == 200
        event_spans = [
            r
            for r in harness.service.flight.records()
            if r.name == "stream.event"
        ]
        assert len(event_spans) == 3
        rids = {r.attrs.get("request_id") for r in event_spans}
        assert len(rids) == 1
        rid = rids.pop()
        assert rid and rid.startswith("r")
        # Same id on the enclosing server span.
        assert any(
            r.name == "service.request"
            and r.attrs.get("request_id") == rid
            for r in harness.service.flight.records()
        )


class TestFlightDump:
    def test_504_dumps_the_flight_tail(self, harness, workload):
        payload = workload[0].to_payload()
        payload["timeout_seconds"] = 1e-6
        status, body = harness.request("POST", "/query", payload)
        assert status == 504
        assert body["error"] == "RequestTimeout"

        status, dump = harness.request(
            "GET", "/debug/flight?last=10"
        )
        assert status == 200
        failed = [
            r
            for r in dump["records"]
            if r["name"] == "service.request"
            and r["attrs"].get("error") == "RequestTimeout"
        ]
        assert failed, "504'd request span missing from the flight"
        rid = failed[-1]["attrs"]["request_id"]

        dumps = [
            e for e in log_events(harness) if e["event"] == "flight.dump"
        ]
        assert len(dumps) == 1
        assert dumps[0]["trigger"] == "http_504"
        assert dumps[0]["request_id"] == rid
        assert dumps[0]["records"], "dump log carries no records"

    def test_debug_flight_respects_last_and_validates_it(
        self, harness, workload
    ):
        for request in workload[:3]:
            harness.request("POST", "/query", request.to_payload())
        status, dump = harness.request("GET", "/debug/flight?last=2")
        assert status == 200
        assert len(dump["records"]) == 2
        assert dump["appended"] >= dump["dropped"]
        status, body = harness.request(
            "GET", "/debug/flight?last=potato"
        )
        assert status == 400
        assert body["error"] == "ProtocolError"

    def test_debug_flight_rejects_post(self, harness):
        status, body = harness.request("POST", "/debug/flight")
        assert status == 405
        assert body["error"] == "MethodNotAllowed"


class TestPrometheusEndpoint:
    def test_format_param_negotiates_exposition(
        self, harness, workload
    ):
        harness.request("POST", "/query", workload[0].to_payload())
        status, content_type, text = raw_request(
            harness, "GET", "/metrics?format=prometheus"
        )
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert "ifls_service_requests_total" in text
        assert lint_exposition(text) == []

    def test_accept_header_negotiates_exposition(
        self, harness, workload
    ):
        harness.request("POST", "/query", workload[1].to_payload())
        status, content_type, text = raw_request(
            harness,
            "GET",
            "/metrics",
            headers={"Accept": "text/plain"},
        )
        assert status == 200
        assert content_type.startswith("text/plain")
        assert text.startswith("# HELP")

    def test_default_stays_json(self, harness):
        status, content_type, text = raw_request(
            harness, "GET", "/metrics"
        )
        assert status == 200
        assert content_type == "application/json"
        assert "ledger" in json.loads(text)

    def test_explicit_json_format_wins_over_accept(self, harness):
        status, content_type, _text = raw_request(
            harness,
            "GET",
            "/metrics?format=json",
            headers={"Accept": "text/plain"},
        )
        assert status == 200
        assert content_type == "application/json"


class TestHealthGauges:
    def test_health_includes_pool_stream_flight_snapshots(
        self, harness, workload, rooms
    ):
        harness.request("POST", "/query", workload[0].to_payload())
        facilities = facility_split(rooms, 3, 5, seed=43)
        harness.request(
            "POST",
            "/stream",
            {
                "existing": sorted(facilities.existing),
                "candidates": sorted(facilities.candidates),
            },
        )
        status, body = harness.request("GET", "/health")
        assert status == 200
        assert body["pool"]["sessions"] >= 1
        assert body["pool"]["cache_bytes"] >= 0
        assert (
            body["pool"]["idle"] + body["pool"]["checked_out"]
            == body["pool"]["sessions"]
        )
        assert body["streams"]["open"] == 1
        assert body["streams"]["capacity"] == 32
        flight = body["flight"]
        assert flight["capacity"] == 256
        assert 0 < flight["records"] <= flight["capacity"]
        assert flight["dropped"] == max(
            0, harness.service.flight.appended - flight["capacity"]
        )


class TestFlightConcurrency:
    def test_ring_wraparound_exact_under_concurrent_traffic(
        self, office_venue, rooms
    ):
        """A tiny ring hammered by concurrent /query and /stream
        traffic: no tearing, and the dropped/appended identity plus the
        flight.* counters stay exact."""
        harness = ServiceHarness(
            open_venue(office_venue),
            flush_window=0.002,
            pool_size=2,
            flight_capacity=8,
            log_stream=io.StringIO(),
        )
        try:
            requests = [
                QueryRequest(
                    clients=tuple(
                        make_clients(office_venue, 10, seed=900 + i)
                    ),
                    facilities=facility_split(
                        rooms, 3, 5, seed=900 + i
                    ),
                    objective="minmax",
                    label=f"c{i}",
                )
                for i in range(6)
            ]
            facilities = facility_split(rooms, 3, 5, seed=950)
            _, opened = harness.request(
                "POST",
                "/stream",
                {
                    "existing": sorted(facilities.existing),
                    "candidates": sorted(facilities.candidates),
                },
            )
            stream_id = opened["stream_id"]
            clients = make_clients(office_venue, 12, seed=951)
            statuses = []

            def post_query(request):
                status, _ = harness.request(
                    "POST", "/query", request.to_payload()
                )
                statuses.append(status)

            def post_events():
                for client in clients:
                    status, _ = harness.request(
                        "POST",
                        f"/stream/{stream_id}/events",
                        {
                            "events": [
                                ClientEvent(
                                    "add", client.client_id, client
                                ).to_payload()
                            ]
                        },
                    )
                    statuses.append(status)

            threads = [
                threading.Thread(target=post_query, args=(r,))
                for r in requests
            ] + [threading.Thread(target=post_events)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert statuses and all(s == 200 for s in statuses)

            flight = harness.service.flight
            appended = flight.appended
            assert appended > 8  # the ring genuinely wrapped
            assert flight.dropped == appended - 8
            records = flight.records()
            assert len(records) == 8
            for record in records:
                assert isinstance(record, SpanRecord)
                assert record.name
                assert record.duration >= 0.0
            counters = harness.service.metrics.snapshot()["counters"]
            assert counters["flight.records"]["value"] == appended
            assert (
                counters["flight.dropped"]["value"] == flight.dropped
            )
        finally:
            harness.close()


class TestLibraryCorrelation:
    def test_engine_query_mints_and_echoes_q_ids(self, office_venue):
        engine = open_venue(office_venue)
        rooms = sorted(
            p.partition_id
            for p in office_venue.partitions()
            if p.kind.value == "room"
        )
        request = QueryRequest(
            clients=tuple(make_clients(office_venue, 10, seed=1)),
            facilities=facility_split(rooms, 3, 5),
        )
        first = engine.query(request)
        second = engine.query(request)
        assert first.request_id.startswith("q")
        assert second.request_id.startswith("q")
        assert first.request_id != second.request_id
        # Caller-provided ids pass through untouched.
        import dataclasses

        tagged = dataclasses.replace(request, request_id="mine")
        assert engine.query(tagged).request_id == "mine"

    def test_parallel_shards_carry_request_ids(self, office_engine):
        """workers=2: every absorbed shard span and per-query session
        span carries the submitting queries' correlation ids."""
        venue = office_engine.venue
        rooms = [
            p.partition_id
            for p in venue.partitions()
            if p.kind.value == "room"
        ]
        batch = [
            BatchQuery(
                tuple(make_clients(venue, 10, seed=60 + i)),
                facility_split(rooms, 3, 5, seed=60 + i),
                objective="minmax",
                label=f"p{i}",
                request_id=f"x{i}",
            )
            for i in range(4)
        ]
        session = office_engine.session(keep_records=True)
        tracer = Tracer()
        with trace_module.use(tracer):
            session.run(batch, workers=2)
        spans = tracer.sorted_records()
        shard_spans = [
            s for s in spans if s.name == "parallel.shard"
        ]
        assert len(shard_spans) == 2
        shard_ids = sorted(
            rid
            for s in shard_spans
            for rid in s.attrs["request_ids"]
        )
        assert shard_ids == ["x0", "x1", "x2", "x3"]
        query_spans = [
            s for s in spans if s.name == "session.query"
        ]
        assert sorted(
            s.attrs["request_id"] for s in query_spans
        ) == ["x0", "x1", "x2", "x3"]
        # The session records carry the ids in submission order.
        records = session.take_records()
        assert [r.request_id for r in records] == [
            "x0",
            "x1",
            "x2",
            "x3",
        ]
